# Shared compile options for every MaskSearch target.
#
# Usage: target_link_libraries(<tgt> PRIVATE masksearch_build_flags)
# All first-party targets are created through the masksearch_add_* helpers
# below, which apply the flags automatically.

include_guard(GLOBAL)

find_package(Threads REQUIRED)

add_library(masksearch_build_flags INTERFACE)

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  # The tree is clean under the stricter set too; keep it that way.
  target_compile_options(masksearch_build_flags INTERFACE
    -Wall -Wextra -Wpedantic -Wshadow -Wextra-semi -Wnon-virtual-dtor)
  if(MASKSEARCH_WERROR)
    target_compile_options(masksearch_build_flags INTERFACE -Werror)
  endif()
elseif(MSVC)
  target_compile_options(masksearch_build_flags INTERFACE /W4)
  if(MASKSEARCH_WERROR)
    target_compile_options(masksearch_build_flags INTERFACE /WX)
  endif()
endif()

target_link_libraries(masksearch_build_flags INTERFACE Threads::Threads)

# masksearch_add_layer(<name> SOURCES ... [DEPS ...])
#
# Declares one layer of the core library as a static library named
# masksearch_<name> (with an alias masksearch::<name>), using the repo-wide
# include root (src/) and warning flags. Header-only layers pass no SOURCES
# and become INTERFACE targets.
function(masksearch_add_layer name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  set(target masksearch_${name})
  if(ARG_SOURCES)
    add_library(${target} STATIC ${ARG_SOURCES})
    target_include_directories(${target}
      PUBLIC $<BUILD_INTERFACE:${PROJECT_SOURCE_DIR}/src>)
    target_link_libraries(${target}
      PUBLIC ${ARG_DEPS}
      PRIVATE masksearch_build_flags)
  else()
    add_library(${target} INTERFACE)
    target_include_directories(${target}
      INTERFACE $<BUILD_INTERFACE:${PROJECT_SOURCE_DIR}/src>)
    target_link_libraries(${target} INTERFACE ${ARG_DEPS})
  endif()
  add_library(masksearch::${name} ALIAS ${target})
endfunction()

# masksearch_add_executable(<name> SOURCES ... [DEPS ...])
#
# Declares a first-party executable linked against the umbrella library and
# the shared warning flags.
function(masksearch_add_executable name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  add_executable(${name} ${ARG_SOURCES})
  target_link_libraries(${name}
    PRIVATE masksearch ${ARG_DEPS} masksearch_build_flags)
endfunction()
