# GoogleTest integration with an offline fallback chain:
#
#   1. System GTest via find_package(GTest) — works in the hermetic CI image,
#      which bakes in libgtest-dev.
#   2. FetchContent of googletest v1.14.0 — used on developer machines with
#      network access but no system package.
#
# Either path yields the imported targets GTest::gtest and GTest::gtest_main
# plus the gtest_discover_tests() helper from the GoogleTest module.

include_guard(GLOBAL)

find_package(GTest QUIET)

if(GTest_FOUND)
  message(STATUS "MaskSearch: using system GoogleTest (${GTEST_INCLUDE_DIRS})")
else()
  message(STATUS "MaskSearch: system GoogleTest not found, using FetchContent")
  include(FetchContent)
  FetchContent_Declare(
    googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.zip
    URL_HASH SHA256=1f357c27ca988c3f7c6b4bf68a9395005ac6761f034046e9dde0896e3aba00e4
    DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
  # Never install googletest with the project; keep gmock out of the build.
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
  if(NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest ALIAS gtest)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
endif()

include(GoogleTest)
