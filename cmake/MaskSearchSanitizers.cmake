# Opt-in sanitizer instrumentation.
#
#   cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug -DMASKSEARCH_SANITIZE=thread
#
# Accepted values: address (ASan + LSan), thread (TSan), undefined (UBSan).
# The flags are applied globally (via add_compile_options/add_link_options)
# so the core library, tests, and benches are all instrumented consistently —
# mixing instrumented and uninstrumented TUs produces false positives under
# TSan.

include_guard(GLOBAL)

if(NOT MASKSEARCH_SANITIZE)
  return()
endif()

if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  message(FATAL_ERROR
    "MASKSEARCH_SANITIZE requires GCC or Clang (got ${CMAKE_CXX_COMPILER_ID})")
endif()

set(_ms_san_flags "")
if(MASKSEARCH_SANITIZE STREQUAL "address")
  set(_ms_san_flags -fsanitize=address -fno-omit-frame-pointer)
elseif(MASKSEARCH_SANITIZE STREQUAL "thread")
  set(_ms_san_flags -fsanitize=thread -fno-omit-frame-pointer)
elseif(MASKSEARCH_SANITIZE STREQUAL "undefined")
  set(_ms_san_flags -fsanitize=undefined -fno-sanitize-recover=all
                    -fno-omit-frame-pointer)
else()
  message(FATAL_ERROR
    "MASKSEARCH_SANITIZE must be address, thread, undefined, or empty "
    "(got '${MASKSEARCH_SANITIZE}')")
endif()

message(STATUS "MaskSearch: building with -fsanitize=${MASKSEARCH_SANITIZE}")
add_compile_options(${_ms_san_flags})
add_link_options(${_ms_san_flags})
