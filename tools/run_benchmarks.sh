#!/usr/bin/env bash
# Builds (if needed) and smoke-runs every bench driver for one tiny
# iteration so benchmark bit-rot fails CI. Full paper-scale runs use the
# drivers directly with their default flags.
#
# usage: tools/run_benchmarks.sh [BUILD_DIR] [-- extra flags...]
set -euo pipefail

BUILD_DIR="build"
if [ $# -gt 0 ] && [ "$1" != "--" ]; then
  BUILD_DIR="$1"
  shift
fi
[ "${1:-}" = "--" ] && shift

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . -DMASKSEARCH_BUILD_BENCHMARKS=ON
fi
cmake --build "$BUILD_DIR" -j"$(nproc)"

DATA_DIR="$(mktemp -d "${TMPDIR:-/tmp}/masksearch_bench_smoke.XXXXXX")"
trap 'rm -rf "$DATA_DIR"' EXIT

# Machine-readable results: every driver drops BENCH_<driver>.json here
# (CI uploads the directory as the perf-trajectory artifact).
JSON_DIR="${MASKSEARCH_BENCH_JSON_DIR:-$BUILD_DIR/bench_json}"
mkdir -p "$JSON_DIR"

# Tiny scales: each driver must finish in seconds, exercising the full
# dataset-generation -> index-build -> query path.
SMOKE_FLAGS=(
  "--data-dir=$DATA_DIR"
  "--wilds-scale=0.004"
  "--imagenet-scale=0.0004"
  "--queries=2"
  "--workload-queries=2"
  "--json-out=$JSON_DIR"
  "$@"
)

status=0
for driver in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$driver" ] && [ -f "$driver" ] || continue
  name="$(basename "$driver")"
  echo "==> $name"
  "$driver" --help >/dev/null 2>&1
  if [ "$name" = bench_micro_kernels ]; then
    # google-benchmark harness: its own flag set. min_time=0 runs the
    # minimum iteration count per kernel (the "1x" syntax needs >= 1.8).
    args=(--benchmark_min_time=0
          "--benchmark_out=$JSON_DIR/BENCH_micro_kernels.json"
          --benchmark_out_format=json)
  else
    args=("${SMOKE_FLAGS[@]}")
  fi
  if ! "$driver" "${args[@]}" >/dev/null; then
    echo "FAILED: $name" >&2
    status=1
  fi
done

# The narrative drivers stamp provenance themselves (bench_common.h); the
# google-benchmark JSON is written by its own harness, so inject the same
# stamps into its context block here.
if [ -f "$JSON_DIR/BENCH_micro_kernels.json" ]; then
  sha="$(git -C "$(dirname "$0")/.." rev-parse --short HEAD 2>/dev/null || echo unknown)"
  ts="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  bt="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null)"
  sed -i "s|^  \"context\": {|  \"context\": {\n    \"git_sha\": \"$sha\",\n    \"utc_timestamp\": \"$ts\",\n    \"build_type\": \"${bt:-unknown}\",|" \
    "$JSON_DIR/BENCH_micro_kernels.json"
fi

echo "bench JSON results:"
ls -l "$JSON_DIR"/BENCH_*.json 2>/dev/null || echo "  (none written)"

# The sharded-I/O, overlapped-pipeline, and cold/warm cache benches must be
# part of the micro-kernel run (guards against the perf-trajectory benches
# bit-rotting out of the driver).
for bench in BM_ShardedBatchIopBound BM_MaskAggVerifyPipeline \
             BM_CachedBatchLoadCold BM_CachedBatchLoadWarm \
             BM_RepeatedFilterWarmCache; do
  if ! grep -q "$bench" "$JSON_DIR/BENCH_micro_kernels.json" 2>/dev/null; then
    echo "MISSING: $bench not in BENCH_micro_kernels.json" >&2
    status=1
  fi
done

# The serving-layer driver must record both arrival modes (closed-loop
# client sweep + open-loop rate sweep), the scaling headline, admission
# rejects, per-class latency percentiles and latency-under-SLO attainment
# (docs/SERVING.md), the socket phase — prepared statements over real
# loopback sockets vs the identical in-process path (docs/NETWORK.md) —
# and the replicated tier: 2- and 4-replica scaling plus the failover
# error budget from a scripted mid-run kill (docs/REPLICATION.md) — plus
# the observability gates: tracing-overhead percentages against the
# untraced warm baseline and the record/replay fidelity marker
# (docs/OBSERVABILITY.md).
for key in closed_scaling_8x closed_clients_8_qps closed8_p99_ms \
           closed8_interactive_p50_ms open_rate_0_offered_qps \
           open_rate_2_rejected open_rate_0_p99_ms warm_qps \
           service_cache_hit_ratio socket_inproc_qps \
           socket_clients_8_qps socket_scaling_8x \
           socket_vs_inproc_ratio \
           open_rate_0_slo_attainment_interactive \
           open_rate_1_slo_attainment_normal \
           open_rate_2_slo_attainment_batch \
           replica_2_qps replica_4_qps replica_scaling_4v2 \
           failover_qps failover_error_budget \
           warm_qps_untraced warm_qps_traced \
           tracing_disabled_overhead_pct tracing_sampled_overhead_pct \
           record_requests replay_requests replay_mix_exact; do
  if ! grep -q "\"$key\"" "$JSON_DIR/BENCH_bench_service.json" 2>/dev/null; then
    echo "MISSING: $key not in BENCH_bench_service.json" >&2
    status=1
  fi
done

# Every bench JSON must carry its provenance stamps: which commit, when,
# and at what optimization level the numbers were produced.
for f in "$JSON_DIR"/BENCH_*.json; do
  [ -e "$f" ] || continue
  for key in git_sha utc_timestamp build_type; do
    if ! grep -q "\"$key\"" "$f"; then
      echo "MISSING: $key not in $(basename "$f")" >&2
      status=1
    fi
  done
done

# The streaming-ingest driver must record all three phases: pure ingest
# throughput + publish pauses, the query-latency/throughput interference
# profile while ingesting (docs/INGEST.md), and the compact-under-load
# maintenance profile (docs/COMPACTION.md) — including a non-zero
# dead_bytes_reclaimed, proving the tombstone -> compaction path sheds
# real disk weight.
for key in ingest_masks_per_sec ingest_mb_per_sec publish_p99_ms \
           chis_built query_p50_while_ingesting_ms \
           query_p99_while_ingesting_ms query_qps_while_ingesting \
           ingest_masks_per_sec_while_serving epochs_published \
           compact_mb_per_sec dead_bytes_reclaimed \
           query_p99_while_compacting_ms compact_swap_pause_p99_ms; do
  if ! grep -q "\"$key\"" "$JSON_DIR/BENCH_bench_ingest.json" 2>/dev/null; then
    echo "MISSING: $key not in BENCH_bench_ingest.json" >&2
    status=1
  fi
done
if grep -q '"dead_bytes_reclaimed": 0,\?$' \
    "$JSON_DIR/BENCH_bench_ingest.json" 2>/dev/null; then
  echo "FAILED: dead_bytes_reclaimed is zero — compaction reclaimed nothing" >&2
  status=1
fi

# Every narrative driver's JSON must record which cache mode ran (the
# --warmup-passes / --cold satellite of the cache subsystem).
for json in "$JSON_DIR"/BENCH_*.json; do
  [ "$(basename "$json")" = BENCH_micro_kernels.json ] && continue
  if ! grep -q '"cache_cold"' "$json"; then
    echo "MISSING: cache_cold mode marker not in $(basename "$json")" >&2
    status=1
  fi
done

exit $status
