// masksearch_cli: command-line front end to a MaskSearch store.
//
//   masksearch_cli generate --dir D [--images N] [--models M] [--width W]
//                           [--height H] [--seed S] [--compressed]
//       Build a synthetic mask database (see workload/datasets.h).
//
//   masksearch_cli info --dir D
//       Print store statistics.
//
//   masksearch_cli query --dir D --sql "SELECT ..." [--incremental]
//                        [--cell C] [--bins B] [--index-path P] [--explain]
//                        [--no-index] [--limit-print K]
//       Parse, bind, (optionally explain,) and execute a query.
//
//   masksearch_cli explain --sql "SELECT ..."
//       Show the bound plan without executing.
//
//   masksearch_cli shard --dir D --out D2 [--shards N]
//       Rewrite a store with N data-file shards (blobs copied verbatim;
//       --shards 1 converts back to the single-file layout).
//
//   masksearch_cli serve --dir D --script F [--clients N] [--workers W]
//                        [--repeat R] [--queue-depth Q] [--max-queued-mib M]
//                        [--deadline-ms M] [--verify-batch B] [--cache-mib M]
//                        [--incremental] [--no-index]
//       Replay a query script through the concurrent QueryService
//       (docs/SERVING.md): N closed-loop clients each run the script R
//       times against W executor slots sharing one session. Script lines
//       are SQL statements, optionally prefixed by key=value directives:
//         tenant=3 class=interactive deadline_ms=50 SELECT ... ;
//       ('#' lines are comments; an unset tenant defaults to the client
//       index). Prints ServiceStats (admission counters, per-class
//       latency percentiles) and cache stats.
//
//   masksearch_cli serve --dir D --port P [--bind A] [--name N]
//                        [--workers W] [--queue-depth Q] [--cache-mib M]
//                        [--replicas N] [--fault SPEC[,SPEC...]]
//                        [--failure-threshold K] [--probe-interval-ms T]
//                        [--max-attempts A] ...
//       Network mode (docs/NETWORK.md): registers --dir as the named
//       dataset N (default "default") in a catalog and serves the wire
//       protocol on A:P until SIGINT/SIGTERM; --port 0 picks a free port
//       (printed as "listening on A:P"). Exits 0 on a clean shutdown.
//       --replicas N >= 2 serves through a replicated tier
//       (docs/REPLICATION.md): N in-process replicas of --dir behind a
//       health-checked router with failover; --fault arms scripted faults
//       ("kill:r1:40", "error:r0:10:5", "stall:r2:0:20") for the CI
//       fault-injection smoke. Observability (docs/OBSERVABILITY.md):
//       --slow-ms N keeps a slow-query log (wire TRACE / client --slow),
//       --trace-sample R samples traces, --record F captures the session
//       as a replayable trace file.
//
//   masksearch_cli client --port P [--host H] [--dataset D]
//                         [--sql S | --prepare S --params "v1,v2" | --list
//                          | --metrics [--json] | --slow]
//                         [--repeat N] [--timeout-ms T] [--trace-id T]
//       Socket client for a running `serve --port`: ping (default),
//       one-shot SQL, prepared-statement replay, dataset listing, a
//       metrics scrape, or a slow-query-log dump. --trace-id forces the
//       server to trace the query under the given id.
//
//   masksearch_cli replay --dir D --trace F [--closed-loop] [--speed X]
//                         [--clients N] [--workers W] [--cache-mib M]
//       Replay a session recorded by `serve --port --record F`
//       (docs/OBSERVABILITY.md): open loop reproduces the recorded
//       arrival times (scaled by --speed), --closed-loop drives the same
//       requests through N closed-loop clients. Preserves the recorded
//       request count and per-class mix exactly.
//
//   masksearch_cli ingest --dir D [--count N] [--epochs K] [--shards S]
//                         [--width W] [--bins B] [--seed S] [--compressed]
//                         [--serve-queries N] [--clients C] [--cache-mib M]
//                         [--delete-every N] [--compact-every E]
//       Streaming ingest (docs/INGEST.md): append N synthetic masks to
//       --dir across K atomic epoch publishes, creating the store on
//       first use and resuming at the last durable epoch otherwise.
//       --serve-queries N races N queries per client against the
//       publishes through a snapshot-pinning QueryService — the
//       ingest-while-serving smoke. --delete-every N tombstones every
//       N-th appended mask; --compact-every E runs a generation-rewrite
//       compaction (docs/COMPACTION.md) after every E-th publish — the
//       compact-while-ingesting-while-serving smoke.
//
//   masksearch_cli compact --dir D [--shards S] [--throttle-mib M]
//       One-shot generation-rewrite compaction of a live store
//       (docs/COMPACTION.md): drops tombstoned masks, optionally
//       re-shards to S data files, and atomically swaps the new
//       generation in. --throttle-mib bounds the bulk-copy bandwidth.
//
//   masksearch_cli stats --dir D [--sql S] [--repeat N] [--script F]
//                        [--clients N] [--workers W] [--cache-mib M]
//                        [--cache-shards N] [--cache-admission all|scan]
//       Open the store behind the buffer-pool cache (docs/CACHING.md),
//       optionally run a query N times through a session sharing the pool
//       (--sql) and/or replay a script through the QueryService
//       (--script), and print one observability surface: store counters,
//       CacheStats (hit ratio, resident bytes, evictions, pins), and
//       service counters (admitted/rejected/deadline-missed, per-class
//       p50/p95/p99). --metrics [--json] appends the process metrics
//       registry; --watch S [--watch-count N] loops, re-running the --sql
//       workload each tick and printing only the samples that moved.
//
// The cache flags are also accepted by `query`: --cache-mib M enables a
// shared buffer pool for the store's mask blobs and the session's CHI
// caches.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "masksearch/exec/explain.h"
#include "masksearch/masksearch.h"
#include "masksearch/storage/npy.h"
#include "masksearch/version.h"

namespace masksearch {
namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  bool Has(const std::string& key) const { return options.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& def = "") const {
    auto it = options.find(key);
    return it == options.end() ? def : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t def) const {
    auto it = options.find(key);
    return it == options.end() ? def : std::stoll(it->second);
  }
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      args.options[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      args.options[arg] = argv[++i];
    } else {
      args.options[arg] = "1";
    }
  }
  return args;
}

int Usage(int exit_code = 2) {
  std::fprintf(exit_code == 0 ? stdout : stderr,
               "masksearch_cli %s\n"
               "usage: masksearch_cli "
               "<generate|info|query|stats|serve|client|ingest|compact|"
               "replay|explain> [options]\n"
               "  generate --dir D [--images N] [--models M] [--width W]\n"
               "           [--height H] [--seed S] [--compressed]\n"
               "  info     --dir D\n"
               "  query    --dir D --sql S [--incremental] [--no-index]\n"
               "           [--cell C] [--bins B] [--index-path P] [--explain]\n"
               "           [--limit-print K] [--cache-mib M]\n"
               "           [--cache-shards N] [--cache-admission all|scan]\n"
               "  stats    --dir D [--sql S] [--repeat N] [--script F]\n"
               "           [--clients N] [--workers W] [--cache-mib M]\n"
               "           [--cache-shards N] [--cache-admission all|scan]\n"
               "           [--metrics [--json]] [--watch S [--watch-count N]]\n"
               "  serve    --dir D --script F [--clients N] [--workers W]\n"
               "           [--repeat R] [--queue-depth Q] [--max-queued-mib M]\n"
               "           [--deadline-ms M] [--verify-batch B] [--cache-mib M]\n"
               "           [--incremental] [--no-index]\n"
               "  serve    --dir D --port P [--bind A] [--name N]\n"
               "           [--workers W] [--queue-depth Q] [--cache-mib M]\n"
               "           [--max-conns C] [--incremental] [--no-index]\n"
               "           [--replicas N] [--fault SPEC[,SPEC...]]\n"
               "           [--failure-threshold K] [--probe-interval-ms T]\n"
               "           [--max-attempts A] [--record F] [--slow-ms N]\n"
               "           [--trace-sample R]\n"
               "  client   --port P [--host H] [--dataset D] [--sql S]\n"
               "           [--prepare S --params V] [--repeat N] [--list]\n"
               "           [--timeout-ms T] [--limit-print K] [--trace-id T]\n"
               "           [--metrics [--json]] [--slow]\n"
               "  replay   --dir D --trace F [--closed-loop] [--speed X]\n"
               "           [--clients N] [--workers W] [--cache-mib M]\n"
               "  ingest   --dir D [--count N] [--epochs K] [--shards S]\n"
               "           [--width W] [--bins B] [--seed S] [--compressed]\n"
               "           [--serve-queries N] [--clients C] [--cache-mib M]\n"
               "           [--cache-shards N] [--delete-every N]\n"
               "           [--compact-every E]\n"
               "  compact  --dir D [--shards S] [--throttle-mib M]\n"
               "  explain  --sql S\n"
               "  shard    --dir D --out D2 [--shards N]\n"
               "  import   --dir D --npy-dir P [--models M]\n"
               "  export   --dir D --mask-id N --out F.npy\n"
               "  --help | --version\n",
               VersionString());
  return exit_code;
}

/// Buffer pool from the shared cache flags; null when --cache-mib is 0 /
/// absent (`def_mib` lets `stats` default the cache on).
std::shared_ptr<BufferPool> PoolFromArgs(const Args& args, int64_t def_mib) {
  const int64_t mib = std::max<int64_t>(0, args.GetInt("cache-mib", def_mib));
  return BufferPool::MaybeCreate(
      nullptr, static_cast<uint64_t>(mib) << 20,
      static_cast<int32_t>(args.GetInt("cache-shards", 8)),
      args.Get("cache-admission", "scan") == "all"
          ? CacheAdmission::kAdmitAll
          : CacheAdmission::kScanResistant);
}

int RunGenerate(const Args& args) {
  if (!args.Has("dir")) return Usage();
  DatasetSpec spec;
  spec.name = "cli";
  spec.num_images = args.GetInt("images", 500);
  spec.num_models = static_cast<int32_t>(args.GetInt("models", 2));
  spec.saliency.width = static_cast<int32_t>(args.GetInt("width", 112));
  spec.saliency.height = static_cast<int32_t>(args.GetInt("height", 112));
  spec.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  if (args.Has("compressed")) spec.storage = StorageKind::kCompressed;
  const Status st = BuildDataset(args.Get("dir"), spec);
  if (!st.ok()) {
    std::fprintf(stderr, "generate failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("generated %lld masks (%lld images x %d models) at %s\n",
              static_cast<long long>(spec.num_masks()),
              static_cast<long long>(spec.num_images), spec.num_models,
              args.Get("dir").c_str());
  return 0;
}

int RunInfo(const Args& args) {
  if (!args.Has("dir")) return Usage();
  auto store = MaskStore::Open(args.Get("dir"));
  if (!store.ok()) {
    std::fprintf(stderr, "open failed: %s\n", store.status().ToString().c_str());
    return 1;
  }
  const MaskStore& s = **store;
  std::printf("store: %s\n", s.dir().c_str());
  std::printf("masks: %lld (%s)\n", static_cast<long long>(s.num_masks()),
              s.kind() == StorageKind::kRawFloat32 ? "raw float32"
                                                   : "compressed");
  std::printf("shards: %d\n", s.num_shards());
  std::printf("data bytes: %.2f MiB\n", s.TotalDataBytes() / 1048576.0);
  if (s.num_masks() > 0) {
    std::printf("mask shape: %dx%d\n", s.meta(0).width, s.meta(0).height);
    std::map<ModelId, int64_t> by_model;
    std::map<ImageId, int64_t> images;
    for (MaskId id = 0; id < s.num_masks(); ++id) {
      ++by_model[s.meta(id).model_id];
      ++images[s.meta(id).image_id];
    }
    std::printf("images: %zu\n", images.size());
    for (const auto& [model, count] : by_model) {
      std::printf("  model %d: %lld masks\n", model,
                  static_cast<long long>(count));
    }
  }
  return 0;
}

/// SessionOptions shared by `query` and `stats`: CHI geometry defaulted
/// from the store's mask size, regime flags, and the cache pool. Keeping
/// this in one place guarantees `stats` measures the same session
/// configuration `query` executes.
SessionOptions SessionOptionsFromArgs(const Args& args, const MaskStore& s,
                                      std::shared_ptr<BufferPool> pool) {
  SessionOptions opts;
  const int32_t side = s.num_masks() > 0 ? s.meta(0).width : 112;
  opts.chi.cell_width = opts.chi.cell_height =
      static_cast<int32_t>(args.GetInt("cell", std::max(1, side / 8)));
  opts.chi.num_bins = static_cast<int32_t>(args.GetInt("bins", 16));
  opts.incremental = args.Has("incremental");
  opts.use_index = !args.Has("no-index");
  opts.index_path = args.Get("index-path");
  opts.attach_index = args.Has("attach-index");
  opts.cache = std::move(pool);
  return opts;
}

/// Executes a bound query of any kind, discarding the results (the
/// cache-warming workload of `stats`).
Status ExecuteBoundQuery(Session* session, const sql::BoundQuery& bound) {
  switch (bound.kind) {
    case sql::BoundQuery::Kind::kFilter:
      return session->Filter(bound.filter).status();
    case sql::BoundQuery::Kind::kTopK:
      return session->TopK(bound.topk).status();
    case sql::BoundQuery::Kind::kAggregation:
      return session->Aggregate(bound.agg).status();
    case sql::BoundQuery::Kind::kMaskAgg:
      return session->MaskAggregate(bound.mask_agg).status();
  }
  return Status::Internal("unknown bound query kind");
}

std::string ExplainBound(const sql::BoundQuery& bound) {
  switch (bound.kind) {
    case sql::BoundQuery::Kind::kFilter:
      return ExplainFilter(bound.filter);
    case sql::BoundQuery::Kind::kTopK:
      return ExplainTopK(bound.topk);
    case sql::BoundQuery::Kind::kAggregation:
      return ExplainAggregation(bound.agg);
    case sql::BoundQuery::Kind::kMaskAgg:
      return ExplainMaskAgg(bound.mask_agg);
  }
  return "<unknown>";
}

int RunExplain(const Args& args) {
  if (!args.Has("sql")) return Usage();
  auto bound = sql::ParseAndBind(args.Get("sql"));
  if (!bound.ok()) {
    std::fprintf(stderr, "%s\n", bound.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", ExplainBound(*bound).c_str());
  return 0;
}

/// Rewrites a store into `--out` with `--shards` data files. Blob bytes,
/// metadata, and mask ids are preserved exactly (see ReshardMaskStore).
int RunShard(const Args& args) {
  if (!args.Has("dir") || !args.Has("out")) return Usage();
  const int64_t shards = args.GetInt("shards", 4);
  auto store = MaskStore::Open(args.Get("dir"));
  if (!store.ok()) {
    std::fprintf(stderr, "open failed: %s\n", store.status().ToString().c_str());
    return 1;
  }
  const Status st = ReshardMaskStore(**store, args.Get("out"),
                                     static_cast<int32_t>(shards));
  if (!st.ok()) {
    std::fprintf(stderr, "shard failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("resharded %lld masks (%d -> %lld shards) into %s\n",
              static_cast<long long>((*store)->num_masks()),
              (*store)->num_shards(), static_cast<long long>(shards),
              args.Get("out").c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// serve: replay a script through the QueryService (docs/SERVING.md)
// ---------------------------------------------------------------------------

/// One script line: optional `key=value` directives, then SQL.
struct ScriptEntry {
  std::string sql;
  sql::BoundQuery bound;
  TenantId tenant = -1;  ///< -1: default to the client index at replay time
  PriorityClass priority = PriorityClass::kNormal;
  double deadline_seconds = 0;  ///< 0 = service default
};

/// Parses a serve script: '#'-prefixed and blank lines are skipped; every
/// other line is `[tenant=N] [class=C] [deadline_ms=X] SQL...`.
Result<std::vector<ScriptEntry>> LoadScript(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open script: " + path);
  std::vector<ScriptEntry> entries;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    ScriptEntry entry;
    std::istringstream tokens(line);
    std::string token;
    std::string rest;
    while (tokens >> token) {
      const size_t eq = token.find('=');
      if (eq == std::string::npos || token.find('(') != std::string::npos) {
        // First non-directive token: the remainder of the line is SQL.
        std::string tail;
        std::getline(tokens, tail);
        rest = token + tail;
        break;
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      // Numeric directive values parse through strtod-style tail checking:
      // a malformed value must yield the same typed per-line error shape as
      // an unknown class, never an uncaught std::stoll exception.
      auto parse_number = [&](double* out) {
        char* end = nullptr;
        const double v = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0') {
          return Status::InvalidArgument("script line " +
                                         std::to_string(lineno) + ": bad " +
                                         key + " value: " + value);
        }
        *out = v;
        return Status::OK();
      };
      if (key == "tenant") {
        double v = 0;
        const Status st = parse_number(&v);
        if (!st.ok()) return st;
        entry.tenant = static_cast<TenantId>(v);
      } else if (key == "class") {
        auto cls = ParsePriorityClass(value);
        if (!cls.ok()) {
          return Status::InvalidArgument("script line " +
                                         std::to_string(lineno) + ": " +
                                         cls.status().message());
        }
        entry.priority = *cls;
      } else if (key == "deadline_ms") {
        double v = 0;
        const Status st = parse_number(&v);
        if (!st.ok()) return st;
        entry.deadline_seconds = v / 1e3;
      } else {
        return Status::InvalidArgument("script line " +
                                       std::to_string(lineno) +
                                       ": unknown directive " + key);
      }
    }
    if (rest.empty()) {
      return Status::InvalidArgument("script line " + std::to_string(lineno) +
                                     ": no SQL statement");
    }
    entry.sql = rest;
    auto bound = sql::ParseAndBind(rest);
    if (!bound.ok()) {
      return Status::InvalidArgument("script line " + std::to_string(lineno) +
                                     ": " + bound.status().message());
    }
    entry.bound = std::move(*bound);
    entries.push_back(std::move(entry));
  }
  if (entries.empty()) {
    return Status::InvalidArgument("script has no statements: " + path);
  }
  return entries;
}

/// Outcome tally of one replay run (shed/expired/cancelled are expected
/// service behaviours; `hard_errors` are genuine failures).
struct ReplayCounts {
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> deadline{0};
  std::atomic<uint64_t> cancelled{0};
  std::atomic<uint64_t> hard_errors{0};
};

/// Replays `entries` through `service` with `clients` closed-loop client
/// threads, `repeat` passes each.
void ReplayScript(QueryService* service, const std::vector<ScriptEntry>& entries,
                  int64_t clients, int64_t repeat, ReplayCounts* counts) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int64_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int64_t r = 0; r < repeat; ++r) {
        for (const ScriptEntry& entry : entries) {
          ServiceRequest req;
          req.tenant = entry.tenant >= 0 ? entry.tenant : c;
          req.priority = entry.priority;
          req.deadline_seconds = entry.deadline_seconds;
          req.query = RequestFromBound(entry.bound);
          const auto result = service->Execute(std::move(req));
          if (result.ok()) {
            counts->completed.fetch_add(1);
          } else if (result.status().IsUnavailable()) {
            counts->shed.fetch_add(1);
          } else if (result.status().IsDeadlineExceeded()) {
            counts->deadline.fetch_add(1);
          } else if (result.status().IsCancelled()) {
            counts->cancelled.fetch_add(1);
          } else {
            if (counts->hard_errors.fetch_add(1) == 0) {
              std::fprintf(stderr, "query failed: %s\n  sql: %s\n",
                           result.status().ToString().c_str(),
                           entry.sql.c_str());
            }
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
}

/// Prints the service section of the observability surface (shared by
/// `serve` and `stats --script`).
void PrintServiceStats(const ServiceStats& stats) {
  std::printf("service:\n%s", stats.ToString().c_str());
}

// ---------------------------------------------------------------------------
// serve --port / client: the socket server and its client (docs/NETWORK.md)
// ---------------------------------------------------------------------------

volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }

/// Network serve mode: registers --dir as one named dataset in a Catalog,
/// starts the NetServer, and runs until SIGINT/SIGTERM — then shuts down
/// cleanly (stats printed, in-flight queries drained or cancelled, exit 0).
int RunServeNetwork(const Args& args) {
  if (!args.Has("dir")) return Usage();
  const std::shared_ptr<BufferPool> pool = PoolFromArgs(args, /*def_mib=*/256);

  // Observability wiring (docs/OBSERVABILITY.md): --slow-ms N keeps a
  // slow-query log of requests over N ms (and forces every request to be
  // traced so the log carries full span breakdowns); --trace-sample R
  // samples a fraction of requests into traces without the log;
  // --record FILE captures every admitted request as a replayable trace.
  std::unique_ptr<obs::SlowQueryLog> slow_log;
  if (args.Has("slow-ms")) {
    obs::SlowQueryLog::Options lopts;
    lopts.threshold_seconds = args.GetInt("slow-ms", 100) / 1e3;
    slow_log = std::make_unique<obs::SlowQueryLog>(lopts);
  }
  std::unique_ptr<obs::TraceRecorder> recorder;
  if (args.Has("record")) {
    auto opened = obs::TraceRecorder::Open(args.Get("record"));
    if (!opened.ok()) {
      std::fprintf(stderr, "record failed: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    recorder = std::move(*opened);
  }

  DatasetConfig config;
  config.service.slow_query_log = slow_log.get();
  config.service.trace_sample_rate =
      std::strtod(args.Get("trace-sample", "0").c_str(), nullptr);
  config.store.cache = pool;
  config.session.cache = pool;
  config.session.chi.cell_width = config.session.chi.cell_height =
      static_cast<int32_t>(args.GetInt("cell", 14));
  config.session.chi.num_bins = static_cast<int32_t>(args.GetInt("bins", 16));
  config.session.incremental = args.Has("incremental");
  config.session.use_index = !args.Has("no-index");
  config.session.filter_verify_batch =
      static_cast<size_t>(args.GetInt("verify-batch", 32));
  config.session.agg_verify_batch = config.session.filter_verify_batch;
  config.service.num_workers = static_cast<size_t>(args.GetInt("workers", 4));
  config.service.max_queue_depth =
      static_cast<size_t>(args.GetInt("queue-depth", 256));
  config.service.max_queued_bytes =
      static_cast<uint64_t>(args.GetInt("max-queued-mib", 1024)) << 20;
  config.service.default_deadline_seconds = args.GetInt("deadline-ms", 0) / 1e3;

  Catalog catalog;
  const std::string name = args.Get("name", "default");
  auto dataset = catalog.Register(name, args.Get("dir"), config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "register failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  // --replicas N puts a replicated tier (docs/REPLICATION.md) behind the
  // wire protocol: N in-process replicas of --dir, health-checked routing
  // with failover, installed as the dataset's submission path. --fault
  // schedules scripted faults ("kill:r1:40", comma-separated) against the
  // tier — the CI fault-injection smoke uses it to kill a replica mid-replay
  // and assert clients see only typed errors.
  const int replicas = static_cast<int>(args.GetInt("replicas", 0));
  ReplicaGroup group;
  FaultInjector injector;
  std::unique_ptr<Router> router;
  if (replicas > 1) {
    ReplicaConfig rconfig;
    rconfig.store = config.store;
    rconfig.session = config.session;
    rconfig.service = config.service;
    if (Status s = group.AddInProcess("r", args.Get("dir"), rconfig,
                                      static_cast<size_t>(replicas));
        !s.ok()) {
      std::fprintf(stderr, "replica open failed: %s\n", s.ToString().c_str());
      return 1;
    }
    RouterOptions ropts;
    ropts.failure_threshold =
        static_cast<int>(args.GetInt("failure-threshold", 1));
    ropts.probe_interval_seconds = args.GetInt("probe-interval-ms", 20) / 1e3;
    ropts.max_attempts = static_cast<int>(args.GetInt("max-attempts", 4));
    ropts.num_workers = config.service.num_workers;
    for (std::stringstream faults(args.Get("fault")); faults.good();) {
      std::string spec;
      if (!std::getline(faults, spec, ',') || spec.empty()) break;
      auto fault = FaultInjector::Parse(spec);
      if (!fault.ok()) {
        std::fprintf(stderr, "bad --fault spec \"%s\": %s\n", spec.c_str(),
                     fault.status().ToString().c_str());
        return 1;
      }
      injector.Schedule(*fault);
      ropts.fault_injector = &injector;
    }
    router = std::make_unique<Router>(&group, ropts);
    AttachRouter(*dataset, router.get());
    std::printf("-- replicated tier: %d replicas of \"%s\"%s\n", replicas,
                args.Get("dir").c_str(),
                ropts.fault_injector ? " (fault injection armed)" : "");
  }

  net::NetServerOptions sopts;
  sopts.bind_address = args.Get("bind", "127.0.0.1");
  sopts.port = static_cast<uint16_t>(args.GetInt("port", 0));
  sopts.max_connections = static_cast<size_t>(args.GetInt("max-conns", 256));
  sopts.slow_log = slow_log.get();
  sopts.recorder = recorder.get();
  auto server = net::NetServer::Start(&catalog, sopts);
  if (!server.ok()) {
    std::fprintf(stderr, "server failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }

  std::printf("-- dataset \"%s\": %lld masks, %.2f MiB\n", name.c_str(),
              static_cast<long long>((*dataset)->store().num_masks()),
              (*dataset)->store().TotalDataBytes() / 1048576.0);
  // Scripts wait for this exact line before connecting.
  std::printf("listening on %s:%u\n", sopts.bind_address.c_str(),
              (*server)->port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (!g_stop_requested) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  const net::NetServer::Stats net_stats = (*server)->stats();
  (*server)->Stop();
  std::printf("-- shutdown: %llu connections, %llu requests, "
              "%llu protocol errors\n",
              static_cast<unsigned long long>(net_stats.connections_accepted),
              static_cast<unsigned long long>(net_stats.requests),
              static_cast<unsigned long long>(net_stats.protocol_errors));
  if (router != nullptr) {
    const RouterStats rstats = router->Stats();
    std::printf("-- router: %llu routed, %llu succeeded, %llu retries, "
                "%llu failovers, %llu shed, %llu injected\n",
                static_cast<unsigned long long>(rstats.routed),
                static_cast<unsigned long long>(rstats.succeeded),
                static_cast<unsigned long long>(rstats.retries),
                static_cast<unsigned long long>(rstats.failovers),
                static_cast<unsigned long long>(rstats.shed),
                static_cast<unsigned long long>(rstats.injected));
    for (const RouterReplicaStats& r : rstats.replicas) {
      std::printf("   replica %-8s %-10s routed %llu, failed %llu\n",
                  r.name.c_str(), ToString(r.health),
                  static_cast<unsigned long long>(r.routed),
                  static_cast<unsigned long long>(r.failed));
    }
    const FaultInjector::Stats fstats = injector.stats();
    if (fstats.requests_seen > 0) {
      std::printf("   faults: %llu kills, %llu errors, %llu stalls\n",
                  static_cast<unsigned long long>(fstats.kills_fired),
                  static_cast<unsigned long long>(fstats.errors_injected),
                  static_cast<unsigned long long>(fstats.stalls_injected));
    }
    router->Shutdown();
    group.StopAll();
  }
  PrintServiceStats((*dataset)->service()->Stats());
  const MetadataCache::CacheStats mstats = (*dataset)->metadata()->stats();
  std::printf("metadata cache: %llu hits / %llu misses, %zu entries\n",
              static_cast<unsigned long long>(mstats.hits),
              static_cast<unsigned long long>(mstats.misses), mstats.entries);
  if (pool != nullptr) {
    std::printf("cache: %s\n", pool->Stats().ToString().c_str());
  }
  if (slow_log != nullptr) {
    std::printf("-- slow-query log: %llu over %.0f ms\n",
                static_cast<unsigned long long>(slow_log->recorded()),
                slow_log->threshold_seconds() * 1e3);
  }
  if (recorder != nullptr) {
    recorder->Flush();
    std::printf("-- recorded %llu requests to %s\n",
                static_cast<unsigned long long>(recorder->recorded()),
                recorder->path().c_str());
  }
  catalog.ShutdownAll();
  return 0;
}

/// Prints a wire query result the way `query` prints in-process results.
void PrintWireResult(const net::Response& resp, size_t print_limit) {
  const net::WireQueryResult& q = resp.result;
  switch (static_cast<QueryRequest::Kind>(q.kind)) {
    case QueryRequest::Kind::kFilter:
      std::printf("-- %zu masks match\n", q.mask_ids.size());
      for (size_t i = 0; i < q.mask_ids.size() && i < print_limit; ++i) {
        std::printf("mask %lld\n", static_cast<long long>(q.mask_ids[i]));
      }
      if (q.mask_ids.size() > print_limit) std::printf("...\n");
      break;
    case QueryRequest::Kind::kTopK:
      for (size_t i = 0; i < q.scored.size() && i < print_limit; ++i) {
        std::printf("%3zu. mask %lld  value %.4f\n", i + 1,
                    static_cast<long long>(q.scored[i].first),
                    q.scored[i].second);
      }
      break;
    case QueryRequest::Kind::kAggregation:
    case QueryRequest::Kind::kMaskAgg:
      for (size_t i = 0; i < q.scored.size() && i < print_limit; ++i) {
        std::printf("%3zu. group %lld  value %.4f\n", i + 1,
                    static_cast<long long>(q.scored[i].first),
                    q.scored[i].second);
      }
      break;
  }
  std::printf("-- queued %.1f ms, executed %.1f ms\n", q.queue_seconds * 1e3,
              q.exec_seconds * 1e3);
}

/// Comma-separated parameter values for --params.
Result<std::vector<double>> ParseParamList(const std::string& text) {
  std::vector<double> params;
  if (text.empty()) return params;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    char* end = nullptr;
    const double v = std::strtod(item.c_str(), &end);
    if (end == item.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad parameter value: " + item);
    }
    params.push_back(v);
  }
  return params;
}

/// Socket client: ping (default), --list, one-shot --sql, or prepared
/// replay (--prepare SQL --params "v1,v2" --repeat N).
int RunClient(const Args& args) {
  if (!args.Has("port")) return Usage();
  net::NetClientOptions copts;
  copts.recv_timeout_seconds = args.GetInt("timeout-ms", 30000) / 1e3;
  auto client = net::NetClient::Connect(
      args.Get("host", "127.0.0.1"),
      static_cast<uint16_t>(args.GetInt("port", 0)), copts);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }

  if (args.Has("metrics")) {
    auto text = (*client)->Metrics(args.Has("json"));
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", text->c_str());
    if (!text->empty() && text->back() != '\n') std::printf("\n");
    return 0;
  }

  if (args.Has("slow")) {
    auto text = (*client)->SlowQueries();
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", text->c_str());
    return 0;
  }

  if (args.Has("list")) {
    auto datasets = (*client)->ListDatasets();
    if (!datasets.ok()) {
      std::fprintf(stderr, "%s\n", datasets.status().ToString().c_str());
      return 1;
    }
    for (const net::DatasetInfo& d : *datasets) {
      std::printf("%s: %lld masks, %.2f MiB\n", d.name.c_str(),
                  static_cast<long long>(d.num_masks),
                  d.total_bytes / 1048576.0);
    }
    return 0;
  }

  const std::string dataset = args.Get("dataset", "default");
  const int64_t repeat = std::max<int64_t>(1, args.GetInt("repeat", 1));
  const size_t print_limit =
      static_cast<size_t>(args.GetInt("limit-print", 10));

  if (args.Has("prepare")) {
    auto handle = (*client)->Prepare(dataset, args.Get("prepare"));
    if (!handle.ok()) {
      std::fprintf(stderr, "prepare failed: %s\n",
                   handle.status().ToString().c_str());
      return 1;
    }
    auto params = ParseParamList(args.Get("params"));
    if (!params.ok()) {
      std::fprintf(stderr, "%s\n", params.status().ToString().c_str());
      return 1;
    }
    std::printf("-- prepared statement %llu (%u parameters)\n",
                static_cast<unsigned long long>(handle->stmt_id),
                handle->num_params);
    Stopwatch wall;
    net::Response last;
    for (int64_t r = 0; r < repeat; ++r) {
      auto resp = (*client)->Execute(handle->stmt_id, *params);
      if (!resp.ok()) {
        std::fprintf(stderr, "execute failed: %s\n",
                     resp.status().ToString().c_str());
        return 1;
      }
      last = std::move(*resp);
    }
    const double seconds = wall.ElapsedSeconds();
    std::printf("-- %lld execution(s) in %.3fs (%.1f qps)\n",
                static_cast<long long>(repeat), seconds,
                seconds > 0 ? static_cast<double>(repeat) / seconds : 0.0);
    PrintWireResult(last, print_limit);
    const Status closed = (*client)->CloseStmt(handle->stmt_id);
    if (!closed.ok()) {
      std::fprintf(stderr, "close failed: %s\n", closed.ToString().c_str());
      return 1;
    }
    return 0;
  }

  if (args.Has("sql")) {
    net::Response last;
    Stopwatch wall;
    const uint64_t trace_id =
        static_cast<uint64_t>(args.GetInt("trace-id", 0));
    for (int64_t r = 0; r < repeat; ++r) {
      auto resp = (*client)->Query(dataset, args.Get("sql"), /*tenant=*/0,
                                   PriorityClass::kNormal,
                                   /*deadline_seconds=*/0, trace_id);
      if (!resp.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     resp.status().ToString().c_str());
        return 1;
      }
      last = std::move(*resp);
    }
    const double seconds = wall.ElapsedSeconds();
    if (repeat > 1) {
      std::printf("-- %lld queries in %.3fs (%.1f qps)\n",
                  static_cast<long long>(repeat), seconds,
                  seconds > 0 ? static_cast<double>(repeat) / seconds : 0.0);
    }
    PrintWireResult(last, print_limit);
    return 0;
  }

  const Status st = (*client)->Ping();
  if (!st.ok()) {
    std::fprintf(stderr, "ping failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("pong from %s:%lld\n", args.Get("host", "127.0.0.1").c_str(),
              static_cast<long long>(args.GetInt("port", 0)));
  return 0;
}

int RunServe(const Args& args) {
  // --port switches serve into network mode (docs/NETWORK.md); without it
  // the command remains the in-process script replay below.
  if (args.Has("port")) return RunServeNetwork(args);
  if (!args.Has("dir") || !args.Has("script")) return Usage();
  auto entries = LoadScript(args.Get("script"));
  if (!entries.ok()) {
    std::fprintf(stderr, "%s\n", entries.status().ToString().c_str());
    return 1;
  }

  const std::shared_ptr<BufferPool> pool = PoolFromArgs(args, /*def_mib=*/256);
  MaskStore::Options store_opts;
  store_opts.cache = pool;
  auto store = MaskStore::Open(args.Get("dir"), store_opts);
  if (!store.ok()) {
    std::fprintf(stderr, "open failed: %s\n", store.status().ToString().c_str());
    return 1;
  }
  SessionOptions sopts = SessionOptionsFromArgs(args, **store, pool);
  // Serving default: modest verification batches give the executors
  // frequent deadline/cancel checkpoints (results are batch-independent).
  sopts.filter_verify_batch =
      static_cast<size_t>(args.GetInt("verify-batch", 32));
  sopts.agg_verify_batch = sopts.filter_verify_batch;
  auto session = Session::Open(store->get(), sopts);
  if (!session.ok()) {
    std::fprintf(stderr, "session failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  if (!sopts.incremental && sopts.use_index) {
    std::printf("-- index built in %.2fs\n", (*session)->index_build_seconds());
  }

  QueryServiceOptions qopts;
  qopts.num_workers = static_cast<size_t>(args.GetInt("workers", 4));
  qopts.max_queue_depth =
      static_cast<size_t>(args.GetInt("queue-depth", 256));
  qopts.max_queued_bytes =
      static_cast<uint64_t>(args.GetInt("max-queued-mib", 1024)) << 20;
  qopts.default_deadline_seconds = args.GetInt("deadline-ms", 0) / 1e3;
  auto service = QueryService::Start(session->get(), qopts);
  if (!service.ok()) {
    std::fprintf(stderr, "service failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }

  const int64_t clients = std::max<int64_t>(1, args.GetInt("clients", 4));
  const int64_t repeat = std::max<int64_t>(1, args.GetInt("repeat", 1));
  std::printf("-- serving %zu statements to %lld client(s) x %lld pass(es), "
              "%zu workers\n",
              entries->size(), static_cast<long long>(clients),
              static_cast<long long>(repeat), qopts.num_workers);
  ReplayCounts counts;
  Stopwatch wall;
  ReplayScript(service->get(), *entries, clients, repeat, &counts);
  const double seconds = wall.ElapsedSeconds();
  (*service)->Drain();  // settle the gauges before the snapshot

  const uint64_t total = counts.completed.load() + counts.shed.load() +
                         counts.deadline.load() + counts.cancelled.load() +
                         counts.hard_errors.load();
  std::printf("-- %llu requests in %.3fs (%.1f qps): %llu completed, "
              "%llu shed, %llu deadline-expired, %llu cancelled, %llu errors\n",
              static_cast<unsigned long long>(total), seconds,
              seconds > 0 ? static_cast<double>(total) / seconds : 0.0,
              static_cast<unsigned long long>(counts.completed.load()),
              static_cast<unsigned long long>(counts.shed.load()),
              static_cast<unsigned long long>(counts.deadline.load()),
              static_cast<unsigned long long>(counts.cancelled.load()),
              static_cast<unsigned long long>(counts.hard_errors.load()));
  PrintServiceStats((*service)->Stats());
  if (pool != nullptr) {
    std::printf("cache: %s\n", pool->Stats().ToString().c_str());
  }
  return counts.hard_errors.load() == 0 ? 0 : 1;
}

/// Opens a store behind the buffer-pool cache, optionally runs one SQL
/// query `--repeat` times through a session sharing the pool (--sql)
/// and/or replays a script through the QueryService (--script), and prints
/// one observability surface across cache and service: store counters +
/// CacheStats (docs/CACHING.md) + service counters (docs/SERVING.md). The
/// default --repeat 2 makes warm-cache behavior (hit ratio > 0) visible
/// immediately.
/// Offline maintenance view of a store directory (docs/COMPACTION.md):
/// current generation, live/tombstoned counts, dead bytes, and the
/// persisted compaction counters. All read from sidecars — no ingestor is
/// opened, so this works on a store another process is serving.
void PrintMaintenanceSection(const std::string& dir) {
  auto gen = ReadStoreGeneration(dir);
  if (!gen.ok()) {
    std::printf("maintenance: unreadable (%s)\n",
                gen.status().ToString().c_str());
    return;
  }
  const std::string gen_root = GenerationDir(dir, *gen);
  int64_t tombstoned = 0;
  uint64_t dead_bytes = 0;
  int64_t physical = -1;
  if (auto tombstones = ReadMaskStoreTombstones(gen_root); tombstones.ok()) {
    tombstoned = static_cast<int64_t>(tombstones->size());
    if (auto manifest = internal::ReadMaskStoreManifest(gen_root);
        manifest.ok()) {
      physical = static_cast<int64_t>(manifest->sizes.size());
      for (const MaskId t : *tombstones) {
        if (t >= 0 && t < physical) dead_bytes += manifest->sizes[t];
      }
    }
  }
  std::printf("maintenance:\n");
  std::printf("  generation: %lld\n", static_cast<long long>(*gen));
  if (physical >= 0) {
    std::printf("  live masks: %lld  tombstoned: %lld  dead bytes: %.2f MiB\n",
                static_cast<long long>(physical - tombstoned),
                static_cast<long long>(tombstoned), dead_bytes / 1048576.0);
  }
  auto counters = ReadMaintenanceCounters(dir);
  if (!counters.ok()) {
    std::printf("  counters: unreadable (%s)\n",
                counters.status().ToString().c_str());
    return;
  }
  std::printf("  compactions completed: %lld (%lld failed)\n",
              static_cast<long long>(counters->compactions_completed),
              static_cast<long long>(counters->compactions_failed));
  if (counters->compactions_completed > 0) {
    std::printf("  last compaction: %.2f ms (swap pause %.2f ms), "
                "to generation %lld\n",
                counters->last_compaction_ms, counters->last_swap_pause_ms,
                static_cast<long long>(counters->last_generation));
    std::printf("  totals: %.2f MiB copied, %.2f MiB reclaimed, "
                "%lld masks dropped\n",
                counters->bytes_copied_total / 1048576.0,
                counters->dead_bytes_reclaimed_total / 1048576.0,
                static_cast<long long>(counters->masks_dropped_total));
  }
}

int RunStats(const Args& args) {
  if (!args.Has("dir")) return Usage();
  const std::shared_ptr<BufferPool> pool =
      PoolFromArgs(args, /*def_mib=*/256);
  MaskStore::Options store_opts;
  store_opts.cache = pool;
  auto store = MaskStore::Open(args.Get("dir"), store_opts);
  if (!store.ok()) {
    std::fprintf(stderr, "open failed: %s\n", store.status().ToString().c_str());
    return 1;
  }
  const MaskStore& s = **store;

  std::unique_ptr<Session> session;
  if (args.Has("sql")) {
    auto bound = sql::ParseAndBind(args.Get("sql"));
    if (!bound.ok()) {
      std::fprintf(stderr, "%s\n", bound.status().ToString().c_str());
      return 1;
    }
    auto opened =
        Session::Open(store->get(), SessionOptionsFromArgs(args, s, pool));
    if (!opened.ok()) {
      std::fprintf(stderr, "session failed: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    session = std::move(*opened);
    const int64_t repeat = std::max<int64_t>(1, args.GetInt("repeat", 2));
    for (int64_t r = 0; r < repeat; ++r) {
      const Status st = ExecuteBoundQuery(session.get(), *bound);
      if (!st.ok()) {
        std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    std::printf("ran query %lld time(s)\n", static_cast<long long>(repeat));
  }

  // Service counters: replay a script through the QueryService so the
  // operator sees admission / deadline / per-class latency behaviour next
  // to the cache stats it produced. Hard query errors are reported in the
  // exit code only *after* the observability sections print — this command
  // exists to diagnose, so failure must not suppress the diagnostics.
  bool served = false;
  bool script_failed = false;
  ServiceStats service_stats;
  if (args.Has("script")) {
    auto entries = LoadScript(args.Get("script"));
    if (!entries.ok()) {
      std::fprintf(stderr, "%s\n", entries.status().ToString().c_str());
      return 1;
    }
    if (session == nullptr) {
      auto opened =
          Session::Open(store->get(), SessionOptionsFromArgs(args, s, pool));
      if (!opened.ok()) {
        std::fprintf(stderr, "session failed: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      session = std::move(*opened);
    }
    QueryServiceOptions qopts;
    qopts.num_workers = static_cast<size_t>(args.GetInt("workers", 4));
    auto service = QueryService::Start(session.get(), qopts);
    if (!service.ok()) {
      std::fprintf(stderr, "service failed: %s\n",
                   service.status().ToString().c_str());
      return 1;
    }
    ReplayCounts counts;
    ReplayScript(service->get(), *entries,
                 std::max<int64_t>(1, args.GetInt("clients", 4)),
                 /*repeat=*/1, &counts);
    script_failed = counts.hard_errors.load() > 0;
    (*service)->Drain();  // settle the gauges before the snapshot
    service_stats = (*service)->Stats();
    served = true;
  }

  std::printf("store: %s\n", s.dir().c_str());
  std::printf("  masks: %lld  shards: %d  data: %.2f MiB (%s)\n",
              static_cast<long long>(s.num_masks()), s.num_shards(),
              s.TotalDataBytes() / 1048576.0,
              s.kind() == StorageKind::kRawFloat32 ? "raw float32"
                                                   : "compressed");
  std::printf("  physical reads: %llu masks, %.2f MiB\n",
              static_cast<unsigned long long>(s.masks_loaded()),
              s.bytes_read() / 1048576.0);
  PrintMaintenanceSection(args.Get("dir"));
  if (pool != nullptr) {
    const CacheStats stats = pool->Stats();
    std::printf("cache: %s\n", stats.ToString().c_str());
    if (const auto* cached = dynamic_cast<const CachedMaskStore*>(&s)) {
      std::printf("  store blob traffic: %llu hits / %llu misses\n",
                  static_cast<unsigned long long>(cached->cache_hits()),
                  static_cast<unsigned long long>(cached->cache_misses()));
    }
    if (session != nullptr && session->chi_cache() != nullptr) {
      std::printf("  resident per-mask CHIs: %zu\n",
                  session->chi_cache()->size());
    }
  } else {
    std::printf("cache: disabled (--cache-mib 0)\n");
  }
  if (served) PrintServiceStats(service_stats);

  // --metrics dumps the process-wide registry (every layer the commands
  // above exercised recorded into it); --json switches the exposition.
  if (args.Has("metrics")) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    const std::string text = args.Has("json") ? reg.Json()
                                              : reg.PrometheusText();
    std::printf("%s", text.c_str());
    if (!text.empty() && text.back() != '\n') std::printf("\n");
  }

  // --watch S: incremental refresh loop — re-run the --sql workload each
  // tick and print only the registry samples that moved, as deltas. Runs
  // until SIGINT, or --watch-count ticks (the testable shape).
  if (args.Has("watch")) {
    const double interval =
        std::max(0.0, std::strtod(args.Get("watch", "2").c_str(), nullptr));
    const int64_t ticks = args.GetInt("watch-count", 0);
    std::signal(SIGINT, HandleStopSignal);
    std::vector<obs::MetricsRegistry::Sample> prev =
        obs::MetricsRegistry::Default().Samples();
    for (int64_t tick = 0; (ticks <= 0 || tick < ticks) && !g_stop_requested;
         ++tick) {
      if (interval > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(interval));
      }
      if (session != nullptr && args.Has("sql")) {
        if (auto bound = sql::ParseAndBind(args.Get("sql")); bound.ok()) {
          (void)ExecuteBoundQuery(session.get(), *bound);
        }
      }
      std::vector<obs::MetricsRegistry::Sample> cur =
          obs::MetricsRegistry::Default().Samples();
      std::printf("-- watch tick %lld\n", static_cast<long long>(tick + 1));
      // Samples() is sorted by name; walk both snapshots in step. A name
      // only in `cur` is a new instrument (delta = its whole value).
      size_t i = 0;
      for (const obs::MetricsRegistry::Sample& sample : cur) {
        while (i < prev.size() && prev[i].name < sample.name) ++i;
        const double before =
            (i < prev.size() && prev[i].name == sample.name) ? prev[i].value
                                                             : 0;
        if (sample.value != before) {
          std::printf("  %s %.6g (%+.6g)\n", sample.name.c_str(), sample.value,
                      sample.value - before);
        }
      }
      std::fflush(stdout);
      prev = std::move(cur);
    }
  }
  return script_failed ? 1 : 0;
}

/// Imports a directory of .npy saliency maps into a mask store. Files are
/// taken in lexicographic order; `--models M` interprets consecutive runs of
/// M files as the masks of one image.
int RunImport(const Args& args) {
  if (!args.Has("dir") || !args.Has("npy-dir")) return Usage();
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(args.Get("npy-dir"), ec)) {
    if (entry.path().extension() == ".npy") files.push_back(entry.path());
  }
  if (ec) {
    std::fprintf(stderr, "cannot list %s: %s\n", args.Get("npy-dir").c_str(),
                 ec.message().c_str());
    return 1;
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "no .npy files in %s\n", args.Get("npy-dir").c_str());
    return 1;
  }
  const int64_t models = std::max<int64_t>(1, args.GetInt("models", 1));
  auto writer = MaskStoreWriter::Create(args.Get("dir"));
  if (!writer.ok()) {
    std::fprintf(stderr, "%s\n", writer.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < files.size(); ++i) {
    auto mask = ReadNpyFile(files[i]);
    if (!mask.ok()) {
      std::fprintf(stderr, "%s: %s\n", files[i].c_str(),
                   mask.status().ToString().c_str());
      return 1;
    }
    MaskMeta meta;
    meta.image_id = static_cast<ImageId>(i / models);
    meta.model_id = static_cast<ModelId>(i % models);
    meta.object_box = mask->Extent();  // unknown: default to the full mask
    auto id = (*writer)->Append(meta, *mask);
    if (!id.ok()) {
      std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
      return 1;
    }
  }
  const Status st = (*writer)->Finish();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("imported %zu masks into %s\n", files.size(),
              args.Get("dir").c_str());
  return 0;
}

/// Exports one mask back to .npy.
int RunExport(const Args& args) {
  if (!args.Has("dir") || !args.Has("mask-id") || !args.Has("out")) {
    return Usage();
  }
  auto store = MaskStore::Open(args.Get("dir"));
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  auto mask = (*store)->LoadMask(args.GetInt("mask-id", 0));
  if (!mask.ok()) {
    std::fprintf(stderr, "%s\n", mask.status().ToString().c_str());
    return 1;
  }
  const Status st = WriteNpyFile(args.Get("out"), *mask);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%dx%d)\n", args.Get("out").c_str(), mask->width(),
              mask->height());
  return 0;
}

int RunQuery(const Args& args) {
  if (!args.Has("dir") || !args.Has("sql")) return Usage();
  // One pool for the store's mask blobs and the session's CHI caches: a
  // single byte budget (docs/CACHING.md).
  const std::shared_ptr<BufferPool> pool = PoolFromArgs(args, /*def_mib=*/0);
  MaskStore::Options store_opts;
  store_opts.cache = pool;
  auto store = MaskStore::Open(args.Get("dir"), store_opts);
  if (!store.ok()) {
    std::fprintf(stderr, "open failed: %s\n", store.status().ToString().c_str());
    return 1;
  }
  auto bound = sql::ParseAndBind(args.Get("sql"));
  if (!bound.ok()) {
    std::fprintf(stderr, "%s\n", bound.status().ToString().c_str());
    return 1;
  }
  if (args.Has("explain")) {
    std::printf("%s\n", ExplainBound(*bound).c_str());
  }

  const SessionOptions opts = SessionOptionsFromArgs(args, **store, pool);
  auto session = Session::Open(store->get(), opts);
  if (!session.ok()) {
    std::fprintf(stderr, "session failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  if (!opts.incremental && opts.use_index) {
    std::printf("-- index built in %.2fs\n", (*session)->index_build_seconds());
  }

  // With a pool configured, report its stats on every exit path.
  struct CacheReport {
    const BufferPool* pool;
    ~CacheReport() {
      if (pool != nullptr) {
        std::printf("-- cache: %s\n", pool->Stats().ToString().c_str());
      }
    }
  } cache_report{pool.get()};

  const size_t print_limit =
      static_cast<size_t>(args.GetInt("limit-print", 20));
  switch (bound->kind) {
    case sql::BoundQuery::Kind::kFilter: {
      auto r = (*session)->Filter(bound->filter);
      if (!r.ok()) break;
      std::printf("-- %zu masks match\n", r->mask_ids.size());
      for (size_t i = 0; i < r->mask_ids.size() && i < print_limit; ++i) {
        std::printf("%s\n", (*store)->meta(r->mask_ids[i]).ToString().c_str());
      }
      if (r->mask_ids.size() > print_limit) std::printf("...\n");
      std::printf("-- %s\n", SummarizeStats(r->stats).c_str());
      if (opts.incremental && !opts.index_path.empty()) {
        (void)(*session)->Save();
      }
      return 0;
    }
    case sql::BoundQuery::Kind::kTopK: {
      auto r = (*session)->TopK(bound->topk);
      if (!r.ok()) break;
      for (size_t i = 0; i < r->items.size() && i < print_limit; ++i) {
        std::printf("%3zu. mask %lld  value %.4f\n", i + 1,
                    static_cast<long long>(r->items[i].mask_id),
                    r->items[i].value);
      }
      std::printf("-- %s\n", SummarizeStats(r->stats).c_str());
      return 0;
    }
    case sql::BoundQuery::Kind::kAggregation: {
      auto r = (*session)->Aggregate(bound->agg);
      if (!r.ok()) break;
      for (size_t i = 0; i < r->groups.size() && i < print_limit; ++i) {
        std::printf("%3zu. group %lld  aggregate %.4f\n", i + 1,
                    static_cast<long long>(r->groups[i].group),
                    r->groups[i].value);
      }
      std::printf("-- %s\n", SummarizeStats(r->stats).c_str());
      return 0;
    }
    case sql::BoundQuery::Kind::kMaskAgg: {
      auto r = (*session)->MaskAggregate(bound->mask_agg);
      if (!r.ok()) break;
      for (size_t i = 0; i < r->groups.size() && i < print_limit; ++i) {
        std::printf("%3zu. group %lld  CP(derived) %.0f\n", i + 1,
                    static_cast<long long>(r->groups[i].group),
                    r->groups[i].value);
      }
      std::printf("-- %s\n", SummarizeStats(r->stats).c_str());
      return 0;
    }
  }
  std::fprintf(stderr, "query execution failed\n");
  return 1;
}

/// Streaming ingest (docs/INGEST.md): appends --count synthetic saliency
/// masks to --dir across --epochs atomic epoch publishes. Creates the
/// store on first use; resumes at the last durable epoch otherwise (torn
/// unpublished tails are truncated on open). With --serve-queries N the
/// publishes race N filter queries per client through a QueryService that
/// pins the current epoch snapshot at admission — the ingest-while-serving
/// CI smoke.
int RunIngest(const Args& args) {
  if (!args.Has("dir")) return Usage();
  const std::string dir = args.Get("dir");
  const int64_t count = std::max<int64_t>(1, args.GetInt("count", 200));
  const int64_t epochs = std::max<int64_t>(1, args.GetInt("epochs", 4));
  const int32_t side = static_cast<int32_t>(args.GetInt("width", 64));

  IngestorOptions iopts;
  iopts.num_shards = static_cast<int32_t>(args.GetInt("shards", 4));
  if (args.Has("compressed")) iopts.kind = StorageKind::kCompressed;
  iopts.chi.cell_width = iopts.chi.cell_height = std::max(1, side / 8);
  iopts.chi.num_bins = static_cast<int32_t>(args.GetInt("bins", 16));
  iopts.cache_budget_bytes =
      static_cast<uint64_t>(std::max<int64_t>(0, args.GetInt("cache-mib", 64)))
      << 20;
  iopts.cache_shards = static_cast<int32_t>(args.GetInt("cache-shards", 8));

  // Generation-aware resume probe: a compacted store keeps its manifest in
  // the current generation directory, not the store root.
  bool resume = false;
  if (auto gen = ReadStoreGeneration(dir); gen.ok()) {
    resume = std::filesystem::exists(
        MaskStoreManifestPath(GenerationDir(dir, *gen)));
  }
  auto opened = resume ? Ingestor::Open(dir, iopts)
                       : Ingestor::Create(dir, iopts);
  if (!opened.ok()) {
    std::fprintf(stderr, "ingest open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  Ingestor& ing = **opened;
  std::printf("%s %s at epoch %lld (watermark %lld)\n",
              resume ? "resumed" : "created", dir.c_str(),
              static_cast<long long>(ing.epoch()),
              static_cast<long long>(ing.watermark()));

  // The read side: closed-loop clients each running --serve-queries filter
  // queries against whatever epoch admission pins while the writer below
  // keeps publishing.
  const int64_t serve_queries = args.GetInt("serve-queries", 0);
  const int num_clients =
      static_cast<int>(std::max<int64_t>(1, args.GetInt("clients", 2)));
  std::unique_ptr<QueryService> service;
  std::vector<std::thread> clients;
  std::atomic<int64_t> queries_ok{0};
  std::atomic<int64_t> queries_failed{0};
  if (serve_queries > 0) {
    QueryServiceOptions sopts;
    sopts.num_workers = num_clients;
    sopts.session_resolver = [&ing]() -> SessionLease {
      std::shared_ptr<const Snapshot> snap = ing.snapshot();
      SessionLease lease;
      lease.session = snap->session();
      lease.epoch = snap->epoch();
      lease.pin = std::move(snap);
      return lease;
    };
    auto started = QueryService::Start(nullptr, sopts);
    if (!started.ok()) {
      std::fprintf(stderr, "service start failed: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    service = std::move(*started);
    for (int c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        Rng rng(static_cast<uint64_t>(9000 + c));
        for (int64_t i = 0; i < serve_queries; ++i) {
          FilterQuery q;
          CpTerm term;
          term.roi_source = RoiSource::kConstant;
          term.constant_roi = ROI{0, 0, side / 2, side / 2};
          term.range = ValueRange{0.5, 1.0};
          q.terms = {term};
          q.predicate = Predicate::Compare(CpExpr::Term(0), CompareOp::kGt,
                                           rng.NextDouble() * side);
          ServiceRequest req;
          req.tenant = c;
          req.query = QueryRequest::Filter(q);
          auto pending = service->Submit(req);
          if (!pending.ok()) {
            ++queries_failed;
            continue;
          }
          auto response = (*pending)->Wait();
          (response.ok() ? queries_ok : queries_failed)++;
        }
      });
    }
  }

  // The write side: --count appends across --epochs publishes, image ids
  // continuing from the resumed watermark. --delete-every N tombstones
  // every N-th appended mask right after its append (before any compaction
  // can renumber it); --compact-every E rewrites the store into a fresh
  // generation after every E-th publish.
  const int64_t delete_every = args.GetInt("delete-every", 0);
  const int64_t compact_every = args.GetInt("compact-every", 0);
  Compactor compactor(&ing);
  int64_t deletes_done = 0;
  int64_t publishes_done = 0;
  int64_t compactions_done = 0;
  int64_t compactions_failed = 0;
  Rng rng(static_cast<uint64_t>(args.GetInt("seed", 42)));
  SaliencySpec spec;
  spec.width = spec.height = side;
  const int64_t per_epoch = std::max<int64_t>(1, (count + epochs - 1) / epochs);
  const int64_t base = ing.watermark();
  Stopwatch timer;
  for (int64_t i = 0; i < count; ++i) {
    const ROI box = GenerateObjectBox(&rng, side, side);
    Mask mask = GenerateSaliencyMask(&rng, spec, box, rng.NextBool(0.3));
    MaskMeta meta;
    meta.image_id = base + i;
    meta.model_id = 0;
    meta.mask_type = MaskType::kSaliencyMap;
    meta.object_box = box;
    auto id = ing.Append(meta, mask);
    if (!id.ok()) {
      std::fprintf(stderr, "append failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
    if (delete_every > 0 && (i + 1) % delete_every == 0) {
      const Status st = ing.Delete(*id);
      if (!st.ok()) {
        std::fprintf(stderr, "delete failed: %s\n", st.ToString().c_str());
        return 1;
      }
      ++deletes_done;
    }
    if ((i + 1) % per_epoch == 0 || i + 1 == count) {
      const Status st = ing.Publish();
      if (!st.ok()) {
        std::fprintf(stderr, "publish failed: %s\n", st.ToString().c_str());
        return 1;
      }
      ++publishes_done;
      if (compact_every > 0 && publishes_done % compact_every == 0) {
        auto stats = compactor.Compact();
        if (stats.ok()) {
          ++compactions_done;
          std::printf("completed compaction: %s\n",
                      stats->ToString().c_str());
        } else {
          ++compactions_failed;
          std::fprintf(stderr, "compaction failed: %s\n",
                       stats.status().ToString().c_str());
        }
      }
    }
  }
  const double seconds = timer.ElapsedSeconds();

  for (auto& t : clients) t.join();
  if (service != nullptr) service->Drain();

  std::printf("ingested %lld masks in %.3fs (%.0f masks/s), now at epoch "
              "%lld (watermark %lld)\n",
              static_cast<long long>(count), seconds,
              seconds > 0 ? count / seconds : 0.0,
              static_cast<long long>(ing.epoch()),
              static_cast<long long>(ing.watermark()));
  std::printf("-- %s\n", ing.Stats().ToString().c_str());
  if (delete_every > 0 || compact_every > 0) {
    const MaintenanceCounters mc = compactor.Counters();
    std::printf("deleted %lld masks, reclaimed %.2f MiB\n",
                static_cast<long long>(deletes_done),
                mc.dead_bytes_reclaimed_total / 1048576.0);
    std::printf("compactions completed: %lld (%lld failed)\n",
                static_cast<long long>(compactions_done),
                static_cast<long long>(compactions_failed));
  }
  if (serve_queries > 0) {
    std::printf("served %lld queries while ingesting (%lld failed)\n",
                static_cast<long long>(queries_ok.load()),
                static_cast<long long>(queries_failed.load()));
    if (service != nullptr) service->Shutdown();
    // The smoke contract: the read side must have made progress.
    if (queries_ok.load() == 0) {
      std::fprintf(stderr, "no queries succeeded while ingesting\n");
      return 1;
    }
  }
  return 0;
}

// One offline compaction run: open the store's current generation, rewrite
// its live masks into the next one (optionally re-sharding), and report the
// stats. The same Compactor the maintenance scheduler drives online.
int RunCompact(const Args& args) {
  if (!args.Has("dir")) return Usage();
  const std::string dir = args.Get("dir");

  auto gen = ReadStoreGeneration(dir);
  if (!gen.ok() ||
      !std::filesystem::exists(MaskStoreManifestPath(GenerationDir(dir, *gen)))) {
    std::fprintf(stderr, "no mask store at %s\n", dir.c_str());
    return 1;
  }
  IngestorOptions iopts;
  auto opened = Ingestor::Open(dir, iopts);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  Ingestor& ing = **opened;

  CompactorOptions copts;
  copts.target_num_shards = static_cast<int32_t>(args.GetInt("shards", 0));
  if (args.Has("throttle-mib")) {
    copts.throttle_bytes_per_sec =
        static_cast<double>(args.GetInt("throttle-mib", 256)) * 1048576.0;
  }
  Compactor compactor(&ing, copts);
  auto stats = compactor.Compact();
  if (!stats.ok()) {
    std::fprintf(stderr, "compaction failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf("completed compaction: generation %lld, copied %lld masks "
              "(%.2f MiB), dropped %lld, reclaimed %.2f MiB in %.2f ms "
              "(swap pause %.2f ms)\n",
              static_cast<long long>(stats->generation),
              static_cast<long long>(stats->masks_copied),
              stats->bytes_copied / 1048576.0,
              static_cast<long long>(stats->masks_dropped),
              stats->dead_bytes_reclaimed / 1048576.0, stats->total_ms,
              stats->swap_pause_ms);
  return 0;
}

/// Replays a recorded serve session (serve --port --record F) against the
/// store, in-process: registers --dir as a catalog dataset and drives the
/// trace through catalog::ReplayTrace (docs/OBSERVABILITY.md). Open loop
/// reproduces the recorded arrival times (scaled by --speed); --closed-loop
/// replays the same requests through N closed-loop clients instead.
int RunReplay(const Args& args) {
  if (!args.Has("dir") || !args.Has("trace")) return Usage();
  auto requests = obs::LoadTrace(args.Get("trace"));
  if (!requests.ok()) {
    std::fprintf(stderr, "%s\n", requests.status().ToString().c_str());
    return 1;
  }

  const std::shared_ptr<BufferPool> pool = PoolFromArgs(args, /*def_mib=*/256);
  DatasetConfig config;
  config.store.cache = pool;
  config.session.cache = pool;
  config.session.incremental = args.Has("incremental");
  config.session.use_index = !args.Has("no-index");
  config.service.num_workers = static_cast<size_t>(args.GetInt("workers", 4));
  config.service.max_queue_depth =
      static_cast<size_t>(args.GetInt("queue-depth", 256));

  Catalog catalog;
  const std::string name = args.Get("name", "default");
  auto dataset = catalog.Register(name, args.Get("dir"), config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "register failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  ReplayOptions ropts;
  ropts.open_loop = !args.Has("closed-loop");
  ropts.speed = std::strtod(args.Get("speed", "1").c_str(), nullptr);
  ropts.closed_loop_clients =
      static_cast<int>(args.GetInt("clients", 4));
  // A recorded trace names the dataset it was served from; replaying into
  // a local catalog re-targets every line at the dataset registered here.
  ropts.dataset_override = name;
  auto stats = ReplayTrace(&catalog, *requests, ropts);
  if (!stats.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }

  std::printf("-- replayed %zu recorded requests (%s, speed %.2gx)\n",
              requests->size(), ropts.open_loop ? "open loop" : "closed loop",
              ropts.speed);
  std::printf("-- %llu submitted, %llu completed, %llu failed in %.3fs "
              "(%.1f qps)\n",
              static_cast<unsigned long long>(stats->submitted),
              static_cast<unsigned long long>(stats->completed),
              static_cast<unsigned long long>(stats->failed),
              stats->wall_seconds,
              stats->wall_seconds > 0 ? stats->submitted / stats->wall_seconds
                                      : 0.0);
  for (size_t c = 0; c < kNumPriorityClasses; ++c) {
    if (stats->by_class[c] == 0) continue;
    std::printf("   class %-12s %llu\n",
                PriorityClassToString(static_cast<PriorityClass>(c)),
                static_cast<unsigned long long>(stats->by_class[c]));
  }
  PrintServiceStats((*dataset)->service()->Stats());
  catalog.ShutdownAll();
  return stats->completed > 0 ? 0 : 1;
}

}  // namespace
}  // namespace masksearch

int main(int argc, char** argv) {
  using namespace masksearch;
  const Args args = ParseArgs(argc, argv);
  if (args.Has("help") || args.command == "help" || args.command == "--help") {
    return Usage(0);
  }
  if (args.Has("version") || args.command == "version" ||
      args.command == "--version") {
    std::printf("masksearch_cli %s\n", VersionString());
    return 0;
  }
  if (args.command == "generate") return RunGenerate(args);
  if (args.command == "info") return RunInfo(args);
  if (args.command == "query") return RunQuery(args);
  if (args.command == "stats") return RunStats(args);
  if (args.command == "serve") return RunServe(args);
  if (args.command == "client") return RunClient(args);
  if (args.command == "explain") return RunExplain(args);
  if (args.command == "ingest") return RunIngest(args);
  if (args.command == "compact") return RunCompact(args);
  if (args.command == "replay") return RunReplay(args);
  if (args.command == "shard") return RunShard(args);
  if (args.command == "import") return RunImport(args);
  if (args.command == "export") return RunExport(args);
  return Usage();
}
