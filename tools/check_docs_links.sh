#!/usr/bin/env bash
# Docs lint: every relative markdown link in README.md, ROADMAP.md, and
# docs/*.md must resolve to an existing file (anchors are stripped; http(s)
# and mailto links are skipped). Run from anywhere; CI runs it as the
# docs-lint job.
set -euo pipefail

cd "$(dirname "$0")/.."

status=0
checked=0

# The docs tree has a required core: a rename or deletion must fail CI even
# if no page links to the victim yet.
for doc in docs/ARCHITECTURE.md docs/STORAGE_FORMAT.md docs/PERFORMANCE.md \
           docs/CACHING.md docs/SERVING.md docs/NETWORK.md \
           docs/REPLICATION.md docs/INGEST.md docs/COMPACTION.md \
           docs/OBSERVABILITY.md; do
  if [ ! -f "$doc" ]; then
    echo "missing required doc: $doc" >&2
    status=1
  fi
done
for f in README.md ROADMAP.md docs/*.md; do
  [ -f "$f" ] || continue
  base="$(dirname "$f")"
  # Extract the (target) of every markdown [text](target) link.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    target="${target%%#*}"          # drop anchors
    [ -z "$target" ] && continue    # pure-anchor link
    checked=$((checked + 1))
    if [ ! -e "$base/$target" ] && [ ! -e "$target" ]; then
      echo "broken link in $f: $target" >&2
      status=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
done

echo "checked $checked relative links"
exit $status
