// Unit tests for common/: Status, Result, serialization, RNG, thread pool,
// and statistics helpers.

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "masksearch/common/random.h"
#include "masksearch/common/result.h"
#include "masksearch/common/serialize.h"
#include "masksearch/common/stats.h"
#include "masksearch/common/status.h"
#include "masksearch/common/thread_pool.h"

namespace masksearch {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::IOError("disk on fire");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(st.message(), "disk on fire");
  EXPECT_EQ(st.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, AllConstructorsSetMatchingCode) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopiesShareState) {
  Status a = Status::NotFound("gone");
  Status b = a;
  EXPECT_EQ(b.message(), "gone");
  EXPECT_TRUE(b.IsNotFound());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  MS_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_TRUE(Chained(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoubledOrError(int x) {
  MS_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*DoubledOrError(21), 42);
  EXPECT_TRUE(DoubledOrError(-1).status().IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).ValueUnsafe();
  EXPECT_EQ(*owned, 7);
}

TEST(SerializeTest, RoundTripsAllWidths) {
  BufferWriter w;
  w.PutU8(0xab);
  w.PutU16(0xbeef);
  w.PutU32(0xdeadbeefu);
  w.PutU64(0x0123456789abcdefull);
  w.PutI32(-12345);
  w.PutI64(-9876543210123LL);
  w.PutF32(3.25f);
  w.PutF64(-2.5e-10);
  w.PutString("hello");

  BufferReader r(w.buffer());
  EXPECT_EQ(*r.GetU8(), 0xab);
  EXPECT_EQ(*r.GetU16(), 0xbeef);
  EXPECT_EQ(*r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(*r.GetU64(), 0x0123456789abcdefull);
  EXPECT_EQ(*r.GetI32(), -12345);
  EXPECT_EQ(*r.GetI64(), -9876543210123LL);
  EXPECT_FLOAT_EQ(*r.GetF32(), 3.25f);
  EXPECT_DOUBLE_EQ(*r.GetF64(), -2.5e-10);
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SerializeTest, LittleEndianLayout) {
  BufferWriter w;
  w.PutU32(0x01020304u);
  const std::string& b = w.buffer();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(b[0]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(b[3]), 0x01);
}

TEST(SerializeTest, VectorRoundTrip) {
  BufferWriter w;
  std::vector<uint32_t> v = {1, 2, 3, 0xffffffffu};
  w.PutVector(v);
  BufferReader r(w.buffer());
  auto got = r.GetVector<uint32_t>();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, v);
}

TEST(SerializeTest, ExhaustionIsCorruption) {
  BufferWriter w;
  w.PutU16(7);
  BufferReader r(w.buffer());
  EXPECT_TRUE(r.GetU32().status().IsCorruption());
}

TEST(SerializeTest, OversizedVectorLengthRejected) {
  BufferWriter w;
  w.PutU64(1ull << 60);  // absurd element count
  BufferReader r(w.buffer());
  EXPECT_TRUE(r.GetVector<uint32_t>().status().IsCorruption());
}

TEST(SerializeTest, StringLengthBeyondBufferRejected) {
  BufferWriter w;
  w.PutU32(1000);  // length prefix with no payload
  BufferReader r(w.buffer());
  EXPECT_TRUE(r.GetString().status().IsCorruption());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sum2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, ForkIndependence) {
  Rng a(42);
  Rng fork = a.Fork();
  EXPECT_NE(a.NextU64(), fork.NextU64());
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForInlineWithNullPool) {
  std::vector<int> hits(64, 0);
  ParallelFor(nullptr, hits.size(), [&](size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForEmpty) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(&pool, 0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 3);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 5);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.25), 2);
}

TEST(StatsTest, SummaryBasics) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  v.push_back(1000);  // outlier
  DistributionSummary s = Summarize(v);
  EXPECT_EQ(s.count, 101u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 1000);
  EXPECT_NEAR(s.median, 51, 1);
  EXPECT_EQ(s.num_outliers, 1u);
  EXPECT_LT(s.whisker_hi, 1000);
}

TEST(StatsTest, SummaryEmpty) {
  DistributionSummary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonR(x, y), 1.0, 1e-12);
  std::vector<double> yn = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonR(x, yn), -1.0, 1e-12);
}

TEST(StatsTest, PearsonDegenerateCases) {
  EXPECT_DOUBLE_EQ(PearsonR({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonR({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonR({1, 2}, {1, 2, 3}), 0.0);
}

}  // namespace
}  // namespace masksearch
