// Catalog-layer tests: named datasets, the TTL'd metadata cache, and
// prepared statements (docs/NETWORK.md).

#include "masksearch/catalog/catalog.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "masksearch/catalog/metadata_cache.h"
#include "masksearch/catalog/prepared.h"
#include "masksearch/exec/session.h"
#include "masksearch/sql/binder.h"
#include "masksearch/sql/parser.h"
#include "tests/test_util.h"

namespace masksearch {
namespace {

using testing_util::MakeStore;
using testing_util::TempDir;

SessionOptions SmallSession() {
  SessionOptions opts;
  opts.chi.cell_width = opts.chi.cell_height = 8;
  opts.chi.num_bins = 8;
  return opts;
}

// ---------------------------------------------------------------------------
// PreparedStatement
// ---------------------------------------------------------------------------

TEST(PreparedStatementTest, BindMatchesLiteralSql) {
  TempDir dir("prepared");
  auto store = MakeStore(dir.path(), 24, 2, 32, 32);
  auto session = Session::Open(store.get(), SmallSession()).ValueOrDie();

  auto stmt = PreparedStatement::Prepare(
                  "SELECT mask_id FROM MasksDatabaseView "
                  "WHERE CP(mask, object, (?, 1.0)) > ?;")
                  .ValueOrDie();
  EXPECT_EQ(stmt->num_params(), 2);

  auto literal = sql::ParseAndBind(
                     "SELECT mask_id FROM MasksDatabaseView "
                     "WHERE CP(mask, object, (0.6, 1.0)) > 40;")
                     .ValueOrDie();
  auto bound = stmt->Bind({0.6, 40}).ValueOrDie();

  const auto expected = session->Filter(literal.filter).ValueOrDie();
  const auto got = session->Filter(bound.filter).ValueOrDie();
  EXPECT_EQ(expected.mask_ids, got.mask_ids);
  EXPECT_FALSE(got.mask_ids.empty() && expected.mask_ids.empty() &&
               store->num_masks() == 0);
}

TEST(PreparedStatementTest, RebindChangesTheAnswer) {
  TempDir dir("rebind");
  auto store = MakeStore(dir.path(), 24, 2, 32, 32);
  auto session = Session::Open(store.get(), SmallSession()).ValueOrDie();

  auto stmt = PreparedStatement::Prepare(
                  "SELECT mask_id FROM MasksDatabaseView "
                  "WHERE CP(mask, object, (?, 1.0)) > ?;")
                  .ValueOrDie();
  const auto loose =
      session->Filter(stmt->Bind({0.2, 1}).ValueOrDie().filter).ValueOrDie();
  const auto tight =
      session->Filter(stmt->Bind({0.95, 900}).ValueOrDie().filter)
          .ValueOrDie();
  // Same statement, different parameters: the selective binding returns a
  // subset of the loose one.
  EXPECT_LE(tight.mask_ids.size(), loose.mask_ids.size());
  for (MaskId id : tight.mask_ids) {
    EXPECT_NE(std::find(loose.mask_ids.begin(), loose.mask_ids.end(), id),
              loose.mask_ids.end());
  }
}

TEST(PreparedStatementTest, ParamCountMismatchIsTyped) {
  auto stmt = PreparedStatement::Prepare(
                  "SELECT mask_id FROM MasksDatabaseView "
                  "WHERE CP(mask, object, (?, 1.0)) > ?;")
                  .ValueOrDie();
  EXPECT_TRUE(stmt->Bind({0.5}).status().IsInvalidArgument());
  EXPECT_TRUE(stmt->Bind({0.5, 10, 3}).status().IsInvalidArgument());
  EXPECT_TRUE(stmt->Bind({}).status().IsInvalidArgument());
}

TEST(PreparedStatementTest, UnparameterizedBindWithoutValues) {
  auto stmt = PreparedStatement::Prepare(
                  "SELECT mask_id FROM MasksDatabaseView "
                  "WHERE CP(mask, object, (0.5, 1.0)) > 10;")
                  .ValueOrDie();
  EXPECT_EQ(stmt->num_params(), 0);
  MS_EXPECT_OK(stmt->Bind({}).status());
}

TEST(PreparedStatementTest, SyntaxErrorSurfacesAtPrepare) {
  EXPECT_TRUE(
      PreparedStatement::Prepare("SELECT FROM nothing").status()
          .IsInvalidArgument());
}

TEST(PreparedStatementTest, ParameterizedQueryRequiresValues) {
  // Binding a parameterized statement through the plain Bind(stmt) entry
  // point (no values) is a typed error, not a silent zero-fill.
  auto stmt = sql::ParseSelect(
                  "SELECT mask_id FROM MasksDatabaseView "
                  "WHERE CP(mask, object, (?, 1.0)) > 5;")
                  .ValueOrDie();
  EXPECT_TRUE(sql::Bind(stmt).status().IsInvalidArgument());
}

TEST(PreparedStatementTest, ParamsAnywhereConstantsFold) {
  // Parameters in CP ranges, thresholds, and top-k HAVING positions.
  auto stmt = PreparedStatement::Prepare(
                  "SELECT image_id, CP(mask, object, (?, ?)) AS v "
                  "FROM MasksDatabaseView ORDER BY v DESC LIMIT 5;")
                  .ValueOrDie();
  EXPECT_EQ(stmt->num_params(), 2);
  auto bound = stmt->Bind({0.25, 0.75}).ValueOrDie();
  EXPECT_EQ(bound.kind, sql::BoundQuery::Kind::kTopK);
}

// ---------------------------------------------------------------------------
// MetadataCache
// ---------------------------------------------------------------------------

Selection ModelSelection(ModelId model) {
  Selection sel;
  sel.model_ids = {model};
  return sel;
}

TEST(MetadataCacheTest, MemoizesMetadataConstrainedSelections) {
  TempDir dir("metacache");
  auto store = MakeStore(dir.path(), 16, 2, 16, 16);
  MetadataCache cache(store.get(), MetadataCacheOptions{});

  const uint64_t first = cache.EstimateSelectionBytes(ModelSelection(0));
  const uint64_t second = cache.EstimateSelectionBytes(ModelSelection(0));
  EXPECT_EQ(first, second);
  EXPECT_GT(first, 0u);

  const MetadataCache::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(MetadataCacheTest, UnconstrainedAndIdSelectionsBypassTheTable) {
  TempDir dir("metabypass");
  auto store = MakeStore(dir.path(), 8, 2, 16, 16);
  MetadataCache cache(store.get(), MetadataCacheOptions{});

  Selection all;  // unconstrained: whole store, O(1)
  EXPECT_EQ(cache.EstimateSelectionBytes(all), store->TotalDataBytes());

  Selection ids;
  ids.mask_ids = {0, 1, 2};
  EXPECT_GT(cache.EstimateSelectionBytes(ids), 0u);

  const MetadataCache::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(MetadataCacheTest, InvalidateExpiresEverything) {
  TempDir dir("metaepoch");
  auto store = MakeStore(dir.path(), 8, 2, 16, 16);
  MetadataCache cache(store.get(), MetadataCacheOptions{});

  (void)cache.EstimateSelectionBytes(ModelSelection(0));
  (void)cache.EstimateSelectionBytes(ModelSelection(1));
  EXPECT_EQ(cache.stats().misses, 2u);

  cache.Invalidate();
  (void)cache.EstimateSelectionBytes(ModelSelection(0));
  EXPECT_EQ(cache.stats().misses, 3u);  // epoch bump: re-walk
  (void)cache.EstimateSelectionBytes(ModelSelection(0));
  EXPECT_EQ(cache.stats().hits, 1u);  // fresh entry serves again
}

TEST(MetadataCacheTest, TtlExpiresEntries) {
  TempDir dir("metattl");
  auto store = MakeStore(dir.path(), 8, 2, 16, 16);
  MetadataCacheOptions opts;
  opts.ttl_seconds = 0.02;
  MetadataCache cache(store.get(), opts);

  (void)cache.EstimateSelectionBytes(ModelSelection(0));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  (void)cache.EstimateSelectionBytes(ModelSelection(0));
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(MetadataCacheTest, MatchesTheExactWalk) {
  TempDir dir("metaexact");
  auto store = MakeStore(dir.path(), 12, 2, 16, 16);
  MetadataCache cache(store.get(), MetadataCacheOptions{});

  uint64_t expected = 0;
  for (MaskId id = 0; id < store->num_masks(); ++id) {
    if (store->meta(id).model_id == 1) expected += store->BlobSize(id);
  }
  EXPECT_EQ(cache.EstimateSelectionBytes(ModelSelection(1)), expected);
  // The memoized read agrees with the walk it replaced.
  EXPECT_EQ(cache.EstimateSelectionBytes(ModelSelection(1)), expected);
}

TEST(MetadataCacheTest, BoundedTableResetsWhenFull) {
  TempDir dir("metabound");
  auto store = MakeStore(dir.path(), 4, 2, 16, 16);
  MetadataCacheOptions opts;
  opts.max_entries = 4;
  MetadataCache cache(store.get(), opts);

  for (ModelId m = 0; m < 8; ++m) {
    Selection sel;
    sel.model_ids = {m};
    sel.mask_types = {MaskType::kSaliencyMap};
    (void)cache.EstimateSelectionBytes(sel);
  }
  EXPECT_LE(cache.stats().entries, 4u);
}

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

DatasetConfig SmallConfig() {
  DatasetConfig config;
  config.session = SmallSession();
  config.service.num_workers = 2;
  return config;
}

TEST(CatalogTest, ServesMultipleNamedDatasets) {
  TempDir a("cat_a"), b("cat_b");
  { auto s = MakeStore(a.path(), 8, 1, 16, 16, /*seed=*/1); }
  { auto s = MakeStore(b.path(), 12, 1, 16, 16, /*seed=*/2); }

  Catalog catalog;
  Dataset* da = catalog.Register("alpha", a.path(), SmallConfig()).ValueOrDie();
  Dataset* db = catalog.Register("beta", b.path(), SmallConfig()).ValueOrDie();
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_EQ(catalog.Find("alpha"), da);
  EXPECT_EQ(catalog.Find("beta"), db);
  EXPECT_EQ(catalog.Find("gamma"), nullptr);
  EXPECT_EQ(da->store().num_masks(), 8);
  EXPECT_EQ(db->store().num_masks(), 12);

  const std::vector<std::string> names = catalog.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "beta");

  // Each dataset serves queries through its own service.
  auto bound = sql::ParseAndBind(
                   "SELECT mask_id FROM MasksDatabaseView "
                   "WHERE CP(mask, object, (0.5, 1.0)) > 1;")
                   .ValueOrDie();
  ServiceRequest req;
  req.query = RequestFromBound(bound);
  MS_EXPECT_OK(da->service()->Execute(req).status());
  MS_EXPECT_OK(db->service()->Execute(std::move(req)).status());
  catalog.ShutdownAll();
}

TEST(CatalogTest, DuplicateNameIsAlreadyExists) {
  TempDir dir("cat_dup");
  { auto s = MakeStore(dir.path(), 4, 1, 16, 16); }
  Catalog catalog;
  MS_ASSERT_OK(catalog.Register("d", dir.path(), SmallConfig()).status());
  EXPECT_TRUE(catalog.Register("d", dir.path(), SmallConfig())
                  .status()
                  .IsAlreadyExists());
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(CatalogTest, OpenFailureRegistersNothing) {
  Catalog catalog;
  EXPECT_FALSE(
      catalog.Register("ghost", "/nonexistent/path", SmallConfig()).ok());
  EXPECT_EQ(catalog.size(), 0u);
  EXPECT_EQ(catalog.Find("ghost"), nullptr);
}

TEST(CatalogTest, InstallsMetadataCacheAsCostEstimator) {
  TempDir dir("cat_cost");
  { auto s = MakeStore(dir.path(), 16, 2, 16, 16); }
  Catalog catalog;
  Dataset* d = catalog.Register("d", dir.path(), SmallConfig()).ValueOrDie();

  // Repeated submissions of a metadata-constrained selection pay the
  // O(catalog) walk once; admission afterwards hits the memo.
  auto bound = sql::ParseAndBind(
                   "SELECT mask_id FROM MasksDatabaseView "
                   "WHERE model_id = 1 AND CP(mask, object, (0.5, 1.0)) > 1;")
                   .ValueOrDie();
  for (int i = 0; i < 5; ++i) {
    ServiceRequest req;
    req.query = RequestFromBound(bound);
    MS_ASSERT_OK(d->service()->Execute(std::move(req)).status());
  }
  const MetadataCache::CacheStats stats = d->metadata()->stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_GE(stats.hits, 4u);
  catalog.ShutdownAll();
}

TEST(CatalogTest, SubmitDefaultsToOwnServiceAndHonorsSubmitter) {
  TempDir dir("cat_submit");
  { auto s = MakeStore(dir.path(), 8, 1, 16, 16); }
  Catalog catalog;
  Dataset* d = catalog.Register("d", dir.path(), SmallConfig()).ValueOrDie();

  const std::string sql =
      "SELECT mask_id FROM MasksDatabaseView "
      "WHERE CP(mask, object, (0.5, 1.0)) > 1;";
  auto bound = sql::ParseAndBind(sql).ValueOrDie();

  // Without a submitter installed, Submit is the dataset's own service.
  ServiceRequest req;
  req.query = RequestFromBound(bound);
  auto pending = d->Submit(std::move(req), sql).ValueOrDie();
  MS_EXPECT_OK(pending->Wait().status());

  // With one installed (the replication seam, docs/REPLICATION.md), every
  // Submit — and the sqltext that keeps routing cache-affine — goes
  // through it instead.
  int calls = 0;
  std::string seen_sql;
  d->set_submitter([&](ServiceRequest r, const std::string& text)
                       -> Result<std::shared_ptr<PendingQuery>> {
    ++calls;
    seen_sql = text;
    return d->service()->Submit(std::move(r));
  });
  ServiceRequest req2;
  req2.query = RequestFromBound(bound);
  auto routed = d->Submit(std::move(req2), sql).ValueOrDie();
  MS_EXPECT_OK(routed->Wait().status());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_sql, sql);
  catalog.ShutdownAll();
}

}  // namespace
}  // namespace masksearch
