// Unit tests for CP expressions and interval arithmetic (§3.3).

#include <gtest/gtest.h>

#include <cmath>

#include "masksearch/common/random.h"
#include "masksearch/query/expression.h"

namespace masksearch {
namespace {

TEST(IntervalTest, Addition) {
  const Interval r = Interval{1, 2} + Interval{10, 20};
  EXPECT_DOUBLE_EQ(r.lo, 11);
  EXPECT_DOUBLE_EQ(r.hi, 22);
}

TEST(IntervalTest, Subtraction) {
  const Interval r = Interval{1, 2} - Interval{10, 20};
  EXPECT_DOUBLE_EQ(r.lo, -19);
  EXPECT_DOUBLE_EQ(r.hi, -8);
}

TEST(IntervalTest, MultiplicationSignCombos) {
  const Interval r = Interval{-2, 3} * Interval{-5, 4};
  EXPECT_DOUBLE_EQ(r.lo, -15);  // 3 * -5
  EXPECT_DOUBLE_EQ(r.hi, 12);   // 3 * 4
}

TEST(IntervalTest, DivisionPositiveDenominator) {
  const Interval r = Interval{2, 6} / Interval{1, 2};
  EXPECT_DOUBLE_EQ(r.lo, 1);
  EXPECT_DOUBLE_EQ(r.hi, 6);
}

TEST(IntervalTest, DivisionStraddlingZeroIsUnbounded) {
  const Interval r = Interval{1, 2} / Interval{-1, 1};
  EXPECT_TRUE(std::isinf(r.lo));
  EXPECT_TRUE(std::isinf(r.hi));
  const Interval rz = Interval{1, 2} / Interval{0, 3};
  EXPECT_TRUE(std::isinf(rz.lo) || std::isinf(rz.hi));
}

TEST(IntervalTest, FromBoundsAndTight) {
  const Interval i = Interval::FromBounds(CpBounds{3, 3});
  EXPECT_TRUE(i.Tight());
  EXPECT_FALSE((Interval{1, 2}).Tight());
}

TEST(CpExprTest, SingleTerm) {
  const CpExpr e = CpExpr::Term(0);
  EXPECT_TRUE(e.IsSingleTerm());
  EXPECT_EQ(e.single_term_index(), 0);
  EXPECT_EQ(e.MaxTermIndex(), 0);
  EXPECT_DOUBLE_EQ(e.EvalExact({42.0}), 42.0);
  const Interval b = e.EvalBounds({Interval{1, 5}});
  EXPECT_DOUBLE_EQ(b.lo, 1);
  EXPECT_DOUBLE_EQ(b.hi, 5);
}

TEST(CpExprTest, Constant) {
  const CpExpr e = CpExpr::Constant(2.5);
  EXPECT_FALSE(e.IsSingleTerm());
  EXPECT_EQ(e.MaxTermIndex(), -1);
  EXPECT_DOUBLE_EQ(e.EvalExact({}), 2.5);
  EXPECT_TRUE(e.EvalBounds({}).Tight());
}

TEST(CpExprTest, RatioExpression) {
  // Example 1: CP(mask, roi, ..) / CP(mask, -, ..).
  const CpExpr e = CpExpr::Term(0) / CpExpr::Term(1);
  EXPECT_FALSE(e.IsSingleTerm());
  EXPECT_EQ(e.MaxTermIndex(), 1);
  EXPECT_DOUBLE_EQ(e.EvalExact({30.0, 120.0}), 0.25);
  const Interval b = e.EvalBounds({Interval{10, 20}, Interval{100, 200}});
  EXPECT_DOUBLE_EQ(b.lo, 0.05);
  EXPECT_DOUBLE_EQ(b.hi, 0.2);
}

TEST(CpExprTest, CompositeArithmetic) {
  // 2 * t0 + t1 - 3
  const CpExpr e = CpExpr::Constant(2.0) * CpExpr::Term(0) + CpExpr::Term(1) -
                   CpExpr::Constant(3.0);
  EXPECT_DOUBLE_EQ(e.EvalExact({5.0, 7.0}), 14.0);
  const Interval b = e.EvalBounds({Interval{0, 1}, Interval{10, 20}});
  EXPECT_DOUBLE_EQ(b.lo, 7);
  EXPECT_DOUBLE_EQ(b.hi, 19);
}

TEST(CpExprTest, BoundsContainExactForRandomExpressions) {
  // Interval soundness: the exact value of any expression lies inside the
  // interval computed from per-term intervals containing the exact values.
  Rng rng = Rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const double v0 = rng.Uniform(0, 100);
    const double v1 = rng.Uniform(1, 100);  // keep denominators positive
    const double v2 = rng.Uniform(0, 100);
    const Interval i0{v0 - rng.Uniform(0, 5), v0 + rng.Uniform(0, 5)};
    const Interval i1{std::max(0.5, v1 - rng.Uniform(0, 5)),
                      v1 + rng.Uniform(0, 5)};
    const Interval i2{v2 - rng.Uniform(0, 5), v2 + rng.Uniform(0, 5)};
    const CpExpr e = (CpExpr::Term(0) + CpExpr::Term(2)) / CpExpr::Term(1) -
                     CpExpr::Term(2) * CpExpr::Constant(0.5);
    const double exact = e.EvalExact({v0, v1, v2});
    const Interval b = e.EvalBounds({i0, i1, i2});
    ASSERT_LE(b.lo, exact + 1e-9);
    ASSERT_GE(b.hi, exact - 1e-9);
  }
}

TEST(CpExprTest, ToStringReadable) {
  const CpExpr e = CpExpr::Term(0) / CpExpr::Term(1);
  EXPECT_EQ(e.ToString(), "(CP#0 / CP#1)");
}

TEST(CpTermTest, ResolveRoiVariants) {
  MaskMeta meta;
  meta.width = 100;
  meta.height = 80;
  meta.object_box = ROI(10, 10, 50, 40);

  CpTerm constant;
  constant.roi_source = RoiSource::kConstant;
  constant.constant_roi = ROI(0, 0, 5, 5);
  EXPECT_EQ(ResolveRoi(constant, meta), ROI(0, 0, 5, 5));

  CpTerm full;
  full.roi_source = RoiSource::kFullMask;
  EXPECT_EQ(ResolveRoi(full, meta), ROI(0, 0, 100, 80));

  CpTerm object;
  object.roi_source = RoiSource::kObjectBox;
  EXPECT_EQ(ResolveRoi(object, meta), ROI(10, 10, 50, 40));
}

TEST(CpTermTest, ToStringShowsRoiKind) {
  CpTerm t;
  t.roi_source = RoiSource::kObjectBox;
  t.range = ValueRange(0.8, 1.0);
  EXPECT_NE(t.ToString().find("object"), std::string::npos);
}

}  // namespace
}  // namespace masksearch
