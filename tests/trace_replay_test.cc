// Cross-layer observability integration tests (docs/OBSERVABILITY.md):
// trace-id propagation over real sockets into the server's slow-query log,
// span accounting (queue + exec partition the request's life), metrics
// exposure over the wire, and the record -> replay round trip reproducing
// a live session's request count and per-class mix exactly.

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "masksearch/catalog/catalog.h"
#include "masksearch/catalog/trace_replay.h"
#include "masksearch/net/client.h"
#include "masksearch/net/server.h"
#include "masksearch/obs/metrics.h"
#include "masksearch/obs/recorder.h"
#include "masksearch/obs/slow_query_log.h"
#include "tests/test_util.h"

namespace masksearch {
namespace {

using testing_util::MakeStore;
using testing_util::TempDir;

constexpr char kFilterSql[] =
    "SELECT mask_id FROM MasksDatabaseView "
    "WHERE CP(mask, object, (0.6, 1.0)) > 40;";
constexpr char kParamSql[] =
    "SELECT mask_id FROM MasksDatabaseView "
    "WHERE CP(mask, object, (?, 1.0)) > ?;";

// Serves one catalog dataset over loopback TCP with a threshold-0
// slow-query log (every request kept) and a trace recorder attached.
class TraceReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("trace_replay");
    { auto s = MakeStore(dir_->path(), 16, 2, 32, 32); }
    DatasetConfig config;
    // A small buffer pool puts the CachedMaskStore decorator in the read
    // path, so the scrape test sees the cache layer's counters too.
    config.store.cache_budget_bytes = 4u << 20;
    config.session.chi.cell_width = config.session.chi.cell_height = 8;
    config.session.chi.num_bins = 8;
    config.service.num_workers = 2;
    slow_log_ = std::make_unique<obs::SlowQueryLog>([] {
      obs::SlowQueryLog::Options o;
      o.threshold_seconds = 0;  // keep everything
      o.capacity = 256;
      return o;
    }());
    config.service.slow_query_log = slow_log_.get();
    dataset_ = catalog_.Register("main", dir_->path(), config).ValueOrDie();

    recorder_ =
        obs::TraceRecorder::Open(dir_->file("session.trace")).ValueOrDie();
    net::NetServerOptions opts;
    opts.slow_log = slow_log_.get();
    opts.recorder = recorder_.get();
    server_ = net::NetServer::Start(&catalog_, opts).ValueOrDie();
  }

  void TearDown() override {
    server_->Stop();
    catalog_.ShutdownAll();
  }

  std::unique_ptr<net::NetClient> Connect() {
    net::NetClientOptions opts;
    opts.recv_timeout_seconds = 10;
    return net::NetClient::Connect("127.0.0.1", server_->port(), opts)
        .ValueOrDie();
  }

  std::unique_ptr<TempDir> dir_;
  Catalog catalog_;
  Dataset* dataset_ = nullptr;
  std::unique_ptr<obs::SlowQueryLog> slow_log_;
  std::unique_ptr<obs::TraceRecorder> recorder_;
  std::unique_ptr<net::NetServer> server_;
};

TEST_F(TraceReplayTest, ClientTraceIdReachesServerSlowLog) {
  auto client = Connect();
  const uint64_t trace_id = 0xFEEDFACE;
  MS_ASSERT_OK(client
                   ->Query("main", kFilterSql, /*tenant=*/5,
                           PriorityClass::kInteractive,
                           /*deadline_seconds=*/0, trace_id)
                   .status());

  // The client-minted id is visible verbatim server-side, attached to the
  // request's span breakdown.
  const auto entries = slow_log_->Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].trace_id, trace_id);
  EXPECT_EQ(entries[0].tenant, 5);
  EXPECT_EQ(entries[0].priority_class, "interactive");
  EXPECT_EQ(entries[0].status, "OK");

  // And the wire TRACE command renders the same log to the client.
  const std::string rendered = client->SlowQueries().ValueOrDie();
  EXPECT_NE(rendered.find("trace=4277009102"), std::string::npos)
      << rendered;
}

TEST_F(TraceReplayTest, SpansPartitionRequestLatency) {
  auto client = Connect();
  for (int i = 0; i < 8; ++i) {
    MS_ASSERT_OK(client->Query("main", kFilterSql).status());
  }
  const auto entries = slow_log_->Entries();
  ASSERT_EQ(entries.size(), 8u);
  for (const auto& e : entries) {
    // queue_wait + exec partition the request's life inside the service:
    // together they must account for (almost) all of the total latency.
    // The slack covers the handoff gaps between span boundaries.
    EXPECT_GT(e.total_seconds, 0.0);
    const double accounted = e.queue_seconds + e.exec_seconds;
    EXPECT_LE(accounted, e.total_seconds * 1.001 + 1e-6);
    EXPECT_GE(accounted, e.total_seconds * 0.5);
    // The executor's own spans never exceed the exec envelope they nest in.
    double exec_spans = 0;
    for (const auto& s : e.spans) {
      if (s.name != std::string("queue_wait") &&
          s.name != std::string("exec")) {
        exec_spans += s.total_seconds;
      }
    }
    EXPECT_LE(exec_spans, e.total_seconds * 2 + 1e-6);
  }
}

TEST_F(TraceReplayTest, MetricsScrapeOverWire) {
  auto client = Connect();
  for (int i = 0; i < 4; ++i) {
    MS_ASSERT_OK(client->Query("main", kFilterSql).status());
  }
  // Guarantee at least one physical mask read through the cached store, so
  // the scrape demonstrably covers the storage and cache layers, not just
  // the service counters.
  MS_ASSERT_OK(dataset_->store().LoadMask(0).status());

  const std::string text = client->Metrics().ValueOrDie();
  EXPECT_NE(text.find("# TYPE"), std::string::npos);
  EXPECT_NE(text.find("ms_service_"), std::string::npos);
  EXPECT_NE(text.find("ms_net_requests_total"), std::string::npos);
  EXPECT_NE(text.find("ms_storage_read_ops_total"), std::string::npos);
  EXPECT_NE(text.find("ms_cache_mask_"), std::string::npos);
  EXPECT_NE(text.find("ms_cache_buffer_pool_hit_ratio"), std::string::npos);

  const std::string json = client->Metrics(/*json=*/true).ValueOrDie();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"ms_service_"), std::string::npos);
}

TEST_F(TraceReplayTest, RecordReplayRoundTripPreservesCountAndMix) {
  // Drive a deterministic session: 12 one-shot queries round-robined over
  // the three priority classes, plus a prepared statement executed 3 times
  // (recorded with its bound params).
  auto client = Connect();
  std::array<uint64_t, kNumPriorityClasses> sent_by_class{};
  for (int i = 0; i < 12; ++i) {
    const auto priority = static_cast<PriorityClass>(i % kNumPriorityClasses);
    ++sent_by_class[static_cast<size_t>(priority)];
    MS_ASSERT_OK(
        client->Query("main", kFilterSql, /*tenant=*/i % 3, priority)
            .status());
  }
  auto handle = client->Prepare("main", kParamSql).ValueOrDie();
  for (int i = 0; i < 3; ++i) {
    ++sent_by_class[static_cast<size_t>(PriorityClass::kBatch)];
    MS_ASSERT_OK(client
                     ->Execute(handle.stmt_id, {0.5 + 0.1 * i, 40.0},
                               /*tenant=*/0, PriorityClass::kBatch)
                     .status());
  }
  client.reset();
  recorder_->Flush();
  EXPECT_EQ(recorder_->recorded(), 15u);

  auto loaded = obs::LoadTrace(recorder_->path()).ValueOrDie();
  ASSERT_EQ(loaded.size(), 15u);

  // Replay in both loop modes; each must reproduce the recorded request
  // count and per-class mix exactly.
  for (const bool open_loop : {false, true}) {
    ReplayOptions ropts;
    ropts.open_loop = open_loop;
    ropts.closed_loop_clients = 3;
    ropts.speed = 1000;  // collapse recorded think time in the open loop
    const ReplayStats stats =
        ReplayTrace(&catalog_, loaded, ropts).ValueOrDie();
    EXPECT_EQ(stats.submitted, 15u) << "open_loop=" << open_loop;
    EXPECT_EQ(stats.completed, 15u) << "open_loop=" << open_loop;
    EXPECT_EQ(stats.failed, 0u) << "open_loop=" << open_loop;
    for (size_t c = 0; c < kNumPriorityClasses; ++c) {
      EXPECT_EQ(stats.by_class[c], sent_by_class[c])
          << "open_loop=" << open_loop << " class=" << c;
    }
  }
}

TEST_F(TraceReplayTest, ReplayRejectsEmptyTraceAndUnknownDataset) {
  EXPECT_TRUE(ReplayTrace(&catalog_, {}, ReplayOptions{})
                  .status()
                  .IsInvalidArgument());
  obs::RecordedRequest r;
  r.dataset = "nope";
  r.sql = kFilterSql;
  EXPECT_TRUE(ReplayTrace(&catalog_, {r}, ReplayOptions{})
                  .status()
                  .IsNotFound());
}

TEST_F(TraceReplayTest, ReplayCountsUnparseableLinesAsFailed) {
  obs::RecordedRequest good;
  good.dataset = "main";
  good.sql = kFilterSql;
  obs::RecordedRequest bad = good;
  bad.sql = "SELECT THIS IS NOT SQL";
  ReplayOptions ropts;
  ropts.open_loop = false;
  const ReplayStats stats =
      ReplayTrace(&catalog_, {good, bad}, ropts).ValueOrDie();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 1u);
}

}  // namespace
}  // namespace masksearch
