// Unit tests for predicates and three-valued bound evaluation (§3.2.1 Step 2,
// §3.3).

#include <gtest/gtest.h>

#include "masksearch/common/random.h"
#include "masksearch/query/predicate.h"

namespace masksearch {
namespace {

TEST(TriLogicTest, AndTable) {
  EXPECT_EQ(TriAnd(Tri::kTrue, Tri::kTrue), Tri::kTrue);
  EXPECT_EQ(TriAnd(Tri::kTrue, Tri::kFalse), Tri::kFalse);
  EXPECT_EQ(TriAnd(Tri::kFalse, Tri::kUnknown), Tri::kFalse);
  EXPECT_EQ(TriAnd(Tri::kTrue, Tri::kUnknown), Tri::kUnknown);
  EXPECT_EQ(TriAnd(Tri::kUnknown, Tri::kUnknown), Tri::kUnknown);
}

TEST(TriLogicTest, OrTable) {
  EXPECT_EQ(TriOr(Tri::kFalse, Tri::kFalse), Tri::kFalse);
  EXPECT_EQ(TriOr(Tri::kTrue, Tri::kUnknown), Tri::kTrue);
  EXPECT_EQ(TriOr(Tri::kFalse, Tri::kUnknown), Tri::kUnknown);
  EXPECT_EQ(TriOr(Tri::kUnknown, Tri::kUnknown), Tri::kUnknown);
}

TEST(TriLogicTest, NotTable) {
  EXPECT_EQ(TriNot(Tri::kTrue), Tri::kFalse);
  EXPECT_EQ(TriNot(Tri::kFalse), Tri::kTrue);
  EXPECT_EQ(TriNot(Tri::kUnknown), Tri::kUnknown);
}

TEST(CompareBoundsTest, GreaterThanCases) {
  // §3.2.1 Step 2: the three cases for CP > T.
  EXPECT_EQ(CompareBounds(Interval{10, 20}, CompareOp::kGt, 5), Tri::kTrue);
  EXPECT_EQ(CompareBounds(Interval{10, 20}, CompareOp::kGt, 25), Tri::kFalse);
  EXPECT_EQ(CompareBounds(Interval{10, 20}, CompareOp::kGt, 15), Tri::kUnknown);
  // Boundary: upper == T means the strict predicate can never hold.
  EXPECT_EQ(CompareBounds(Interval{10, 20}, CompareOp::kGt, 20), Tri::kFalse);
  // lower == T is not enough for certainty under strict >.
  EXPECT_EQ(CompareBounds(Interval{10, 20}, CompareOp::kGt, 10), Tri::kUnknown);
}

TEST(CompareBoundsTest, LessThanCases) {
  EXPECT_EQ(CompareBounds(Interval{10, 20}, CompareOp::kLt, 25), Tri::kTrue);
  EXPECT_EQ(CompareBounds(Interval{10, 20}, CompareOp::kLt, 5), Tri::kFalse);
  EXPECT_EQ(CompareBounds(Interval{10, 20}, CompareOp::kLt, 15), Tri::kUnknown);
  EXPECT_EQ(CompareBounds(Interval{10, 20}, CompareOp::kLt, 10), Tri::kFalse);
}

TEST(CompareBoundsTest, NonStrictVariants) {
  EXPECT_EQ(CompareBounds(Interval{10, 20}, CompareOp::kGe, 20), Tri::kUnknown);
  EXPECT_EQ(CompareBounds(Interval{20, 20}, CompareOp::kGe, 20), Tri::kTrue);
  EXPECT_EQ(CompareBounds(Interval{10, 20}, CompareOp::kLe, 20), Tri::kTrue);
  EXPECT_EQ(CompareBounds(Interval{10, 20}, CompareOp::kLe, 9), Tri::kFalse);
}

TEST(CompareExactTest, AllOps) {
  EXPECT_TRUE(CompareExact(5, CompareOp::kLt, 6));
  EXPECT_FALSE(CompareExact(6, CompareOp::kLt, 6));
  EXPECT_TRUE(CompareExact(6, CompareOp::kLe, 6));
  EXPECT_TRUE(CompareExact(7, CompareOp::kGt, 6));
  EXPECT_FALSE(CompareExact(6, CompareOp::kGt, 6));
  EXPECT_TRUE(CompareExact(6, CompareOp::kGe, 6));
}

TEST(PredicateTest, SimpleCompare) {
  const Predicate p =
      Predicate::Compare(CpExpr::Term(0), CompareOp::kGt, 100.0);
  EXPECT_TRUE(p.EvalExact({150.0}));
  EXPECT_FALSE(p.EvalExact({50.0}));
  EXPECT_EQ(p.EvalBounds({Interval{120, 200}}), Tri::kTrue);
  EXPECT_EQ(p.EvalBounds({Interval{0, 50}}), Tri::kFalse);
  EXPECT_EQ(p.EvalBounds({Interval{50, 150}}), Tri::kUnknown);
  EXPECT_EQ(p.MaxTermIndex(), 0);
}

TEST(PredicateTest, ConjunctionShortCircuitsOnCertainFalse) {
  std::vector<Predicate> children;
  children.push_back(Predicate::Compare(CpExpr::Term(0), CompareOp::kGt, 10));
  children.push_back(Predicate::Compare(CpExpr::Term(1), CompareOp::kLt, 5));
  const Predicate p = Predicate::And(std::move(children));
  // Term 1 interval certainly fails → whole AND certainly false even though
  // term 0 is unknown.
  EXPECT_EQ(p.EvalBounds({Interval{5, 15}, Interval{10, 20}}), Tri::kFalse);
  EXPECT_EQ(p.EvalBounds({Interval{15, 20}, Interval{0, 2}}), Tri::kTrue);
  EXPECT_EQ(p.EvalBounds({Interval{5, 15}, Interval{0, 2}}), Tri::kUnknown);
  EXPECT_TRUE(p.EvalExact({11, 4}));
  EXPECT_FALSE(p.EvalExact({11, 6}));
  EXPECT_EQ(p.MaxTermIndex(), 1);
}

TEST(PredicateTest, Disjunction) {
  std::vector<Predicate> children;
  children.push_back(Predicate::Compare(CpExpr::Term(0), CompareOp::kGt, 10));
  children.push_back(Predicate::Compare(CpExpr::Term(0), CompareOp::kLt, 2));
  const Predicate p = Predicate::Or(std::move(children));
  EXPECT_EQ(p.EvalBounds({Interval{20, 30}}), Tri::kTrue);
  EXPECT_EQ(p.EvalBounds({Interval{4, 8}}), Tri::kFalse);
  EXPECT_EQ(p.EvalBounds({Interval{4, 15}}), Tri::kUnknown);
  EXPECT_TRUE(p.EvalExact({1}));
  EXPECT_TRUE(p.EvalExact({11}));
  EXPECT_FALSE(p.EvalExact({5}));
}

TEST(PredicateTest, Negation) {
  const Predicate p = Predicate::Not(
      Predicate::Compare(CpExpr::Term(0), CompareOp::kGt, 10));
  EXPECT_TRUE(p.EvalExact({5}));
  EXPECT_FALSE(p.EvalExact({15}));
  EXPECT_EQ(p.EvalBounds({Interval{20, 30}}), Tri::kFalse);
  EXPECT_EQ(p.EvalBounds({Interval{0, 5}}), Tri::kTrue);
  EXPECT_EQ(p.EvalBounds({Interval{5, 15}}), Tri::kUnknown);
}

TEST(PredicateTest, MultiCpComparisonViaDifference) {
  // CP0 > CP1 expressed as (CP0 - CP1) > 0 (§3.3 monotone composition).
  const Predicate p = Predicate::Compare(CpExpr::Term(0) - CpExpr::Term(1),
                                         CompareOp::kGt, 0.0);
  EXPECT_EQ(p.EvalBounds({Interval{100, 120}, Interval{10, 20}}), Tri::kTrue);
  EXPECT_EQ(p.EvalBounds({Interval{0, 5}, Interval{10, 20}}), Tri::kFalse);
  EXPECT_EQ(p.EvalBounds({Interval{10, 30}, Interval{20, 25}}), Tri::kUnknown);
}

TEST(PredicateTest, BoundEvalIsSoundForRandomPredicates) {
  // If the bound evaluation returns certain true/false, the exact evaluation
  // with any values inside the intervals must agree.
  Rng rng = Rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    const double t = rng.Uniform(0, 100);
    std::vector<Predicate> kids;
    kids.push_back(Predicate::Compare(CpExpr::Term(0), CompareOp::kGt, t));
    kids.push_back(
        Predicate::Compare(CpExpr::Term(1), CompareOp::kLe, rng.Uniform(0, 100)));
    const Predicate p = trial % 2 == 0 ? Predicate::And(std::move(kids))
                                       : Predicate::Or(std::move(kids));
    const double v0 = rng.Uniform(0, 100), v1 = rng.Uniform(0, 100);
    const Interval i0{v0 - rng.Uniform(0, 10), v0 + rng.Uniform(0, 10)};
    const Interval i1{v1 - rng.Uniform(0, 10), v1 + rng.Uniform(0, 10)};
    const Tri tri = p.EvalBounds({i0, i1});
    const bool exact = p.EvalExact({v0, v1});
    if (tri == Tri::kTrue) {
      ASSERT_TRUE(exact);
    }
    if (tri == Tri::kFalse) {
      ASSERT_FALSE(exact);
    }
  }
}

TEST(PredicateTest, ToStringRendersTree) {
  std::vector<Predicate> kids;
  kids.push_back(Predicate::Compare(CpExpr::Term(0), CompareOp::kGt, 5));
  kids.push_back(Predicate::Compare(CpExpr::Term(1), CompareOp::kLt, 9));
  const Predicate p = Predicate::And(std::move(kids));
  const std::string s = p.ToString();
  EXPECT_NE(s.find("AND"), std::string::npos);
  EXPECT_NE(s.find("CP#0"), std::string::npos);
}

TEST(PredicateTest, EmptyDetection) {
  Predicate p;
  EXPECT_TRUE(p.Empty());
  EXPECT_FALSE(
      Predicate::Compare(CpExpr::Term(0), CompareOp::kGt, 1).Empty());
}

}  // namespace
}  // namespace masksearch
