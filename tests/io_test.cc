// Unit tests for common/io: files, random-access reads, writers.

#include <gtest/gtest.h>

#include "masksearch/common/io.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::TempDir;

TEST(IoTest, WriteAndReadFile) {
  TempDir dir("io");
  const std::string path = dir.file("f.bin");
  MS_ASSERT_OK(WriteFile(path, "payload"));
  auto contents = ReadFile(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "payload");
}

TEST(IoTest, ReadMissingFileIsIOError) {
  EXPECT_TRUE(ReadFile("/nonexistent/definitely/missing").status().IsIOError());
}

TEST(IoTest, PathExists) {
  TempDir dir("io");
  EXPECT_TRUE(PathExists(dir.path()));
  EXPECT_FALSE(PathExists(dir.file("missing")));
  MS_ASSERT_OK(WriteFile(dir.file("x"), ""));
  EXPECT_TRUE(PathExists(dir.file("x")));
}

TEST(IoTest, FileSize) {
  TempDir dir("io");
  MS_ASSERT_OK(WriteFile(dir.file("x"), std::string(1234, 'a')));
  EXPECT_EQ(*FileSize(dir.file("x")), 1234u);
}

TEST(IoTest, CreateDirsNested) {
  TempDir dir("io");
  const std::string nested = dir.file("a/b/c");
  MS_ASSERT_OK(CreateDirs(nested));
  EXPECT_TRUE(PathExists(nested));
  MS_ASSERT_OK(CreateDirs(nested));  // idempotent
}

TEST(IoTest, RemoveFileIfExists) {
  TempDir dir("io");
  MS_ASSERT_OK(WriteFile(dir.file("x"), "y"));
  MS_ASSERT_OK(RemoveFileIfExists(dir.file("x")));
  EXPECT_FALSE(PathExists(dir.file("x")));
  MS_ASSERT_OK(RemoveFileIfExists(dir.file("x")));  // missing is OK
}

TEST(RandomAccessFileTest, ReadAtArbitraryOffsets) {
  TempDir dir("io");
  std::string data(4096, '\0');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i % 251);
  }
  MS_ASSERT_OK(WriteFile(dir.file("d"), data));

  auto file = RandomAccessFile::Open(dir.file("d"));
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->size(), data.size());

  char buf[100];
  MS_ASSERT_OK((*file)->ReadAt(1000, sizeof(buf), buf));
  EXPECT_EQ(std::string(buf, sizeof(buf)), data.substr(1000, sizeof(buf)));
}

TEST(RandomAccessFileTest, ReadPastEofFails) {
  TempDir dir("io");
  MS_ASSERT_OK(WriteFile(dir.file("d"), "abc"));
  auto file = RandomAccessFile::Open(dir.file("d"));
  ASSERT_TRUE(file.ok());
  char buf[10];
  EXPECT_TRUE((*file)->ReadAt(1, sizeof(buf), buf).IsIOError());
}

TEST(FileWriterTest, AppendsAndCounts) {
  TempDir dir("io");
  auto w = FileWriter::Create(dir.file("out"));
  ASSERT_TRUE(w.ok());
  MS_ASSERT_OK((*w)->Append("abc"));
  MS_ASSERT_OK((*w)->Append("defg"));
  EXPECT_EQ((*w)->bytes_written(), 7u);
  MS_ASSERT_OK((*w)->Close());
  EXPECT_EQ(*ReadFile(dir.file("out")), "abcdefg");
}

TEST(FileWriterTest, AppendAfterCloseFails) {
  TempDir dir("io");
  auto w = FileWriter::Create(dir.file("out"));
  ASSERT_TRUE(w.ok());
  MS_ASSERT_OK((*w)->Close());
  EXPECT_FALSE((*w)->Append("late").ok());
}

}  // namespace
}  // namespace masksearch
