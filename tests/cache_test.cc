// Tests for the memory subsystem (docs/CACHING.md): BufferPool replacement
// order, pinning, scan-resistant admission, and stats; CachedMaskStore
// byte parity against the uncached store, dup-id batch behavior, counter
// forwarding, budget-overflow eviction, and cold caches after resharding.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "masksearch/cache/buffer_pool.h"
#include "masksearch/cache/cached_mask_store.h"
#include "masksearch/cache/chi_cache.h"
#include "masksearch/index/chi_builder.h"
#include "masksearch/ingest/ingestor.h"
#include "masksearch/storage/sharded_mask_store.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::RandomMask;
using testing_util::TempDir;

CacheKey Key(uint64_t owner, int64_t id, int32_t shard = 0) {
  CacheKey k;
  k.owner = owner;
  k.id = id;
  k.shard = shard;
  k.space = CacheSpace::kMaskBlob;
  return k;
}

std::shared_ptr<const void> Payload(int tag) {
  return std::make_shared<const int>(tag);
}

int Tag(const BufferPool::Pin& pin) {
  return *static_cast<const int*>(pin.get());
}

// --- BufferPool ---

TEST(BufferPoolTest, InsertLookupAndStats) {
  BufferPool::Options opts;
  opts.budget_bytes = 1024;
  opts.shards = 1;
  BufferPool pool(opts);
  const uint64_t owner = BufferPool::NewOwnerId();

  EXPECT_FALSE(pool.Lookup(Key(owner, 1)));  // miss
  {
    BufferPool::Pin pin = pool.Insert(Key(owner, 1), Payload(41), 100);
    ASSERT_TRUE(pin);
    EXPECT_EQ(Tag(pin), 41);
    const CacheStats mid = pool.Stats();
    EXPECT_EQ(mid.pinned_entries, 1u);
    EXPECT_EQ(mid.pinned_bytes, 100u);
  }
  BufferPool::Pin hit = pool.Lookup(Key(owner, 1));
  ASSERT_TRUE(hit);
  EXPECT_EQ(Tag(hit), 41);

  const CacheStats stats = pool.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.resident_entries, 1u);
  EXPECT_EQ(stats.resident_bytes, 100u);
  EXPECT_EQ(stats.budget_bytes, 1024u);
  EXPECT_EQ(stats.shards, 1);
  EXPECT_DOUBLE_EQ(stats.HitRatio(), 0.5);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(BufferPoolTest, FirstInsertWins) {
  BufferPool::Options opts;
  opts.budget_bytes = 1024;
  opts.shards = 1;
  BufferPool pool(opts);
  const uint64_t owner = BufferPool::NewOwnerId();

  pool.Insert(Key(owner, 5), Payload(1), 64);
  BufferPool::Pin second = pool.Insert(Key(owner, 5), Payload(2), 64);
  EXPECT_EQ(Tag(second), 1);  // the racing duplicate is dropped
  EXPECT_EQ(pool.Stats().insertions, 1u);
}

TEST(BufferPoolTest, BudgetOverflowEvictsInLruOrder) {
  BufferPool::Options opts;
  opts.budget_bytes = 300;  // fits three 100-byte entries
  opts.shards = 1;
  opts.admission = CacheAdmission::kAdmitAll;  // plain LRU: deterministic
  BufferPool pool(opts);
  const uint64_t owner = BufferPool::NewOwnerId();

  pool.Insert(Key(owner, 1), Payload(1), 100);
  pool.Insert(Key(owner, 2), Payload(2), 100);
  pool.Insert(Key(owner, 3), Payload(3), 100);
  // Touch 1: recency order (MRU first) is now 1, 3, 2.
  EXPECT_TRUE(pool.Lookup(Key(owner, 1)));

  pool.Insert(Key(owner, 4), Payload(4), 100);  // evicts 2 (LRU)
  EXPECT_FALSE(pool.Contains(Key(owner, 2)));
  EXPECT_TRUE(pool.Contains(Key(owner, 1)));
  EXPECT_TRUE(pool.Contains(Key(owner, 3)));
  EXPECT_TRUE(pool.Contains(Key(owner, 4)));

  pool.Insert(Key(owner, 5), Payload(5), 100);  // evicts 3 (next LRU)
  EXPECT_FALSE(pool.Contains(Key(owner, 3)));
  EXPECT_TRUE(pool.Contains(Key(owner, 1)));

  const CacheStats stats = pool.Stats();
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.resident_entries, 3u);
  EXPECT_LE(stats.resident_bytes, 300u);
}

TEST(BufferPoolTest, PinnedEntriesAreNeverEvicted) {
  BufferPool::Options opts;
  opts.budget_bytes = 200;
  opts.shards = 1;
  opts.admission = CacheAdmission::kAdmitAll;
  BufferPool pool(opts);
  const uint64_t owner = BufferPool::NewOwnerId();

  BufferPool::Pin pinned = pool.Insert(Key(owner, 1), Payload(1), 100);
  BufferPool::Pin pinned2 = pool.Insert(Key(owner, 2), Payload(2), 100);
  // Over budget with everything pinned: the budget is a soft bound.
  pool.Insert(Key(owner, 3), Payload(3), 100);
  EXPECT_TRUE(pool.Contains(Key(owner, 1)));
  EXPECT_TRUE(pool.Contains(Key(owner, 2)));
  // Entry 3 was unpinned the moment its returned Pin was dropped, so the
  // over-budget shard reclaimed it; the pinned pair must survive.
  EXPECT_GE(pool.Stats().resident_bytes, 200u);

  // Releasing the pins settles the byte debt back under budget.
  pinned.Release();
  pinned2.Release();
  pool.Insert(Key(owner, 4), Payload(4), 100);
  EXPECT_LE(pool.Stats().resident_bytes, 200u);
  EXPECT_EQ(pool.Stats().pinned_entries, 0u);
}

TEST(BufferPoolTest, ScanResistantAdmissionKeepsWorkingSet) {
  BufferPool::Options opts;
  opts.budget_bytes = 400;
  opts.shards = 1;
  opts.admission = CacheAdmission::kScanResistant;
  BufferPool pool(opts);
  const uint64_t owner = BufferPool::NewOwnerId();

  // Working set: two entries, re-referenced once -> protected segment.
  pool.Insert(Key(owner, 1), Payload(1), 100);
  pool.Insert(Key(owner, 2), Payload(2), 100);
  EXPECT_TRUE(pool.Lookup(Key(owner, 1)));
  EXPECT_TRUE(pool.Lookup(Key(owner, 2)));

  // One-touch scan of 20 entries, each seen exactly once: they churn
  // through probation without displacing the protected working set.
  for (int64_t id = 100; id < 120; ++id) {
    pool.Insert(Key(owner, id), Payload(static_cast<int>(id)), 100);
  }
  EXPECT_TRUE(pool.Contains(Key(owner, 1)));
  EXPECT_TRUE(pool.Contains(Key(owner, 2)));

  // The same scan under kAdmitAll flushes everything.
  BufferPool::Options all = opts;
  all.admission = CacheAdmission::kAdmitAll;
  BufferPool lru(all);
  lru.Insert(Key(owner, 1), Payload(1), 100);
  lru.Insert(Key(owner, 2), Payload(2), 100);
  EXPECT_TRUE(lru.Lookup(Key(owner, 1)));
  EXPECT_TRUE(lru.Lookup(Key(owner, 2)));
  for (int64_t id = 100; id < 120; ++id) {
    lru.Insert(Key(owner, id), Payload(static_cast<int>(id)), 100);
  }
  EXPECT_FALSE(lru.Contains(Key(owner, 1)));
  EXPECT_FALSE(lru.Contains(Key(owner, 2)));
}

TEST(BufferPoolTest, OversizedPayloadIsRejectedButUsable) {
  BufferPool::Options opts;
  opts.budget_bytes = 100;
  opts.shards = 1;
  BufferPool pool(opts);
  const uint64_t owner = BufferPool::NewOwnerId();

  BufferPool::Pin pin = pool.Insert(Key(owner, 1), Payload(9), 1000);
  ASSERT_TRUE(pin);          // detached: the caller can still use the value
  EXPECT_EQ(Tag(pin), 9);
  EXPECT_FALSE(pool.Contains(Key(owner, 1)));
  EXPECT_EQ(pool.Stats().admission_rejects, 1u);
  EXPECT_EQ(pool.Stats().resident_entries, 0u);
}

TEST(BufferPoolTest, EraseOwnerAndClear) {
  BufferPool::Options opts;
  opts.budget_bytes = 4096;
  opts.shards = 2;
  BufferPool pool(opts);
  const uint64_t a = BufferPool::NewOwnerId();
  const uint64_t b = BufferPool::NewOwnerId();
  for (int64_t id = 0; id < 8; ++id) {
    pool.Insert(Key(a, id), Payload(1), 64);
    pool.Insert(Key(b, id), Payload(2), 64);
  }
  uint64_t entries = 0;
  uint64_t bytes = 0;
  pool.OwnerUsage(a, &entries, &bytes);
  EXPECT_EQ(entries, 8u);
  EXPECT_EQ(bytes, 8u * 64u);

  pool.EraseOwner(a);
  pool.OwnerUsage(a, &entries, &bytes);
  EXPECT_EQ(entries, 0u);
  pool.OwnerUsage(b, &entries, nullptr);
  EXPECT_EQ(entries, 8u);

  pool.Clear();
  EXPECT_EQ(pool.Stats().resident_entries, 0u);
}

TEST(ChiCacheTest, PutGetFirstWinsAndSurvivesEviction) {
  BufferPool::Options opts;
  opts.budget_bytes = 1 << 20;
  opts.shards = 1;
  auto pool = std::make_shared<BufferPool>(opts);
  ChiConfig cfg;
  cfg.cell_width = cfg.cell_height = 4;
  cfg.num_bins = 4;
  ChiCache cache(pool, cfg);

  Rng rng(3);
  EXPECT_EQ(cache.Get(7), nullptr);
  EXPECT_FALSE(cache.Contains(7));
  const Mask m = RandomMask(&rng, 16, 16);
  cache.Put(7, BuildChi(m, cfg));
  const std::shared_ptr<const Chi> first = cache.Get(7);
  ASSERT_NE(first, nullptr);
  cache.Put(7, BuildChi(RandomMask(&rng, 16, 16), cfg));
  EXPECT_EQ(cache.Get(7).get(), first.get());  // first build wins
  EXPECT_EQ(cache.size(), 1u);

  // Shared ownership keeps an evicted CHI valid for its holder.
  pool->Clear();
  EXPECT_EQ(cache.Get(7), nullptr);
  EXPECT_EQ(first->width(), 16);
}

// --- CachedMaskStore ---

struct StorePair {
  std::unique_ptr<TempDir> dir;
  std::shared_ptr<BufferPool> pool;
  std::unique_ptr<MaskStore> cached;
  std::unique_ptr<MaskStore> plain;
};

StorePair MakePair(int count, int32_t num_shards, StorageKind kind,
                   uint64_t budget = 64ull << 20, int32_t pool_shards = 4) {
  StorePair p;
  p.dir = std::make_unique<TempDir>("cachedstore");
  Rng rng(19);
  MaskStoreWriter::Options wopts;
  wopts.kind = kind;
  wopts.num_shards = num_shards;
  auto writer = MaskStoreWriter::Create(p.dir->path(), wopts).ValueOrDie();
  for (int i = 0; i < count; ++i) {
    MaskMeta meta;
    meta.image_id = i / 2;
    meta.model_id = i % 2;
    meta.object_box = ROI(1, 1, 10, 8);
    writer->Append(meta, RandomMask(&rng, 12, 10)).ValueOrDie();
  }
  writer->Finish().CheckOK();

  BufferPool::Options popts;
  popts.budget_bytes = budget;
  popts.shards = pool_shards;
  p.pool = std::make_shared<BufferPool>(popts);
  MaskStore::Options copts;
  copts.cache = p.pool;
  p.cached = MaskStore::Open(p.dir->path(), copts).ValueOrDie();
  p.plain = MaskStore::Open(p.dir->path()).ValueOrDie();
  return p;
}

void ExpectMaskEq(const Mask& got, const Mask& want) {
  ASSERT_EQ(got.width(), want.width());
  ASSERT_EQ(got.height(), want.height());
  EXPECT_EQ(got.data(), want.data());  // byte-identical float payloads
}

TEST(CachedMaskStoreTest, OpenWrapsWhenCacheConfigured) {
  StorePair p = MakePair(6, 1, StorageKind::kRawFloat32);
  EXPECT_NE(dynamic_cast<CachedMaskStore*>(p.cached.get()), nullptr);
  EXPECT_EQ(dynamic_cast<CachedMaskStore*>(p.plain.get()), nullptr);

  // The budget knob alone also wraps (private pool).
  MaskStore::Options opts;
  opts.cache_budget_bytes = 1 << 20;
  auto store = MaskStore::Open(p.dir->path(), opts).ValueOrDie();
  EXPECT_NE(dynamic_cast<CachedMaskStore*>(store.get()), nullptr);
}

TEST(CachedMaskStoreTest, LoadMaskParityColdAndWarm) {
  for (StorageKind kind :
       {StorageKind::kRawFloat32, StorageKind::kCompressed}) {
    StorePair p = MakePair(8, 2, kind);
    for (int pass = 0; pass < 2; ++pass) {
      for (MaskId id = 0; id < p.plain->num_masks(); ++id) {
        const Mask want = p.plain->LoadMask(id).ValueOrDie();
        const Mask got = p.cached->LoadMask(id).ValueOrDie();
        ExpectMaskEq(got, want);
      }
    }
    auto* cached = static_cast<CachedMaskStore*>(p.cached.get());
    EXPECT_EQ(cached->cache_misses(), 8u);  // pass 1
    EXPECT_EQ(cached->cache_hits(), 8u);    // pass 2
    // Physical-traffic counters move only on misses.
    EXPECT_EQ(cached->masks_loaded(), 8u);
    EXPECT_EQ(p.plain->masks_loaded(), 16u);
  }
}

TEST(CachedMaskStoreTest, BatchParityDupsHitOnce) {
  StorePair p = MakePair(10, 4, StorageKind::kRawFloat32);
  const std::vector<MaskId> ids = {7, 3, 7, 0, 3, 7, 9};
  const std::vector<Mask> want = p.plain->LoadMaskBatch(ids).ValueOrDie();
  const std::vector<Mask> got = p.cached->LoadMaskBatch(ids).ValueOrDie();
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) ExpectMaskEq(got[i], want[i]);

  auto* cached = static_cast<CachedMaskStore*>(p.cached.get());
  // 4 distinct ids in the batch: one pool access (miss) each, duplicates
  // served from the pinned entry.
  EXPECT_EQ(cached->cache_misses(), 4u);
  EXPECT_EQ(cached->cache_hits(), 0u);

  const std::vector<Mask> warm = p.cached->LoadMaskBatch(ids).ValueOrDie();
  for (size_t i = 0; i < warm.size(); ++i) ExpectMaskEq(warm[i], want[i]);
  EXPECT_EQ(cached->cache_hits(), 4u);  // one hit per distinct id
  EXPECT_EQ(cached->masks_loaded(), 4u);  // no new physical loads
}

TEST(CachedMaskStoreTest, TinyBudgetStillByteIdentical) {
  // Budget fits roughly two decoded masks (one pool shard so nothing is
  // rejected as oversized): every pass thrashes, results must not change.
  const uint64_t budget =
      2 * (12 * 10 * sizeof(float) + kCacheEntryOverheadBytes);
  StorePair p = MakePair(12, 2, StorageKind::kRawFloat32, budget,
                         /*pool_shards=*/1);
  for (int pass = 0; pass < 3; ++pass) {
    std::vector<MaskId> ids;
    for (MaskId id = 0; id < 12; ++id) ids.push_back(id);
    const std::vector<Mask> want = p.plain->LoadMaskBatch(ids).ValueOrDie();
    const std::vector<Mask> got = p.cached->LoadMaskBatch(ids).ValueOrDie();
    for (size_t i = 0; i < got.size(); ++i) ExpectMaskEq(got[i], want[i]);
  }
  EXPECT_GT(p.pool->Stats().evictions, 0u);
  // Per-shard budgets are enforced once all pins are released.
  EXPECT_LE(p.pool->Stats().resident_bytes, p.pool->options().budget_bytes);
}

TEST(CachedMaskStoreTest, LoadMaskRowsServedFromCacheWithParity) {
  StorePair p = MakePair(4, 1, StorageKind::kRawFloat32);
  const Mask wantRows = p.plain->LoadMaskRows(2, 3, 7).ValueOrDie();
  // Cold: forwarded to the inner store.
  ExpectMaskEq(p.cached->LoadMaskRows(2, 3, 7).ValueOrDie(), wantRows);
  // Warm the full mask, then the row slice comes from the pool.
  (void)p.cached->LoadMask(2).ValueOrDie();
  const uint64_t physical = p.cached->masks_loaded();
  ExpectMaskEq(p.cached->LoadMaskRows(2, 3, 7).ValueOrDie(), wantRows);
  EXPECT_EQ(p.cached->masks_loaded(), physical);  // no inner traffic

  // Error parity with the uncached path.
  EXPECT_TRUE(p.cached->LoadMaskRows(2, 5, 3).status().IsInvalidArgument());
  EXPECT_TRUE(p.cached->LoadMask(99).status().IsNotFound());
  EXPECT_TRUE(p.cached->LoadMaskBatch({0, 99}).status().IsNotFound());
}

TEST(CachedMaskStoreTest, SharedPoolStoresDoNotCrossTalk) {
  StorePair a = MakePair(4, 1, StorageKind::kRawFloat32);
  // Second store over the same pool: same mask ids, different directory.
  TempDir dir_b("cachedstore_b");
  Rng rng(99);
  auto writer = MaskStoreWriter::Create(dir_b.path()).ValueOrDie();
  for (int i = 0; i < 4; ++i) {
    MaskMeta meta;
    meta.object_box = ROI(0, 0, 4, 4);
    writer->Append(meta, RandomMask(&rng, 12, 10)).ValueOrDie();
  }
  writer->Finish().CheckOK();
  MaskStore::Options opts;
  opts.cache = a.pool;
  auto b = MaskStore::Open(dir_b.path(), opts).ValueOrDie();

  (void)a.cached->LoadMask(1).ValueOrDie();
  const Mask from_b = b->LoadMask(1).ValueOrDie();
  auto* cached_b = static_cast<CachedMaskStore*>(b.get());
  EXPECT_EQ(cached_b->cache_hits(), 0u);  // never a's entry
  EXPECT_EQ(cached_b->cache_misses(), 1u);
  ExpectMaskEq(from_b, MaskStore::Open(dir_b.path())
                           .ValueOrDie()
                           ->LoadMask(1)
                           .ValueOrDie());
}

TEST(CachedMaskStoreTest, ReshardedStoreOpensWithColdCache) {
  StorePair p = MakePair(9, 1, StorageKind::kRawFloat32);
  // Warm the source cache, then migrate. ReadBlob bypasses the cache, so
  // the migration copies stored bytes verbatim.
  for (MaskId id = 0; id < 9; ++id) (void)p.cached->LoadMask(id).ValueOrDie();
  TempDir dst("reshard_dst");
  MS_ASSERT_OK(ReshardMaskStore(*p.cached, dst.path(), 3));

  MaskStore::Options opts;
  opts.cache = p.pool;  // same pool, fresh owner -> cold and consistent
  auto out = MaskStore::Open(dst.path(), opts).ValueOrDie();
  auto* cached_out = static_cast<CachedMaskStore*>(out.get());
  EXPECT_EQ(cached_out->cache_hits(), 0u);
  EXPECT_EQ(cached_out->cache_misses(), 0u);
  for (MaskId id = 0; id < 9; ++id) {
    ExpectMaskEq(out->LoadMask(id).ValueOrDie(),
                 p.plain->LoadMask(id).ValueOrDie());
  }
  EXPECT_EQ(cached_out->cache_hits(), 0u);  // every first touch was a miss
  EXPECT_EQ(cached_out->cache_misses(), 9u);
}

TEST(CachedMaskStoreTest, DroppedSnapshotReturnsPoolBytesToBaseline) {
  // Regression (docs/COMPACTION.md): every Snapshot's CachedMaskStore runs
  // under a fresh BufferPool owner id, and dropping the last snapshot pin
  // must erase that owner — including entries a racing reader still held
  // pinned while the wrapper's own erase ran (the snapshot destructor
  // sweeps again after the store is gone). Otherwise each published epoch
  // leaks its blob-cache bytes into the shared pool forever.
  auto pool = std::make_shared<BufferPool>([] {
    BufferPool::Options opts;
    opts.budget_bytes = 8ull << 20;
    opts.shards = 1;
    return opts;
  }());
  IngestorOptions iopts;
  iopts.chi.cell_width = iopts.chi.cell_height = 8;
  iopts.chi.num_bins = 8;
  iopts.num_shards = 2;
  iopts.cache = pool;
  TempDir dir("cachedstore_snapshot_baseline");
  auto ingestor = Ingestor::Create(dir.path(), iopts).ValueOrDie();
  Rng rng(7);
  for (int i = 0; i < 6; ++i) {
    MaskMeta meta;
    (void)ingestor->Append(meta, RandomMask(&rng, 16, 16)).ValueOrDie();
  }
  MS_ASSERT_OK(ingestor->Publish());
  const uint64_t baseline = pool->Stats().resident_bytes;

  std::shared_ptr<const Snapshot> pinned = ingestor->snapshot();
  // Warm the pinned snapshot's blob cache; keep one batch pinned while the
  // next epoch supersedes it (the racing-reader half of the regression).
  for (MaskId id = 0; id < 6; ++id) (void)pinned->store().LoadMask(id);
  EXPECT_GT(pool->Stats().resident_bytes, baseline);
  {
    auto batch = pinned->store().LoadMaskBatch({0, 3}).ValueOrDie();
    (void)batch;
    MS_ASSERT_OK(ingestor->Publish());  // supersede while the batch is live
  }
  pinned.reset();
  // The superseded snapshot's owner is fully swept: back to baseline.
  EXPECT_EQ(pool->Stats().resident_bytes, baseline);
  EXPECT_EQ(ingestor->Stats().live_snapshots, 0);
}

}  // namespace
}  // namespace masksearch
