// Unit tests for the disk bandwidth model.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "masksearch/common/stopwatch.h"
#include "masksearch/storage/disk_throttle.h"

namespace masksearch {
namespace {

TEST(DiskThrottleTest, DisabledIsInstant) {
  DiskThrottle t(0.0);
  EXPECT_FALSE(t.enabled());
  Stopwatch sw;
  for (int i = 0; i < 100; ++i) t.Acquire(1 << 20);
  EXPECT_LT(sw.ElapsedSeconds(), 0.5);
  EXPECT_EQ(t.total_bytes(), 100u << 20);
  EXPECT_EQ(t.total_requests(), 100u);
}

TEST(DiskThrottleTest, EnforcesBandwidth) {
  // 10 MiB/s; 2 MiB should take ~0.2 s.
  DiskThrottle t(10.0 * 1024 * 1024);
  Stopwatch sw;
  t.Acquire(2 * 1024 * 1024);
  const double elapsed = sw.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.15);
  EXPECT_LT(elapsed, 1.0);
}

TEST(DiskThrottleTest, SerializesConcurrentReaders) {
  // Two threads each transfer 1 MiB at 10 MiB/s over one modeled device:
  // total wall time must be ~0.2 s, not ~0.1 s.
  DiskThrottle t(10.0 * 1024 * 1024);
  Stopwatch sw;
  std::thread a([&] { t.Acquire(1024 * 1024); });
  std::thread b([&] { t.Acquire(1024 * 1024); });
  a.join();
  b.join();
  EXPECT_GE(sw.ElapsedSeconds(), 0.15);
}

TEST(DiskThrottleTest, PerRequestLatency) {
  // Latency-only model: 20 requests at 5 ms each ≈ 100 ms.
  DiskThrottle t(0.0, /*latency_us=*/5000.0);
  EXPECT_TRUE(t.enabled());
  Stopwatch sw;
  for (int i = 0; i < 20; ++i) t.Acquire(1);
  EXPECT_GE(sw.ElapsedSeconds(), 0.08);
}

TEST(DiskThrottleTest, ZeroByteAcquireCountsRequest) {
  DiskThrottle t(0.0);
  t.Acquire(0);
  EXPECT_EQ(t.total_requests(), 1u);
  EXPECT_EQ(t.total_bytes(), 0u);
}

TEST(DiskThrottleTest, QueueDepthOverlapsLatency) {
  // 8 concurrent latency-only requests: with queue_depth 8 their 20 ms
  // latencies overlap (~20 ms wall); with queue_depth 1 they serialize
  // (~160 ms wall).
  DiskThrottle deep(0.0, /*latency_us=*/20000.0, /*queue_depth=*/8);
  EXPECT_EQ(deep.queue_depth(), 8);
  Stopwatch sw;
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < 8; ++i) {
      threads.emplace_back([&] { deep.Acquire(1); });
    }
    for (auto& th : threads) th.join();
  }
  const double overlapped = sw.ElapsedSeconds();
  EXPECT_LT(overlapped, 0.12);

  DiskThrottle serial(0.0, /*latency_us=*/20000.0, /*queue_depth=*/1);
  sw.Restart();
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < 8; ++i) {
      threads.emplace_back([&] { serial.Acquire(1); });
    }
    for (auto& th : threads) th.join();
  }
  EXPECT_GE(sw.ElapsedSeconds(), 0.12);
}

TEST(DiskThrottleTest, BandwidthSerializesAcrossQueueSlots) {
  // Transfers share one bus regardless of queue depth: two concurrent 1 MiB
  // reads at 10 MiB/s still take ~0.2 s of wall time.
  DiskThrottle t(10.0 * 1024 * 1024, 0.0, /*queue_depth=*/4);
  Stopwatch sw;
  std::thread a([&] { t.Acquire(1024 * 1024); });
  std::thread b([&] { t.Acquire(1024 * 1024); });
  a.join();
  b.join();
  EXPECT_GE(sw.ElapsedSeconds(), 0.15);
}

TEST(DiskThrottleTest, DefaultQueueDepthIsSerial) {
  DiskThrottle t(0.0, 100.0);
  EXPECT_EQ(t.queue_depth(), 1);
  DiskThrottle clamped(0.0, 100.0, /*queue_depth=*/0);
  EXPECT_EQ(clamped.queue_depth(), 1);
}

}  // namespace
}  // namespace masksearch
