// Tests for the comparison systems: every baseline must return exactly the
// same results as the full-scan reference and as MaskSearch, differing only
// in I/O pattern.

#include <gtest/gtest.h>

#include "masksearch/baselines/full_scan.h"
#include "masksearch/baselines/row_store.h"
#include "masksearch/baselines/tiled_array.h"
#include "masksearch/workload/query_gen.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::MakeStore;
using testing_util::TempDir;

class BaselinesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("base");
    store_ = MakeStore(dir_->path(), 12, 2, 32, 32, /*seed=*/88);

    MS_ASSERT_OK(RowStoreBaseline::CreateFiles(dir_->file("rowstore"), *store_));
    row_ = RowStoreBaseline::Open(dir_->file("rowstore"), store_.get(), nullptr)
               .ValueOrDie();

    TiledArrayBaseline::Options topts;  // tile = whole mask
    MS_ASSERT_OK(
        TiledArrayBaseline::CreateFiles(dir_->file("tiled"), *store_, topts));
    tiled_ = TiledArrayBaseline::Open(dir_->file("tiled"), store_.get(), nullptr)
                 .ValueOrDie();

    full_ = std::make_unique<FullScanBaseline>(store_.get());
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<MaskStore> store_;
  std::unique_ptr<RowStoreBaseline> row_;
  std::unique_ptr<TiledArrayBaseline> tiled_;
  std::unique_ptr<FullScanBaseline> full_;
};

TEST_F(BaselinesTest, FilterQueriesAgree) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    const FilterQuery q = GenerateFilterQuery(&rng, *store_);
    auto a = full_->Filter(q);
    auto b = row_->Filter(q);
    auto c = tiled_->Filter(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok()) << b.status();
    ASSERT_TRUE(c.ok()) << c.status();
    EXPECT_EQ(a->mask_ids, b->mask_ids) << "query " << i;
    EXPECT_EQ(a->mask_ids, c->mask_ids) << "query " << i;
  }
}

TEST_F(BaselinesTest, TopKQueriesAgree) {
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    const TopKQuery q = GenerateTopKQuery(&rng, *store_);
    auto a = full_->TopK(q);
    auto b = row_->TopK(q);
    auto c = tiled_->TopK(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(c.ok());
    ASSERT_EQ(a->items.size(), b->items.size());
    for (size_t j = 0; j < a->items.size(); ++j) {
      EXPECT_EQ(a->items[j].mask_id, b->items[j].mask_id);
      EXPECT_EQ(a->items[j].mask_id, c->items[j].mask_id);
      EXPECT_DOUBLE_EQ(a->items[j].value, c->items[j].value);
    }
  }
}

TEST_F(BaselinesTest, AggregationQueriesAgree) {
  Rng rng(3);
  for (int i = 0; i < 6; ++i) {
    const AggregationQuery q = GenerateAggQuery(&rng, *store_);
    auto a = full_->Aggregate(q);
    auto b = row_->Aggregate(q);
    auto c = tiled_->Aggregate(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(c.ok());
    ASSERT_EQ(a->groups.size(), b->groups.size());
    ASSERT_EQ(a->groups.size(), c->groups.size());
    for (size_t j = 0; j < a->groups.size(); ++j) {
      EXPECT_EQ(a->groups[j].group, b->groups[j].group);
      EXPECT_EQ(a->groups[j].group, c->groups[j].group);
    }
  }
}

TEST_F(BaselinesTest, MaskAggQueriesAgree) {
  MaskAggQuery q;
  q.op = MaskAggOp::kIntersectThreshold;
  q.agg_threshold = 0.7;
  q.term.roi_source = RoiSource::kObjectBox;
  q.term.range = ValueRange(0.7, 1.0);
  q.k = 5;
  auto a = full_->MaskAggregate(q);
  auto b = row_->MaskAggregate(q);
  auto c = tiled_->MaskAggregate(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(a->groups.size(), b->groups.size());
  for (size_t j = 0; j < a->groups.size(); ++j) {
    EXPECT_EQ(a->groups[j].group, b->groups[j].group);
    EXPECT_DOUBLE_EQ(a->groups[j].value, b->groups[j].value);
    EXPECT_EQ(a->groups[j].group, c->groups[j].group);
  }
}

TEST_F(BaselinesTest, BaselinesLoadEveryTargetedMask) {
  Rng rng(4);
  FilterQuery q = GenerateFilterQuery(&rng, *store_);
  q.selection.model_ids = {0};
  auto a = full_->Filter(q);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->stats.masks_loaded, store_->num_masks() / 2);
  auto b = row_->Filter(q);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->stats.masks_loaded, store_->num_masks() / 2);
}

TEST_F(BaselinesTest, TiledArrayReadsOnlyRoiTilesWhenTiled) {
  // With 8×8 tiles, a small constant ROI touches a strict subset of tiles,
  // so the tiled baseline reads fewer bytes than a whole-mask load.
  TiledArrayBaseline::Options topts;
  topts.tile_width = 8;
  topts.tile_height = 8;
  MS_ASSERT_OK(
      TiledArrayBaseline::CreateFiles(dir_->file("tiled8"), *store_, topts));
  auto tiled8 =
      TiledArrayBaseline::Open(dir_->file("tiled8"), store_.get(), nullptr)
          .ValueOrDie();

  TopKQuery q;
  CpTerm t;
  t.roi_source = RoiSource::kConstant;
  t.constant_roi = ROI(0, 0, 8, 8);  // exactly one tile
  t.range = ValueRange(0.5, 1.0);
  q.terms.push_back(t);
  q.order_expr = CpExpr::Term(0);
  q.k = 3;

  auto small = tiled8->TopK(q);
  ASSERT_TRUE(small.ok());
  auto whole = tiled_->TopK(q);
  ASSERT_TRUE(whole.ok());
  // Same answer, fewer bytes.
  ASSERT_EQ(small->items.size(), whole->items.size());
  for (size_t j = 0; j < small->items.size(); ++j) {
    EXPECT_EQ(small->items[j].mask_id, whole->items[j].mask_id);
  }
  EXPECT_LT(small->stats.bytes_read, whole->stats.bytes_read);
  EXPECT_EQ(small->stats.bytes_read,
            static_cast<int64_t>(store_->num_masks()) * 8 * 8 * 4);
}

TEST_F(BaselinesTest, TiledArrayRequiresHomogeneousShapes) {
  TempDir other("hetero");
  auto writer = MaskStoreWriter::Create(other.path()).ValueOrDie();
  Rng rng(5);
  writer->Append(MaskMeta{}, testing_util::RandomMask(&rng, 8, 8)).ValueOrDie();
  writer->Append(MaskMeta{}, testing_util::RandomMask(&rng, 9, 9)).ValueOrDie();
  MS_ASSERT_OK(writer->Finish());
  auto store = MaskStore::Open(other.path()).ValueOrDie();
  TiledArrayBaseline::Options topts;
  EXPECT_TRUE(TiledArrayBaseline::CreateFiles(other.file("t"), *store, topts)
                  .IsInvalidArgument());
}

TEST_F(BaselinesTest, OpenValidatesCatalogMatch) {
  TempDir other("mismatch");
  auto small = MakeStore(other.path(), 3, 1, 32, 32);
  EXPECT_FALSE(
      RowStoreBaseline::Open(dir_->file("rowstore"), small.get(), nullptr).ok());
  EXPECT_FALSE(
      TiledArrayBaseline::Open(dir_->file("tiled"), small.get(), nullptr).ok());
}

TEST_F(BaselinesTest, NamesAreDescriptive) {
  EXPECT_NE(full_->name().find("NumPy"), std::string::npos);
  EXPECT_NE(row_->name().find("PostgreSQL"), std::string::npos);
  EXPECT_NE(tiled_->name().find("TileDB"), std::string::npos);
}

}  // namespace
}  // namespace masksearch
