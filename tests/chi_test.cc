// Unit and property tests for the Cumulative Histogram Index (§3.1),
// including the paper's Figure 4 worked example.

#include <gtest/gtest.h>

#include <tuple>

#include "masksearch/index/chi.h"
#include "masksearch/index/chi_builder.h"
#include "masksearch/query/cp.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::BlobMask;
using testing_util::RandomMask;

/// The 6×6 mask of Figures 4/6: consistent with every value the paper
/// states — H(M,1,1) = [4, 0], H(M,2,2) = [16, 3], C(M, roi⁺)[1] = 8 for
/// roi⁺ = [2,6)², C(M, roi⁻)[1] = 2 for roi⁻ = [2,4)². "High" pixels carry
/// 0.9, the rest 0.1; cell size 2×2, b = 2 bins over [0, 1).
Mask PaperFigureMask() {
  Mask m(6, 6);
  for (float& v : m.mutable_data()) v = 0.1f;
  const int32_t high[][2] = {{2, 2}, {3, 3}, {3, 0}, {4, 2}, {5, 2},
                             {4, 3}, {4, 4}, {5, 5}, {2, 4}};
  for (const auto& p : high) m.set(p[0], p[1], 0.9f);
  return m;
}

ChiConfig PaperConfig() {
  ChiConfig cfg;
  cfg.cell_width = 2;
  cfg.cell_height = 2;
  cfg.num_bins = 2;
  return cfg;
}

TEST(ChiTest, PaperFigure4Example) {
  const Mask m = PaperFigureMask();
  const Chi chi = BuildChi(m, PaperConfig());

  // "for cell (2,2), we have H(M,1,1)[0] = 4 ... and H(M,1,1)[1] = 0".
  EXPECT_EQ(chi.H(1, 1, 0), 4u);
  EXPECT_EQ(chi.H(1, 1, 1), 0u);
  // "For cell (4,4), H(M,2,2) = [16, 3]".
  EXPECT_EQ(chi.H(2, 2, 0), 16u);
  EXPECT_EQ(chi.H(2, 2, 1), 3u);
  // Full prefix: all 36 pixels; 9 high ones.
  EXPECT_EQ(chi.H(3, 3, 0), 36u);
  EXPECT_EQ(chi.H(3, 3, 1), 9u);
  // Sentinel bin is always zero (C[⌈pmax/Δ⌉] = 0).
  EXPECT_EQ(chi.H(3, 3, 2), 0u);
  // Boundary 0 row/column: the empty prefix.
  EXPECT_EQ(chi.H(0, 3, 0), 0u);
  EXPECT_EQ(chi.H(3, 0, 1), 0u);
}

TEST(ChiTest, PaperFigure4RegionC) {
  // C(M, ((3,3),(4,6))) from Figure 4: region [2,4)×[2,6) in half-open
  // coordinates, i.e. boundaries (1,1)..(2,3).
  const Mask m = PaperFigureMask();
  const Chi chi = BuildChi(m, PaperConfig());
  // Exact check against the CP definition for every bin edge.
  const ROI region(2, 2, 4, 6);
  for (int32_t bin = 0; bin <= 2; ++bin) {
    const int64_t expected =
        CountPixels(m, region, ValueRange(bin * 0.5, 1.0));
    EXPECT_EQ(chi.RegionCumulative(1, 1, 2, 3, bin), expected) << "bin " << bin;
  }
}

TEST(ChiTest, BoundariesExactGrid) {
  Rng rng(1);
  const Chi chi = BuildChi(RandomMask(&rng, 8, 6), PaperConfig());
  EXPECT_EQ(chi.num_boundaries_x(), 5);  // 0,2,4,6,8
  EXPECT_EQ(chi.num_boundaries_y(), 4);  // 0,2,4,6
  EXPECT_EQ(chi.boundary_x(0), 0);
  EXPECT_EQ(chi.boundary_x(4), 8);
}

TEST(ChiTest, BoundariesRaggedEdge) {
  Rng rng(2);
  ChiConfig cfg;
  cfg.cell_width = 4;
  cfg.cell_height = 4;
  cfg.num_bins = 4;
  const Chi chi = BuildChi(RandomMask(&rng, 10, 7), cfg);
  // x boundaries: 0, 4, 8, 10; y: 0, 4, 7.
  ASSERT_EQ(chi.num_boundaries_x(), 4);
  EXPECT_EQ(chi.boundary_x(2), 8);
  EXPECT_EQ(chi.boundary_x(3), 10);
  ASSERT_EQ(chi.num_boundaries_y(), 3);
  EXPECT_EQ(chi.boundary_y(2), 7);

  // Floor/Ceil across the ragged edge.
  EXPECT_EQ(chi.FloorBoundaryX(9), 2);
  EXPECT_EQ(chi.CeilBoundaryX(9), 3);
  EXPECT_EQ(chi.FloorBoundaryX(10), 3);
  EXPECT_EQ(chi.CeilBoundaryX(10), 3);
  EXPECT_EQ(chi.FloorBoundaryX(0), 0);
  EXPECT_EQ(chi.CeilBoundaryX(0), 0);
  EXPECT_EQ(chi.FloorBoundaryX(4), 1);
  EXPECT_EQ(chi.CeilBoundaryX(4), 1);
  EXPECT_EQ(chi.CeilBoundaryX(5), 2);
}

TEST(ChiTest, AvailableRegionDefinition) {
  // Figure 4: ((3,3),(4,6)) is available; ((4,4),(5,5)) is not. In half-open
  // 0-based terms: [2,4)×[2,6) has all corners on boundaries; [3,5)×[3,5)
  // does not.
  Rng rng(3);
  const Chi chi = BuildChi(RandomMask(&rng, 6, 6), PaperConfig());
  EXPECT_EQ(chi.FloorBoundaryX(2), chi.CeilBoundaryX(2));  // 2 is a boundary
  EXPECT_NE(chi.FloorBoundaryX(3), chi.CeilBoundaryX(3));  // 3 is not
}

TEST(ChiTest, BinIndexMath) {
  Rng rng(4);
  ChiConfig cfg;
  cfg.cell_width = 2;
  cfg.cell_height = 2;
  cfg.num_bins = 10;  // Δ = 0.1
  const Chi chi = BuildChi(RandomMask(&rng, 4, 4), cfg);
  EXPECT_EQ(chi.BinFloor(0.0), 0);
  EXPECT_EQ(chi.BinCeil(0.0), 0);
  EXPECT_EQ(chi.BinFloor(0.35), 3);
  EXPECT_EQ(chi.BinCeil(0.35), 4);
  EXPECT_EQ(chi.BinFloor(1.0), 10);
  EXPECT_EQ(chi.BinCeil(1.0), 10);
  // Clamping outside the domain.
  EXPECT_EQ(chi.BinFloor(-0.5), 0);
  EXPECT_EQ(chi.BinCeil(2.0), 10);
}

/// Property: H matches the CP definition for every boundary pair and bin.
class ChiPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<int32_t, int32_t, int32_t, int32_t>> {};

TEST_P(ChiPropertyTest, PrefixCountsMatchCpDefinition) {
  const auto [w, h, cell, bins] = GetParam();
  Rng rng(100 + w + h * 3 + cell * 7 + bins * 11);
  const Mask m = BlobMask(&rng, w, h);
  ChiConfig cfg;
  cfg.cell_width = cell;
  cfg.cell_height = cell;
  cfg.num_bins = bins;
  const Chi chi = BuildChi(m, cfg);
  const double delta = cfg.BinWidth();
  for (int32_t bj = 0; bj < chi.num_boundaries_y(); ++bj) {
    for (int32_t bi = 0; bi < chi.num_boundaries_x(); ++bi) {
      const ROI prefix(0, 0, chi.boundary_x(bi), chi.boundary_y(bj));
      for (int32_t bin = 0; bin <= bins; ++bin) {
        const int64_t expected =
            CountPixels(m, prefix, ValueRange(bin * delta, 1.0));
        ASSERT_EQ(chi.H(bi, bj, bin), static_cast<uint32_t>(expected))
            << "boundary (" << bi << "," << bj << ") bin " << bin;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ChiPropertyTest,
    ::testing::Values(std::make_tuple(16, 16, 4, 4),
                      std::make_tuple(17, 13, 4, 8),   // ragged both axes
                      std::make_tuple(32, 8, 8, 16),
                      std::make_tuple(9, 9, 16, 2),    // cell > mask
                      std::make_tuple(28, 28, 7, 12)));

TEST(ChiTest, RegionHistogramMatchesEq2) {
  // Eq. 2 (inclusion–exclusion) must hold for *every* available region.
  Rng rng(5);
  const Mask m = BlobMask(&rng, 20, 20);
  ChiConfig cfg;
  cfg.cell_width = 5;
  cfg.cell_height = 5;
  cfg.num_bins = 8;
  const Chi chi = BuildChi(m, cfg);
  std::vector<int64_t> hist(cfg.num_bins + 1);
  for (int32_t x0 = 0; x0 < chi.num_boundaries_x(); ++x0) {
    for (int32_t x1 = x0 + 1; x1 < chi.num_boundaries_x(); ++x1) {
      for (int32_t y0 = 0; y0 < chi.num_boundaries_y(); ++y0) {
        for (int32_t y1 = y0 + 1; y1 < chi.num_boundaries_y(); ++y1) {
          chi.RegionHistogram(x0, y0, x1, y1, hist.data());
          const ROI region(chi.boundary_x(x0), chi.boundary_y(y0),
                           chi.boundary_x(x1), chi.boundary_y(y1));
          for (int32_t bin = 0; bin <= cfg.num_bins; ++bin) {
            const int64_t expected = CountPixels(
                m, region, ValueRange(bin * cfg.BinWidth(), 1.0));
            ASSERT_EQ(hist[bin], expected);
          }
        }
      }
    }
  }
}

TEST(ChiTest, SerializeRoundTrip) {
  Rng rng(6);
  const Mask m = BlobMask(&rng, 30, 22);
  ChiConfig cfg;
  cfg.cell_width = 7;
  cfg.cell_height = 5;
  cfg.num_bins = 6;
  const Chi chi = BuildChi(m, cfg);

  BufferWriter w;
  chi.Serialize(&w);
  BufferReader r(w.buffer());
  auto restored = Chi::Deserialize(&r);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->width(), chi.width());
  EXPECT_EQ(restored->height(), chi.height());
  EXPECT_TRUE(restored->config() == cfg);
  for (int32_t bj = 0; bj < chi.num_boundaries_y(); ++bj) {
    for (int32_t bi = 0; bi < chi.num_boundaries_x(); ++bi) {
      for (int32_t bin = 0; bin <= cfg.num_bins; ++bin) {
        ASSERT_EQ(restored->H(bi, bj, bin), chi.H(bi, bj, bin));
      }
    }
  }
}

TEST(ChiTest, DeserializeRejectsTruncation) {
  Rng rng(7);
  const Chi chi = BuildChi(RandomMask(&rng, 8, 8), PaperConfig());
  BufferWriter w;
  chi.Serialize(&w);
  std::string bytes = w.buffer();
  bytes.resize(bytes.size() - 5);
  BufferReader r(bytes);
  EXPECT_FALSE(Chi::Deserialize(&r).ok());
}

TEST(ChiTest, MemoryFootprintMatchesFormula) {
  // §3.1: 4·b bytes per cell; our layout stores (b+1) edges per boundary
  // including the explicit zero row/column.
  Rng rng(8);
  ChiConfig cfg;
  cfg.cell_width = 28;
  cfg.cell_height = 28;
  cfg.num_bins = 16;
  const Chi chi = BuildChi(RandomMask(&rng, 224, 224), cfg);
  const size_t boundaries = 9;  // 224/28 + 1
  EXPECT_EQ(chi.MemoryBytes(), boundaries * boundaries * 17 * 4);
  // Far smaller than the mask itself (224·224·4 = 200 KiB).
  EXPECT_LT(chi.MemoryBytes(), size_t{224 * 224 * 4} / 30);
}

TEST(ChiTest, EquiDepthConfigValidation) {
  ChiConfig cfg;
  cfg.num_bins = 4;
  cfg.custom_edges = {0.1, 0.5, 0.9};
  EXPECT_TRUE(cfg.Valid());
  EXPECT_FALSE(cfg.equi_width());
  EXPECT_DOUBLE_EQ(cfg.EdgeValue(0), 0.0);
  EXPECT_DOUBLE_EQ(cfg.EdgeValue(1), 0.1);
  EXPECT_DOUBLE_EQ(cfg.EdgeValue(3), 0.9);
  EXPECT_DOUBLE_EQ(cfg.EdgeValue(4), 1.0);

  cfg.custom_edges = {0.5, 0.1, 0.9};  // not increasing
  EXPECT_FALSE(cfg.Valid());
  cfg.custom_edges = {0.1, 0.5};  // wrong count
  EXPECT_FALSE(cfg.Valid());
  cfg.custom_edges = {0.0, 0.5, 0.9};  // touches pmin
  EXPECT_FALSE(cfg.Valid());
}

TEST(ChiTest, EquiDepthBinSearch) {
  Rng rng(21);
  ChiConfig cfg;
  cfg.cell_width = cfg.cell_height = 4;
  cfg.num_bins = 4;
  cfg.custom_edges = {0.1, 0.5, 0.9};
  const Chi chi = BuildChi(RandomMask(&rng, 8, 8), cfg);
  // BinFloor: largest edge <= v; BinCeil: smallest edge >= v.
  EXPECT_EQ(chi.BinFloor(0.05), 0);
  EXPECT_EQ(chi.BinCeil(0.05), 1);
  EXPECT_EQ(chi.BinFloor(0.1), 1);
  EXPECT_EQ(chi.BinCeil(0.1), 1);
  EXPECT_EQ(chi.BinFloor(0.7), 2);
  EXPECT_EQ(chi.BinCeil(0.7), 3);
  EXPECT_EQ(chi.BinFloor(1.0), 4);
  EXPECT_EQ(chi.BinCeil(0.95), 4);
  EXPECT_EQ(chi.BinFloor(-1.0), 0);
  EXPECT_EQ(chi.BinCeil(2.0), 4);
}

TEST(ChiTest, EquiDepthPrefixCountsMatchCpDefinition) {
  Rng rng(22);
  const Mask m = BlobMask(&rng, 24, 24);
  ChiConfig cfg;
  cfg.cell_width = cfg.cell_height = 6;
  cfg.num_bins = 5;
  cfg.custom_edges = {0.05, 0.2, 0.45, 0.8};
  const Chi chi = BuildChi(m, cfg);
  for (int32_t bj = 0; bj < chi.num_boundaries_y(); ++bj) {
    for (int32_t bi = 0; bi < chi.num_boundaries_x(); ++bi) {
      const ROI prefix(0, 0, chi.boundary_x(bi), chi.boundary_y(bj));
      for (int32_t bin = 0; bin <= cfg.num_bins; ++bin) {
        const int64_t expected =
            CountPixels(m, prefix, ValueRange(cfg.EdgeValue(bin), 1.0));
        ASSERT_EQ(chi.H(bi, bj, bin), static_cast<uint32_t>(expected))
            << "boundary (" << bi << "," << bj << ") bin " << bin;
      }
    }
  }
}

TEST(ChiTest, EquiDepthSerializeRoundTrip) {
  Rng rng(23);
  ChiConfig cfg;
  cfg.cell_width = cfg.cell_height = 8;
  cfg.num_bins = 3;
  cfg.custom_edges = {0.3, 0.7};
  const Chi chi = BuildChi(BlobMask(&rng, 16, 16), cfg);
  BufferWriter w;
  chi.Serialize(&w);
  BufferReader r(w.buffer());
  auto restored = Chi::Deserialize(&r);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->config() == cfg);
  EXPECT_FALSE(restored->config().equi_width());
}

TEST(ChiTest, MaskSmallerThanOneCell) {
  Rng rng(9);
  ChiConfig cfg;
  cfg.cell_width = 64;
  cfg.cell_height = 64;
  cfg.num_bins = 4;
  const Mask m = RandomMask(&rng, 10, 12);
  const Chi chi = BuildChi(m, cfg);
  EXPECT_EQ(chi.num_boundaries_x(), 2);  // 0 and 10
  EXPECT_EQ(chi.num_boundaries_y(), 2);
  EXPECT_EQ(chi.H(1, 1, 0), 120u);
}

}  // namespace
}  // namespace masksearch
