// Background-maintenance suite (docs/COMPACTION.md): tombstone deletes
// with epoch-snapshot visibility, generation-rewrite compaction, pinned
// snapshots surviving the swap, generation-file GC after the last pin
// drains, crash-orphan cleanup, and the MaintenanceScheduler's trigger /
// single-flight / drain semantics.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "masksearch/catalog/catalog.h"
#include "masksearch/ingest/ingestor.h"
#include "masksearch/maintain/compactor.h"
#include "masksearch/maintain/scheduler.h"
#include "masksearch/storage/filtered_mask_store.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::BlobMask;
using testing_util::TempDir;

ChiConfig TestConfig() {
  ChiConfig cfg;
  cfg.cell_width = cfg.cell_height = 8;
  cfg.num_bins = 8;
  return cfg;
}

IngestorOptions TestIngestOptions() {
  IngestorOptions opts;
  opts.chi = TestConfig();
  opts.num_shards = 3;
  opts.cache_budget_bytes = 8ull << 20;
  return opts;
}

MaskMeta MetaFor(int64_t serial) {
  MaskMeta meta;
  meta.image_id = serial;  // stable serial: survives compaction renumbering
  meta.model_id = 0;
  meta.mask_type = MaskType::kSaliencyMap;
  return meta;
}

/// Appends `n` deterministic masks tagged with serials [first, first + n)
/// and records their raw bytes into `blobs_by_serial`.
void AppendMasks(Ingestor* ingestor, Rng* rng, int64_t n, int64_t first,
                 std::map<int64_t, std::string>* blobs_by_serial) {
  for (int64_t i = 0; i < n; ++i) {
    Mask mask = BlobMask(rng, 32, 32);
    auto id = ingestor->Append(MetaFor(first + i), mask);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    if (blobs_by_serial != nullptr) {
      (*blobs_by_serial)[first + i] =
          std::string(reinterpret_cast<const char*>(mask.data().data()),
                      mask.ByteSize());
    }
  }
}

/// Asserts the snapshot's visible masks are exactly `serials`, in order,
/// and every blob is byte-identical to what the writer appended.
void ExpectVisible(const Snapshot& snap,
                   const std::vector<int64_t>& serials,
                   const std::map<int64_t, std::string>& blobs_by_serial) {
  ASSERT_EQ(snap.watermark(), static_cast<int64_t>(serials.size()));
  ASSERT_EQ(snap.store().num_masks(), static_cast<int64_t>(serials.size()));
  for (size_t v = 0; v < serials.size(); ++v) {
    const MaskMeta& meta = snap.store().meta(static_cast<MaskId>(v));
    EXPECT_EQ(meta.image_id, serials[v]) << "visible id " << v;
    EXPECT_EQ(meta.mask_id, static_cast<MaskId>(v));
    std::string blob;
    MS_ASSERT_OK(snap.store().ReadBlob(static_cast<MaskId>(v), &blob));
    const auto it = blobs_by_serial.find(serials[v]);
    ASSERT_NE(it, blobs_by_serial.end());
    EXPECT_EQ(blob, it->second) << "visible id " << v << " bytes differ";
  }
}

TEST(MaintainTest, DeleteIsInvisibleAtNextPublishOnly) {
  TempDir dir("maintain_delete");
  auto ingestor = Ingestor::Create(dir.path(), TestIngestOptions()).ValueOrDie();
  Rng rng(11);
  std::map<int64_t, std::string> blobs;
  AppendMasks(ingestor.get(), &rng, 6, 0, &blobs);
  MS_ASSERT_OK(ingestor->Publish());
  auto pinned = ingestor->snapshot();
  ExpectVisible(*pinned, {0, 1, 2, 3, 4, 5}, blobs);

  MS_ASSERT_OK(ingestor->Delete(2));
  MS_ASSERT_OK(ingestor->Delete(4));
  // Not yet published: the current snapshot still serves all six.
  ExpectVisible(*ingestor->snapshot(), {0, 1, 2, 3, 4, 5}, blobs);
  EXPECT_EQ(ingestor->tombstone_count(), 2);
  EXPECT_GT(ingestor->dead_bytes(), 0u);

  MS_ASSERT_OK(ingestor->Publish());
  // Survivors renumber densely; the pinned pre-delete snapshot is frozen.
  ExpectVisible(*ingestor->snapshot(), {0, 1, 3, 5}, blobs);
  ExpectVisible(*pinned, {0, 1, 2, 3, 4, 5}, blobs);
  EXPECT_EQ(ingestor->watermark(), 4);
}

TEST(MaintainTest, DeleteErrorsAreTyped) {
  TempDir dir("maintain_delete_typed");
  auto ingestor = Ingestor::Create(dir.path(), TestIngestOptions()).ValueOrDie();
  Rng rng(13);
  AppendMasks(ingestor.get(), &rng, 3, 0, nullptr);
  EXPECT_EQ(ingestor->Delete(-1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ingestor->Delete(3).code(), StatusCode::kInvalidArgument);
  MS_ASSERT_OK(ingestor->Delete(1));
  EXPECT_EQ(ingestor->Delete(1).code(), StatusCode::kNotFound);
}

TEST(MaintainTest, TombstonesSurviveReopen) {
  TempDir dir("maintain_reopen");
  Rng rng(17);
  std::map<int64_t, std::string> blobs;
  {
    auto ingestor =
        Ingestor::Create(dir.path(), TestIngestOptions()).ValueOrDie();
    AppendMasks(ingestor.get(), &rng, 5, 0, &blobs);
    MS_ASSERT_OK(ingestor->Delete(0));
    MS_ASSERT_OK(ingestor->Delete(3));
    MS_ASSERT_OK(ingestor->Publish());
  }
  auto reopened = Ingestor::Open(dir.path(), TestIngestOptions()).ValueOrDie();
  EXPECT_EQ(reopened->tombstone_count(), 2);
  EXPECT_GT(reopened->dead_bytes(), 0u);
  ExpectVisible(*reopened->snapshot(), {1, 2, 4}, blobs);

  // The read-only MaskStore::Open path applies the same tombstone filter.
  auto store = MaskStore::Open(dir.path()).ValueOrDie();
  EXPECT_EQ(store->num_masks(), 3);
  EXPECT_EQ(store->meta(0).image_id, 1);
  EXPECT_EQ(store->meta(2).image_id, 4);
}

TEST(MaintainTest, CompactionDropsTombstonesAndReclaims) {
  TempDir dir("maintain_compact");
  auto ingestor = Ingestor::Create(dir.path(), TestIngestOptions()).ValueOrDie();
  Rng rng(19);
  std::map<int64_t, std::string> blobs;
  AppendMasks(ingestor.get(), &rng, 10, 0, &blobs);
  MS_ASSERT_OK(ingestor->Delete(1));
  MS_ASSERT_OK(ingestor->Delete(7));
  MS_ASSERT_OK(ingestor->Publish());

  Compactor compactor(ingestor.get());
  const CompactionStats stats = compactor.Compact().ValueOrDie();
  EXPECT_EQ(stats.generation, 1);
  EXPECT_EQ(stats.masks_copied, 8);
  EXPECT_EQ(stats.masks_dropped, 2);
  EXPECT_GT(stats.dead_bytes_reclaimed, 0u);
  EXPECT_GE(stats.total_ms, stats.swap_pause_ms);

  EXPECT_EQ(ingestor->generation(), 1);
  EXPECT_EQ(ingestor->tombstone_count(), 0);
  EXPECT_EQ(ingestor->dead_bytes(), 0u);
  ExpectVisible(*ingestor->snapshot(), {0, 2, 3, 4, 5, 6, 8, 9}, blobs);

  // The new generation directory exists; persisted counters are readable.
  EXPECT_TRUE(std::filesystem::is_directory(GenerationDir(dir.path(), 1)));
  const MaintenanceCounters counters =
      ReadMaintenanceCounters(dir.path()).ValueOrDie();
  EXPECT_EQ(counters.compactions_completed, 1);
  EXPECT_EQ(counters.last_generation, 1);
  EXPECT_GT(counters.dead_bytes_reclaimed_total, 0u);

  // Ingest continues in the new generation: fresh physical id space.
  AppendMasks(ingestor.get(), &rng, 2, 100, &blobs);
  MS_ASSERT_OK(ingestor->Publish());
  ExpectVisible(*ingestor->snapshot(), {0, 2, 3, 4, 5, 6, 8, 9, 100, 101},
                blobs);
}

TEST(MaintainTest, PinnedSnapshotKeepsOldGenerationAliveUntilDrained) {
  TempDir dir("maintain_pin_gc");
  auto ingestor = Ingestor::Create(dir.path(), TestIngestOptions()).ValueOrDie();
  Rng rng(23);
  std::map<int64_t, std::string> blobs;
  AppendMasks(ingestor.get(), &rng, 8, 0, &blobs);
  MS_ASSERT_OK(ingestor->Delete(5));
  MS_ASSERT_OK(ingestor->Publish());

  auto pinned = ingestor->snapshot();  // generation 0, post-delete epoch
  EXPECT_EQ(pinned->generation(), 0);

  Compactor compactor(ingestor.get());
  MS_ASSERT_OK(compactor.Compact().status());
  EXPECT_EQ(ingestor->snapshot()->generation(), 1);

  // Old generation 0 files stay on disk while the pin reads them...
  const std::string gen0_manifest = MaskStoreManifestPath(dir.path());
  EXPECT_TRUE(PathExists(gen0_manifest));
  ExpectVisible(*pinned, {0, 1, 2, 3, 4, 6, 7}, blobs);

  // ...and vanish when the last pin drains.
  pinned.reset();
  EXPECT_FALSE(PathExists(gen0_manifest));
  EXPECT_EQ(ingestor->Stats().live_snapshots, 0);

  // The compacted store reopens cleanly at generation 1.
  auto reopened = Ingestor::Open(dir.path(), TestIngestOptions()).ValueOrDie();
  EXPECT_EQ(reopened->generation(), 1);
  ExpectVisible(*reopened->snapshot(), {0, 1, 2, 3, 4, 6, 7}, blobs);
}

TEST(MaintainTest, RepeatedCompactionsRetireEachOlderGeneration) {
  TempDir dir("maintain_gen_chain");
  auto ingestor = Ingestor::Create(dir.path(), TestIngestOptions()).ValueOrDie();
  Rng rng(29);
  std::map<int64_t, std::string> blobs;
  Compactor compactor(ingestor.get());
  int64_t next_serial = 0;
  for (int round = 0; round < 3; ++round) {
    AppendMasks(ingestor.get(), &rng, 4, next_serial, &blobs);
    next_serial += 4;
    MS_ASSERT_OK(ingestor->Delete(ingestor->appended() - 1));
    MS_ASSERT_OK(ingestor->Publish());
    MS_ASSERT_OK(compactor.Compact().status());
    EXPECT_EQ(ingestor->generation(), round + 1);
    // With no pins outstanding, only the current generation dir survives.
    for (int g = 1; g <= round; ++g) {
      EXPECT_FALSE(std::filesystem::exists(GenerationDir(dir.path(), g)))
          << "generation " << g << " not GC'd after round " << round;
    }
    EXPECT_TRUE(
        std::filesystem::is_directory(GenerationDir(dir.path(), round + 1)));
  }
  EXPECT_EQ(ingestor->watermark(), 9);
  const MaintenanceCounters counters =
      ReadMaintenanceCounters(dir.path()).ValueOrDie();
  EXPECT_EQ(counters.compactions_completed, 3);
}

TEST(MaintainTest, CompactionCanReshard) {
  TempDir dir("maintain_reshard");
  IngestorOptions opts = TestIngestOptions();
  opts.num_shards = 2;
  auto ingestor = Ingestor::Create(dir.path(), opts).ValueOrDie();
  Rng rng(31);
  std::map<int64_t, std::string> blobs;
  AppendMasks(ingestor.get(), &rng, 9, 0, &blobs);
  MS_ASSERT_OK(ingestor->Delete(4));
  MS_ASSERT_OK(ingestor->Publish());
  EXPECT_EQ(ingestor->num_shards(), 2);

  CompactorOptions copts;
  copts.target_num_shards = 5;
  Compactor compactor(ingestor.get(), copts);
  MS_ASSERT_OK(compactor.Compact().status());
  EXPECT_EQ(ingestor->num_shards(), 5);
  ExpectVisible(*ingestor->snapshot(), {0, 1, 2, 3, 5, 6, 7, 8}, blobs);

  // Reopen takes the new fan-out from the generation's manifest.
  auto pin = ingestor->snapshot();
  ingestor.reset();
  pin.reset();
  auto reopened = Ingestor::Open(dir.path(), opts).ValueOrDie();
  EXPECT_EQ(reopened->num_shards(), 5);
  ExpectVisible(*reopened->snapshot(), {0, 1, 2, 3, 5, 6, 7, 8}, blobs);
}

TEST(MaintainTest, OpenSweepsOrphanedGenerationDirs) {
  TempDir dir("maintain_orphan");
  Rng rng(37);
  std::map<int64_t, std::string> blobs;
  {
    auto ingestor =
        Ingestor::Create(dir.path(), TestIngestOptions()).ValueOrDie();
    AppendMasks(ingestor.get(), &rng, 4, 0, &blobs);
    MS_ASSERT_OK(ingestor->Publish());
  }
  // Simulate a compaction that crashed before flipping the generation
  // sidecar: a half-written gen-1 directory with no sidecar pointing at it.
  const std::string orphan = GenerationDir(dir.path(), 1);
  std::filesystem::create_directories(orphan);
  MS_ASSERT_OK(WriteFileAtomic(orphan + "/masks.0.dat", "torn"));

  auto reopened = Ingestor::Open(dir.path(), TestIngestOptions()).ValueOrDie();
  EXPECT_EQ(reopened->generation(), 0);
  EXPECT_FALSE(std::filesystem::exists(orphan)) << "orphan dir not swept";
  ExpectVisible(*reopened->snapshot(), {0, 1, 2, 3}, blobs);
}

TEST(MaintainTest, FilteredStoreTranslatesAndRejectsBadTombstones) {
  TempDir dir("maintain_filtered");
  auto store = testing_util::MakeStore(dir.path(), 6, 1, 16, 16);
  const std::string blob3 = [&] {
    std::string b;
    store->ReadBlob(3, &b).CheckOK();
    return b;
  }();

  auto filtered =
      FilteredMaskStore::Wrap(std::move(store), {1, 4}).ValueOrDie();
  EXPECT_EQ(filtered->num_masks(), 4);
  // visible 2 -> physical 3
  EXPECT_EQ(filtered->meta(2).image_id, 3);
  std::string blob;
  MS_ASSERT_OK(filtered->ReadBlob(2, &blob));
  EXPECT_EQ(blob, blob3);
  // Past-the-watermark reads are typed (the base store's NotFound).
  EXPECT_EQ(filtered->LoadMask(4).status().code(), StatusCode::kNotFound);

  // Out-of-range and duplicate tombstones are typed InvalidArgument.
  auto store2 = testing_util::MakeStore(dir.file("s2"), 3, 1, 16, 16);
  EXPECT_EQ(FilteredMaskStore::Wrap(std::move(store2), {3}).status().code(),
            StatusCode::kInvalidArgument);
  auto store3 = testing_util::MakeStore(dir.file("s3"), 3, 1, 16, 16);
  EXPECT_EQ(
      FilteredMaskStore::Wrap(std::move(store3), {1, 1}).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(MaintainTest, TombstoneSidecarRoundTripsAndRejectsGarbage) {
  TempDir dir("maintain_sidecar");
  MS_ASSERT_OK(WriteMaskStoreTombstones(dir.path(), {5, 1, 3, 1}));
  const auto ids = ReadMaskStoreTombstones(dir.path()).ValueOrDie();
  EXPECT_EQ(ids, (std::vector<MaskId>{1, 3, 5}));

  MS_ASSERT_OK(WriteFileAtomic(MaskStoreTombstonePath(dir.path()),
                               "tombstones v1\n1\nnonsense\n"));
  EXPECT_EQ(ReadMaskStoreTombstones(dir.path()).status().code(),
            StatusCode::kCorruption);
  MS_ASSERT_OK(
      WriteFileAtomic(MaskStoreTombstonePath(dir.path()), "wrong header\n"));
  EXPECT_EQ(ReadMaskStoreTombstones(dir.path()).status().code(),
            StatusCode::kCorruption);
}

TEST(MaintainTest, SchedulerCompactNowInlineWithoutStart) {
  TempDir dir("maintain_inline");
  auto ingestor = Ingestor::Create(dir.path(), TestIngestOptions()).ValueOrDie();
  Rng rng(41);
  std::map<int64_t, std::string> blobs;
  AppendMasks(ingestor.get(), &rng, 6, 0, &blobs);
  MS_ASSERT_OK(ingestor->Delete(0));
  MS_ASSERT_OK(ingestor->Publish());

  MaintenanceScheduler scheduler(ingestor.get());
  EXPECT_FALSE(scheduler.running());
  MS_ASSERT_OK(scheduler.CompactNow());
  EXPECT_EQ(ingestor->generation(), 1);
  const MaintenanceStats stats = scheduler.Stats();
  EXPECT_EQ(stats.generation, 1);
  EXPECT_EQ(stats.compactions_completed, 1);
  EXPECT_EQ(stats.compactions_failed, 0);
}

TEST(MaintainTest, SchedulerTriggerFiresOnTombstoneRatio) {
  TempDir dir("maintain_trigger");
  auto ingestor = Ingestor::Create(dir.path(), TestIngestOptions()).ValueOrDie();
  Rng rng(43);
  std::map<int64_t, std::string> blobs;
  AppendMasks(ingestor.get(), &rng, 10, 0, &blobs);
  MS_ASSERT_OK(ingestor->Publish());

  MaintenanceOptions mopts;
  mopts.tombstone_ratio_trigger = 0.3;
  mopts.min_tombstones = 4;
  mopts.check_interval_ms = 5;
  MaintenanceScheduler scheduler(ingestor.get(), mopts);
  scheduler.Start();
  EXPECT_TRUE(scheduler.running());

  // Below both the ratio and the floor: no compaction may fire.
  MS_ASSERT_OK(ingestor->Delete(0));
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(ingestor->generation(), 0);

  // Cross the threshold (4 of 10 >= 0.3, floor met): the trigger fires and
  // keeps firing until the published tombstones are compacted away (a swap
  // racing an unpublished delete carries it into the new generation, so
  // convergence — not a single run — is the invariant).
  MS_ASSERT_OK(ingestor->Delete(1));
  MS_ASSERT_OK(ingestor->Delete(2));
  MS_ASSERT_OK(ingestor->Delete(3));
  MS_ASSERT_OK(ingestor->Publish());
  for (int spin = 0;
       spin < 400 &&
       (ingestor->generation() == 0 || ingestor->tombstone_count() != 0);
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(ingestor->generation(), 1);
  EXPECT_EQ(ingestor->tombstone_count(), 0);
  EXPECT_EQ(ingestor->watermark(), 6);
  MS_ASSERT_OK(scheduler.Stop());
  EXPECT_FALSE(scheduler.running());
}

TEST(MaintainTest, SchedulerCoalescesConcurrentRequests) {
  TempDir dir("maintain_coalesce");
  auto ingestor = Ingestor::Create(dir.path(), TestIngestOptions()).ValueOrDie();
  Rng rng(47);
  std::map<int64_t, std::string> blobs;
  AppendMasks(ingestor.get(), &rng, 8, 0, &blobs);
  MS_ASSERT_OK(ingestor->Publish());

  MaintenanceOptions mopts;
  mopts.tombstone_ratio_trigger = 0.0;  // explicit requests only
  MaintenanceScheduler scheduler(ingestor.get(), mopts);
  scheduler.Start();

  std::vector<std::thread> callers;
  std::atomic<int> failures{0};
  for (int i = 0; i < 6; ++i) {
    callers.emplace_back([&] {
      if (!scheduler.CompactNow().ok()) failures.fetch_add(1);
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Six requests ran as far fewer generation rewrites (single-flight), and
  // every blocked caller still observed a completed run.
  const int64_t gen = ingestor->generation();
  EXPECT_GE(gen, 1);
  EXPECT_LE(gen, 6);
  MS_ASSERT_OK(scheduler.Stop());
  const MaintenanceStats stats = scheduler.Stats();
  EXPECT_EQ(stats.compactions_completed, gen);

  // Stopped scheduler: CompactNow is a typed Cancelled... once stopped,
  // Start() again works (idempotent lifecycle).
  scheduler.Start();
  MS_ASSERT_OK(scheduler.CompactNow());
  MS_ASSERT_OK(scheduler.Stop());
}

TEST(MaintainTest, SchedulerStopDrainsQueuedRequest) {
  TempDir dir("maintain_drain");
  auto ingestor = Ingestor::Create(dir.path(), TestIngestOptions()).ValueOrDie();
  Rng rng(53);
  std::map<int64_t, std::string> blobs;
  AppendMasks(ingestor.get(), &rng, 4, 0, &blobs);
  MS_ASSERT_OK(ingestor->Publish());

  MaintenanceOptions mopts;
  mopts.tombstone_ratio_trigger = 0.0;
  mopts.check_interval_ms = 1000;  // only explicit wakeups
  MaintenanceScheduler scheduler(ingestor.get(), mopts);
  scheduler.Start();
  scheduler.RequestCompact();
  MS_ASSERT_OK(scheduler.Stop());
  // The queued request ran before the thread exited.
  EXPECT_GE(ingestor->generation(), 1);
}

TEST(MaintainTest, CatalogDeleteCompactAndTypedErrors) {
  TempDir dir("maintain_catalog");
  Catalog catalog;
  LiveDatasetConfig config;
  config.ingest = TestIngestOptions();
  config.service.num_workers = 2;
  Dataset* ds =
      catalog.RegisterLive("live", dir.file("live"), config).ValueOrDie();
  Rng rng(59);
  for (int i = 0; i < 8; ++i) {
    MS_ASSERT_OK(ds->Ingest(MetaFor(i), BlobMask(&rng, 32, 32)).status());
  }
  MS_ASSERT_OK(ds->Delete(3));
  MS_ASSERT_OK(ds->Publish());
  EXPECT_EQ(ds->snapshot()->watermark(), 7);
  MS_ASSERT_OK(ds->Compact());
  EXPECT_EQ(ds->ingestor()->generation(), 1);
  ASSERT_NE(ds->maintenance(), nullptr);
  EXPECT_EQ(ds->maintenance()->Stats().compactions_completed, 1);

  // Fixed datasets reject the maintenance verbs with typed errors.
  TempDir fixed_dir("maintain_catalog_fixed");
  testing_util::MakeStore(fixed_dir.path(), 4, 1, 32, 32);
  DatasetConfig fixed_config;
  fixed_config.session.chi = TestConfig();
  fixed_config.service.num_workers = 1;
  Dataset* fixed =
      catalog.Register("fixed", fixed_dir.path(), fixed_config).ValueOrDie();
  EXPECT_EQ(fixed->Delete(0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fixed->Compact().code(), StatusCode::kInvalidArgument);
}

TEST(MaintainTest, CatalogRegisterLiveResumesCompactedStore) {
  TempDir dir("maintain_catalog_resume");
  Rng rng(61);
  {
    Catalog catalog;
    LiveDatasetConfig config;
    config.ingest = TestIngestOptions();
    config.service.num_workers = 1;
    Dataset* ds =
        catalog.RegisterLive("live", dir.path(), config).ValueOrDie();
    for (int i = 0; i < 6; ++i) {
      MS_ASSERT_OK(
          ds->Ingest(MetaFor(i), BlobMask(&rng, 32, 32)).status());
    }
    MS_ASSERT_OK(ds->Delete(2));
    MS_ASSERT_OK(ds->Publish());
    MS_ASSERT_OK(ds->Compact());
  }
  // Re-registration must resume the compacted generation, not create a
  // fresh empty store over it.
  Catalog catalog;
  LiveDatasetConfig config;
  config.ingest = TestIngestOptions();
  config.service.num_workers = 1;
  Dataset* ds = catalog.RegisterLive("live", dir.path(), config).ValueOrDie();
  EXPECT_EQ(ds->ingestor()->generation(), 1);
  EXPECT_EQ(ds->snapshot()->watermark(), 5);
}

}  // namespace
}  // namespace masksearch
