// Ingest-while-serving stress battery (docs/INGEST.md): N writer threads
// append + publish epochs through one Ingestor while M reader threads push
// a mixed filter / top-k / scalar-agg / mask-agg stream through a
// QueryService resolving the epoch snapshot at admission. Invariants:
//
//   1. Zero wrong bytes per epoch: every result id is below the watermark
//      of the epoch the query was admitted at, and replaying the query
//      serially against a store rebuilt from exactly that epoch's prefix
//      yields byte-identical results.
//   2. Watermarks are monotonically non-decreasing across epochs.
//   3. Snapshot retention is bounded by in-flight work: when the run
//      drains, no superseded snapshot stays pinned.
//
// Tier1 runs a capped configuration; MASKSEARCH_STRESS_HEAVY=1 (the `slow`
// CTest lane) scales up writers, readers, and epochs. The ASan/TSan CI
// lanes run both.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "masksearch/ingest/ingestor.h"
#include "masksearch/obs/metrics.h"
#include "masksearch/service/query_service.h"
#include "masksearch/workload/query_gen.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::BlobMask;
using testing_util::TempDir;

bool HeavyMode() {
  const char* env = std::getenv("MASKSEARCH_STRESS_HEAVY");
  return env != nullptr && env[0] == '1';
}

struct StressConfig {
  int num_writers = 2;
  int num_readers = 3;
  int epochs_per_writer = 4;
  int masks_per_epoch = 8;
  int queries_per_reader = 24;
};

StressConfig MakeConfig() {
  StressConfig cfg;
  if (HeavyMode()) {
    cfg.num_writers = 4;
    cfg.num_readers = 6;
    cfg.epochs_per_writer = 8;
    cfg.masks_per_epoch = 16;
    cfg.queries_per_reader = 120;
  }
  return cfg;
}

ChiConfig TestConfig() {
  ChiConfig cfg;
  cfg.cell_width = cfg.cell_height = 8;
  cfg.num_bins = 8;
  return cfg;
}

/// Deterministic mixed-kind query stream that does not depend on the store
/// contents (the store is growing underneath the readers).
QueryRequest MakeQuery(Rng* rng) {
  CpTerm term;
  term.roi_source = rng->NextBool(0.4) ? RoiSource::kObjectBox
                                       : RoiSource::kConstant;
  const int32_t x0 = static_cast<int32_t>(rng->UniformInt(0, 16));
  const int32_t y0 = static_cast<int32_t>(rng->UniformInt(0, 16));
  term.constant_roi =
      ROI{x0, y0, x0 + static_cast<int32_t>(rng->UniformInt(4, 16)),
          y0 + static_cast<int32_t>(rng->UniformInt(4, 16))};
  term.range = ValueRange{rng->NextDouble() * 0.5, 1.0};
  const double threshold = rng->NextDouble() * 64;

  switch (rng->UniformInt(0, 3)) {
    case 0: {
      FilterQuery q;
      q.terms = {term};
      q.predicate =
          Predicate::Compare(CpExpr::Term(0), CompareOp::kGt, threshold);
      return QueryRequest::Filter(std::move(q));
    }
    case 1: {
      TopKQuery q;
      q.terms = {term};
      q.order_expr = CpExpr::Term(0);
      q.k = 1 + static_cast<size_t>(rng->UniformInt(0, 10));
      q.descending = rng->NextBool();
      return QueryRequest::TopK(std::move(q));
    }
    case 2: {
      AggregationQuery q;
      q.term = term;
      q.op = rng->NextBool() ? ScalarAggOp::kAvg : ScalarAggOp::kMax;
      q.group_key = GroupKey::kImageId;
      q.k = 8;
      return QueryRequest::Aggregation(std::move(q));
    }
    default: {
      MaskAggQuery q;
      q.op = rng->NextBool() ? MaskAggOp::kIntersectThreshold
                             : MaskAggOp::kUnionThreshold;
      q.agg_threshold = 0.5;
      q.term = term;
      q.group_key = GroupKey::kImageId;
      q.k = 5;
      return QueryRequest::MaskAgg(std::move(q));
    }
  }
}

/// Largest mask id referenced anywhere in a response, -1 when none.
MaskId MaxReferencedId(const QueryResponse& r) {
  MaskId max_id = -1;
  switch (r.kind) {
    case QueryRequest::Kind::kFilter:
      for (MaskId id : r.filter.mask_ids) max_id = std::max(max_id, id);
      break;
    case QueryRequest::Kind::kTopK:
      for (const ScoredMask& item : r.topk.items)
        max_id = std::max(max_id, item.mask_id);
      break;
    case QueryRequest::Kind::kAggregation:
    case QueryRequest::Kind::kMaskAgg:
      // Groups are image ids; writers assign image_id = mask id here, so
      // the same visibility bound applies.
      for (const ScoredGroup& g : r.agg.groups) max_id = std::max(max_id, g.group);
      break;
  }
  return max_id;
}

void ExpectSameResponse(const QueryResponse& expected,
                        const QueryResponse& got, int64_t epoch,
                        size_t query_index) {
  ASSERT_EQ(expected.kind, got.kind);
  switch (expected.kind) {
    case QueryRequest::Kind::kFilter:
      EXPECT_EQ(expected.filter.mask_ids, got.filter.mask_ids)
          << "epoch " << epoch << " query " << query_index;
      break;
    case QueryRequest::Kind::kTopK:
      ASSERT_EQ(expected.topk.items.size(), got.topk.items.size())
          << "epoch " << epoch << " query " << query_index;
      for (size_t i = 0; i < expected.topk.items.size(); ++i) {
        EXPECT_EQ(expected.topk.items[i].mask_id, got.topk.items[i].mask_id)
            << "epoch " << epoch << " query " << query_index << " item " << i;
        EXPECT_EQ(expected.topk.items[i].value, got.topk.items[i].value)
            << "epoch " << epoch << " query " << query_index << " item " << i;
      }
      break;
    case QueryRequest::Kind::kAggregation:
    case QueryRequest::Kind::kMaskAgg:
      ASSERT_EQ(expected.agg.groups.size(), got.agg.groups.size())
          << "epoch " << epoch << " query " << query_index;
      for (size_t i = 0; i < expected.agg.groups.size(); ++i) {
        EXPECT_EQ(expected.agg.groups[i].group, got.agg.groups[i].group)
            << "epoch " << epoch << " query " << query_index << " group " << i;
        EXPECT_EQ(expected.agg.groups[i].value, got.agg.groups[i].value)
            << "epoch " << epoch << " query " << query_index << " group " << i;
      }
      break;
  }
}

/// One observed (epoch, query, response) triple for the replay oracle.
struct Observation {
  int64_t epoch = 0;
  uint64_t query_seed = 0;
  QueryResponse response;
};

TEST(IngestServeStressTest, WritersAndReadersZeroWrongBytes) {
  const StressConfig cfg = MakeConfig();
  TempDir dir("ingest_stress");

  IngestorOptions iopts;
  iopts.chi = TestConfig();
  iopts.num_shards = 3;
  // Tiny budget on purpose: cache thrash + eviction churn under ingest.
  iopts.cache_budget_bytes = 2ull << 20;
  auto ingestor = Ingestor::Create(dir.path(), iopts).ValueOrDie();

  QueryServiceOptions sopts;
  sopts.num_workers = 3;
  sopts.session_resolver = [ing = ingestor.get()]() -> SessionLease {
    std::shared_ptr<const Snapshot> snap = ing->snapshot();
    SessionLease lease;
    lease.session = snap->session();
    lease.epoch = snap->epoch();
    lease.pin = std::move(snap);
    return lease;
  };
  auto service = QueryService::Start(nullptr, sopts).ValueOrDie();

  // --- concurrent phase -------------------------------------------------
  std::atomic<bool> writers_done{false};
  // Exact epoch -> watermark pairs, recorded at publish time. publish_mu
  // serializes publishes, so reading the pair right after Publish() is the
  // pair that publish installed (appends from other writers race freely —
  // a publish sweeps in whatever was appended so far, which is exactly why
  // the watermark must be recorded, not derived).
  std::mutex publish_mu;
  std::map<int64_t, int64_t> epoch_watermark;
  epoch_watermark.emplace(0, 0);  // epoch 0: the empty store

  std::vector<std::thread> writers;
  for (int w = 0; w < cfg.num_writers; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(1000 + w);
      for (int e = 0; e < cfg.epochs_per_writer; ++e) {
        for (int m = 0; m < cfg.masks_per_epoch; ++m) {
          Mask mask = BlobMask(&rng, 32, 32);
          MaskMeta meta;
          meta.model_id = 0;
          meta.mask_type = MaskType::kSaliencyMap;
          auto id = ingestor->Append(meta, mask);
          ASSERT_TRUE(id.ok()) << id.status().ToString();
        }
        std::lock_guard<std::mutex> lock(publish_mu);
        const int64_t before = ingestor->watermark();
        MS_ASSERT_OK(ingestor->Publish());
        const int64_t after = ingestor->watermark();
        EXPECT_GE(after, before) << "watermark regressed";
        epoch_watermark[ingestor->epoch()] = after;
      }
    });
  }

  std::mutex obs_mu;
  std::vector<Observation> observations;
  std::vector<std::thread> readers;
  for (int r = 0; r < cfg.num_readers; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(2000 + r);
      for (int i = 0; i < cfg.queries_per_reader || !writers_done.load();
           ++i) {
        if (i >= cfg.queries_per_reader * 4) break;  // bounded overrun
        const uint64_t seed = rng.UniformInt(0, 1 << 30);
        Rng qrng(seed);
        ServiceRequest req;
        req.tenant = r;
        req.query = MakeQuery(&qrng);
        auto pending = service->Submit(req);
        if (!pending.ok()) continue;  // shed by admission control: fine
        auto response = (*pending)->Wait();
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        const int64_t epoch = (*pending)->epoch();
        // Invariant 1a, online half: nothing beyond the admitted epoch's
        // watermark is ever visible.
        std::lock_guard<std::mutex> lock(obs_mu);
        observations.push_back({epoch, seed, std::move(*response)});
      }
    });
  }

  for (auto& t : writers) t.join();
  writers_done.store(true);
  for (auto& t : readers) t.join();
  service->Drain();

  // Cross-layer metrics coverage (docs/OBSERVABILITY.md): after an
  // ingest-while-serving run, a single scrape of the default registry must
  // expose the layers this stress exercises — service and ingest — with
  // non-trivial values, proving the instrumentation is wired through the
  // real hot paths, not just registered. (Storage/cache read counters are
  // covered by trace_replay_test: this configuration serves appended masks
  // from the snapshot's in-memory tail, so disk reads aren't guaranteed.)
  {
    const std::string scrape =
        obs::MetricsRegistry::Default().PrometheusText();
    for (const char* family :
         {"ms_service_completed_total", "ms_service_latency_seconds",
          "ms_ingest_masks_appended_total",
          "ms_ingest_epochs_published_total", "ms_ingest_visible_masks"}) {
      EXPECT_NE(scrape.find(family), std::string::npos)
          << "metrics scrape is missing " << family;
    }
    // Service counters are labeled per priority class, so coverage is
    // checked by summing every series of the family.
    const auto samples = obs::MetricsRegistry::Default().Samples();
    auto family_sum = [&](const std::string& prefix) {
      double sum = 0;
      for (const auto& s : samples) {
        if (s.name.rfind(prefix, 0) == 0) sum += s.value;
      }
      return sum;
    };
    EXPECT_GT(family_sum("ms_service_completed_total"), 0);
    EXPECT_GT(family_sum("ms_ingest_masks_appended_total"), 0);
    EXPECT_GT(family_sum("ms_ingest_epochs_published_total"), 0);
  }

  const int64_t total =
      int64_t{cfg.num_writers} * cfg.epochs_per_writer * cfg.masks_per_epoch;
  EXPECT_EQ(ingestor->watermark(), total);
  EXPECT_GE(ingestor->epoch(), cfg.epochs_per_writer);

  // --- replay oracle ----------------------------------------------------
  // Per distinct observed epoch: rebuild a store holding exactly that
  // epoch's byte-identical prefix [0, watermark(e)) of the final store,
  // replay every query admitted at that epoch serially, and demand
  // byte-identical responses — zero wrong bytes per epoch.
  auto final_store = MaskStore::Open(dir.path()).ValueOrDie();

  for (const Observation& obs : observations) {
    ASSERT_TRUE(epoch_watermark.count(obs.epoch))
        << "query admitted at an epoch that was never published: "
        << obs.epoch;
  }
  for (const auto& [epoch, watermark] : epoch_watermark) {
    ASSERT_GE(watermark, 0);
    // Rebuild the epoch's byte-exact prefix store.
    TempDir replay_dir("ingest_replay_" + std::to_string(epoch));
    MaskStoreWriter::Options wopts;
    wopts.num_shards = 3;
    auto writer =
        MaskStoreWriter::Create(replay_dir.path(), wopts).ValueOrDie();
    for (int64_t id = 0; id < watermark; ++id) {
      std::string blob;
      MS_ASSERT_OK(final_store->ReadBlob(id, &blob));
      MaskMeta meta = final_store->meta(id);
      writer->AppendBlob(meta, blob).ValueOrDie();
    }
    MS_ASSERT_OK(writer->Finish());
    auto replay_store = MaskStore::Open(replay_dir.path()).ValueOrDie();
    SessionOptions sess;
    sess.chi = TestConfig();
    auto session = Session::Open(replay_store.get(), sess).ValueOrDie();

    for (const Observation& obs : observations) {
      if (obs.epoch != epoch) continue;
      const MaskId max_id = MaxReferencedId(obs.response);
      EXPECT_LT(max_id, watermark)
          << "epoch " << epoch << " leaked a later mask";
      Rng qrng(obs.query_seed);
      const QueryRequest query = MakeQuery(&qrng);
      QueryResponse serial;
      serial.kind = query.kind;
      switch (query.kind) {
        case QueryRequest::Kind::kFilter:
          serial.filter = session->Filter(query.filter).ValueOrDie();
          break;
        case QueryRequest::Kind::kTopK:
          serial.topk = session->TopK(query.topk).ValueOrDie();
          break;
        case QueryRequest::Kind::kAggregation:
          serial.agg = session->Aggregate(query.agg).ValueOrDie();
          break;
        case QueryRequest::Kind::kMaskAgg:
          serial.agg = session->MaskAggregate(query.mask_agg).ValueOrDie();
          break;
      }
      ExpectSameResponse(serial, obs.response, epoch, obs.query_seed);
    }
  }

  // Invariant 3: nothing but the current snapshot stays pinned.
  EXPECT_EQ(ingestor->Stats().live_snapshots, 0);
  service->Shutdown();
}

/// Publishes racing the resolver: admission must always observe a fully
/// published snapshot (epoch and watermark move atomically together).
TEST(IngestServeStressTest, AdmissionAlwaysSeesConsistentSnapshot) {
  const StressConfig cfg = MakeConfig();
  TempDir dir("ingest_consistent");
  IngestorOptions iopts;
  iopts.chi = TestConfig();
  iopts.num_shards = 2;
  iopts.cache_budget_bytes = 2ull << 20;
  auto ingestor = Ingestor::Create(dir.path(), iopts).ValueOrDie();

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(7);
    const int epochs = cfg.epochs_per_writer * cfg.num_writers;
    for (int e = 0; e < epochs; ++e) {
      for (int m = 0; m < cfg.masks_per_epoch; ++m) {
        MaskMeta meta;
        auto id = ingestor->Append(meta, BlobMask(&rng, 16, 16));
        ASSERT_TRUE(id.ok());
      }
      MS_ASSERT_OK(ingestor->Publish());
    }
    stop.store(true);
  });

  std::vector<std::thread> observers;
  for (int r = 0; r < cfg.num_readers; ++r) {
    observers.emplace_back([&] {
      int64_t last_epoch = -1;
      int64_t last_watermark = -1;
      while (!stop.load(std::memory_order_acquire)) {
        std::shared_ptr<const Snapshot> snap = ingestor->snapshot();
        // Monotone: epoch and watermark never move backwards, and the
        // snapshot's store is exactly its watermark.
        EXPECT_GE(snap->epoch(), last_epoch);
        EXPECT_GE(snap->watermark(), last_watermark);
        EXPECT_EQ(snap->store().num_masks(), snap->watermark());
        last_epoch = snap->epoch();
        last_watermark = snap->watermark();
      }
    });
  }
  writer.join();
  for (auto& t : observers) t.join();
  EXPECT_EQ(ingestor->Stats().live_snapshots, 0);
}

}  // namespace
}  // namespace masksearch
