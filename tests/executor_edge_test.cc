// Edge cases across all four executors: empty selections, k = 1, single-
// member groups, degenerate ranges, unusual group keys.

#include <gtest/gtest.h>

#include "masksearch/baselines/full_scan.h"
#include "masksearch/exec/session.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::MakeStore;
using testing_util::TempDir;

class ExecutorEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("edge");
    store_ = MakeStore(dir_->path(), 10, 2, 32, 32, /*seed=*/61);
    SessionOptions opts;
    opts.chi.cell_width = opts.chi.cell_height = 8;
    opts.chi.num_bins = 8;
    session_ = Session::Open(store_.get(), opts).ValueOrDie();
  }

  CpTerm ObjectTerm(double lv, double uv) const {
    CpTerm t;
    t.roi_source = RoiSource::kObjectBox;
    t.range = ValueRange(lv, uv);
    return t;
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<MaskStore> store_;
  std::unique_ptr<Session> session_;
};

TEST_F(ExecutorEdgeTest, EmptySelectionYieldsEmptyResults) {
  Selection none;
  none.model_ids = {99};  // no such model

  FilterQuery fq;
  fq.selection = none;
  fq.terms = {ObjectTerm(0.1, 0.9)};
  fq.predicate = Predicate::Compare(CpExpr::Term(0), CompareOp::kGt, 0.0);
  auto fr = session_->Filter(fq);
  ASSERT_TRUE(fr.ok());
  EXPECT_TRUE(fr->mask_ids.empty());
  EXPECT_EQ(fr->stats.masks_targeted, 0);

  TopKQuery tq;
  tq.selection = none;
  tq.terms = {ObjectTerm(0.1, 0.9)};
  tq.order_expr = CpExpr::Term(0);
  tq.k = 5;
  auto tr = session_->TopK(tq);
  ASSERT_TRUE(tr.ok());
  EXPECT_TRUE(tr->items.empty());

  AggregationQuery aq;
  aq.selection = none;
  aq.term = ObjectTerm(0.1, 0.9);
  aq.k = 5;
  auto ar = session_->Aggregate(aq);
  ASSERT_TRUE(ar.ok());
  EXPECT_TRUE(ar->groups.empty());

  MaskAggQuery mq;
  mq.selection = none;
  mq.term = ObjectTerm(0.7, 1.0);
  mq.k = 5;
  auto mr = session_->MaskAggregate(mq);
  ASSERT_TRUE(mr.ok());
  EXPECT_TRUE(mr->groups.empty());
}

TEST_F(ExecutorEdgeTest, TopOneMatchesReference) {
  TopKQuery q;
  q.terms = {ObjectTerm(0.5, 1.0)};
  q.order_expr = CpExpr::Term(0);
  q.k = 1;
  auto got = session_->TopK(q);
  ASSERT_TRUE(got.ok());
  FullScanBaseline reference(store_.get());
  auto want = reference.TopK(q);
  ASSERT_TRUE(want.ok());
  ASSERT_EQ(got->items.size(), 1u);
  EXPECT_EQ(got->items[0].mask_id, want->items[0].mask_id);
}

TEST_F(ExecutorEdgeTest, DegenerateValueRangeReturnsNothing) {
  FilterQuery q;
  q.terms = {ObjectTerm(0.5, 0.5)};  // empty half-open interval
  q.predicate = Predicate::Compare(CpExpr::Term(0), CompareOp::kGt, 0.0);
  auto r = session_->Filter(q);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->mask_ids.empty());
  EXPECT_EQ(r->stats.masks_loaded, 0);  // bounds are exactly [0, 0]
}

TEST_F(ExecutorEdgeTest, GreaterEqualZeroAcceptsEverythingWithoutLoads) {
  FilterQuery q;
  q.terms = {ObjectTerm(0.2, 0.8)};
  q.predicate = Predicate::Compare(CpExpr::Term(0), CompareOp::kGe, 0.0);
  auto r = session_->Filter(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(static_cast<int64_t>(r->mask_ids.size()),
            store_->num_masks());
  EXPECT_EQ(r->stats.masks_loaded, 0);
}

TEST_F(ExecutorEdgeTest, GroupByMaskTypeSingleGroup) {
  AggregationQuery q;
  q.term = ObjectTerm(0.3, 0.9);
  q.op = ScalarAggOp::kMax;
  q.group_key = GroupKey::kMaskType;  // all masks share one type
  q.k = 3;
  auto got = session_->Aggregate(q);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->groups.size(), 1u);
  FullScanBaseline reference(store_.get());
  auto want = reference.Aggregate(q);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(got->groups[0].group, want->groups[0].group);
  EXPECT_DOUBLE_EQ(got->groups[0].value, want->groups[0].value);
}

TEST_F(ExecutorEdgeTest, SingleMemberGroupsInMaskAgg) {
  // Restricting to one model makes every image group a single mask; the
  // INTERSECT of one mask is its own thresholding.
  MaskAggQuery q;
  q.selection.model_ids = {0};
  q.op = MaskAggOp::kIntersectThreshold;
  q.agg_threshold = 0.5;
  q.term = ObjectTerm(0.5, 1.0);
  q.k = 4;
  auto got = session_->MaskAggregate(q);
  ASSERT_TRUE(got.ok()) << got.status();
  FullScanBaseline reference(store_.get());
  auto want = reference.MaskAggregate(q);
  ASSERT_TRUE(want.ok());
  ASSERT_EQ(got->groups.size(), want->groups.size());
  for (size_t i = 0; i < got->groups.size(); ++i) {
    EXPECT_EQ(got->groups[i].group, want->groups[i].group);
    EXPECT_DOUBLE_EQ(got->groups[i].value, want->groups[i].value);
  }
}

TEST_F(ExecutorEdgeTest, HavingAcceptAllFromBounds) {
  AggregationQuery q;
  q.term = ObjectTerm(0.0, 1.0);  // CP == |object roi| exactly, from bounds
  q.op = ScalarAggOp::kSum;
  q.having_op = CompareOp::kGe;
  q.having_threshold = 0.0;
  auto r = session_->Aggregate(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->groups.size(), 10u);
  EXPECT_EQ(r->stats.masks_loaded, 0);
  // Tight bounds carry exact values even without loading.
  for (const auto& g : r->groups) {
    EXPECT_GT(g.value, 0.0);
  }
}

TEST_F(ExecutorEdgeTest, RoiOutsideMaskCountsZero) {
  FilterQuery q;
  CpTerm t;
  t.roi_source = RoiSource::kConstant;
  t.constant_roi = ROI(1000, 1000, 2000, 2000);
  t.range = ValueRange(0.0, 1.0);
  q.terms = {t};
  q.predicate = Predicate::Compare(CpExpr::Term(0), CompareOp::kGt, 0.0);
  auto r = session_->Filter(q);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->mask_ids.empty());
  EXPECT_EQ(r->stats.masks_loaded, 0);
}

TEST_F(ExecutorEdgeTest, MixedTightAndLooseTermsInOneExpression) {
  // Term 0 is tight from bounds (full range), term 1 is not: the combined
  // expression still evaluates exactly.
  TopKQuery q;
  q.terms = {ObjectTerm(0.0, 1.0), ObjectTerm(0.33, 0.77)};
  q.order_expr = CpExpr::Term(1) / (CpExpr::Term(0) + CpExpr::Constant(1.0));
  q.k = 5;
  auto got = session_->TopK(q);
  ASSERT_TRUE(got.ok());
  FullScanBaseline reference(store_.get());
  auto want = reference.TopK(q);
  ASSERT_TRUE(want.ok());
  ASSERT_EQ(got->items.size(), want->items.size());
  for (size_t i = 0; i < got->items.size(); ++i) {
    EXPECT_EQ(got->items[i].mask_id, want->items[i].mask_id);
    EXPECT_DOUBLE_EQ(got->items[i].value, want->items[i].value);
  }
}

}  // namespace
}  // namespace masksearch
