// Compact-while-ingesting-while-serving stress battery
// (docs/COMPACTION.md): N writer threads append + publish epochs while a
// maintenance thread scripts deletes and generation-rewrite compactions
// and M reader threads push a mixed query stream through a QueryService
// resolving the epoch snapshot at admission. Invariants:
//
//   1. Zero wrong bytes per epoch: replaying every query serially against
//      a store rebuilt from the *recorded* visible masks of the epoch it
//      was admitted at yields byte-identical responses. (Recording at
//      publish time is essential — compaction renumbers ids, so no prefix
//      of the final store reproduces an old epoch.)
//   2. Tombstone visibility: a deleted mask vanishes exactly at the next
//      publish and never resurfaces, while snapshots pinned earlier keep
//      serving it byte-identically (the replay oracle covers both sides).
//   3. Retired generation directories are deleted only after the last
//      pinned snapshot drains; when the run drains, only the final
//      generation's files remain and no superseded snapshot stays pinned.
//
// Tier1 runs a capped configuration; MASKSEARCH_STRESS_HEAVY=1 (the `slow`
// CTest lane) scales up writers, readers, epochs, and compactions. The
// ASan/TSan CI lanes run both.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "masksearch/ingest/ingestor.h"
#include "masksearch/maintain/compactor.h"
#include "masksearch/service/query_service.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::BlobMask;
using testing_util::TempDir;

bool HeavyMode() {
  const char* env = std::getenv("MASKSEARCH_STRESS_HEAVY");
  return env != nullptr && env[0] == '1';
}

struct StressConfig {
  int num_writers = 2;
  int num_readers = 3;
  int epochs_per_writer = 4;
  int masks_per_epoch = 8;
  int queries_per_reader = 24;
  int maintenance_rounds = 4;    ///< delete+publish rounds
  int compact_every = 2;         ///< compaction every k-th round (>= 2 runs)
  int deletes_per_round = 3;
};

StressConfig MakeConfig() {
  StressConfig cfg;
  if (HeavyMode()) {
    cfg.num_writers = 4;
    cfg.num_readers = 6;
    cfg.epochs_per_writer = 8;
    cfg.masks_per_epoch = 16;
    cfg.queries_per_reader = 120;
    cfg.maintenance_rounds = 6;
    cfg.deletes_per_round = 5;
  }
  return cfg;
}

ChiConfig TestConfig() {
  ChiConfig cfg;
  cfg.cell_width = cfg.cell_height = 8;
  cfg.num_bins = 8;
  return cfg;
}

/// Deterministic mixed-kind query stream independent of store contents.
QueryRequest MakeQuery(Rng* rng) {
  CpTerm term;
  term.roi_source = rng->NextBool(0.4) ? RoiSource::kObjectBox
                                       : RoiSource::kConstant;
  const int32_t x0 = static_cast<int32_t>(rng->UniformInt(0, 16));
  const int32_t y0 = static_cast<int32_t>(rng->UniformInt(0, 16));
  term.constant_roi =
      ROI{x0, y0, x0 + static_cast<int32_t>(rng->UniformInt(4, 16)),
          y0 + static_cast<int32_t>(rng->UniformInt(4, 16))};
  term.range = ValueRange{rng->NextDouble() * 0.5, 1.0};
  const double threshold = rng->NextDouble() * 64;

  switch (rng->UniformInt(0, 3)) {
    case 0: {
      FilterQuery q;
      q.terms = {term};
      q.predicate =
          Predicate::Compare(CpExpr::Term(0), CompareOp::kGt, threshold);
      return QueryRequest::Filter(std::move(q));
    }
    case 1: {
      TopKQuery q;
      q.terms = {term};
      q.order_expr = CpExpr::Term(0);
      q.k = 1 + static_cast<size_t>(rng->UniformInt(0, 10));
      q.descending = rng->NextBool();
      return QueryRequest::TopK(std::move(q));
    }
    case 2: {
      AggregationQuery q;
      q.term = term;
      q.op = rng->NextBool() ? ScalarAggOp::kAvg : ScalarAggOp::kMax;
      q.group_key = GroupKey::kImageId;
      q.k = 8;
      return QueryRequest::Aggregation(std::move(q));
    }
    default: {
      MaskAggQuery q;
      q.op = rng->NextBool() ? MaskAggOp::kIntersectThreshold
                             : MaskAggOp::kUnionThreshold;
      q.agg_threshold = 0.5;
      q.term = term;
      q.group_key = GroupKey::kImageId;
      q.k = 5;
      return QueryRequest::MaskAgg(std::move(q));
    }
  }
}

void ExpectSameResponse(const QueryResponse& expected,
                        const QueryResponse& got, int64_t epoch,
                        uint64_t query_seed) {
  ASSERT_EQ(expected.kind, got.kind);
  switch (expected.kind) {
    case QueryRequest::Kind::kFilter:
      EXPECT_EQ(expected.filter.mask_ids, got.filter.mask_ids)
          << "epoch " << epoch << " seed " << query_seed;
      break;
    case QueryRequest::Kind::kTopK:
      ASSERT_EQ(expected.topk.items.size(), got.topk.items.size())
          << "epoch " << epoch << " seed " << query_seed;
      for (size_t i = 0; i < expected.topk.items.size(); ++i) {
        EXPECT_EQ(expected.topk.items[i].mask_id, got.topk.items[i].mask_id)
            << "epoch " << epoch << " seed " << query_seed << " item " << i;
        EXPECT_EQ(expected.topk.items[i].value, got.topk.items[i].value)
            << "epoch " << epoch << " seed " << query_seed << " item " << i;
      }
      break;
    case QueryRequest::Kind::kAggregation:
    case QueryRequest::Kind::kMaskAgg:
      ASSERT_EQ(expected.agg.groups.size(), got.agg.groups.size())
          << "epoch " << epoch << " seed " << query_seed;
      for (size_t i = 0; i < expected.agg.groups.size(); ++i) {
        EXPECT_EQ(expected.agg.groups[i].group, got.agg.groups[i].group)
            << "epoch " << epoch << " seed " << query_seed << " group " << i;
        EXPECT_EQ(expected.agg.groups[i].value, got.agg.groups[i].value)
            << "epoch " << epoch << " seed " << query_seed << " group " << i;
      }
      break;
  }
}

struct Observation {
  int64_t epoch = 0;
  uint64_t query_seed = 0;
  QueryResponse response;
};

/// The serials (stable writer-assigned ids carried in image_id) visible at
/// one published epoch, in visible-id order. Replaying an epoch = appending
/// serial_blobs[serial] for each serial, in order.
using EpochRecord = std::vector<int64_t>;

TEST(MaintainStressTest, CompactionsUnderIngestAndServeZeroWrongBytes) {
  const StressConfig cfg = MakeConfig();
  TempDir dir("maintain_stress");

  IngestorOptions iopts;
  iopts.chi = TestConfig();
  iopts.num_shards = 3;
  // Tiny budget on purpose: cache thrash + eviction churn under ingest.
  iopts.cache_budget_bytes = 2ull << 20;
  auto ingestor = Ingestor::Create(dir.path(), iopts).ValueOrDie();
  Compactor compactor(ingestor.get());

  QueryServiceOptions sopts;
  sopts.num_workers = 3;
  sopts.session_resolver = [ing = ingestor.get()]() -> SessionLease {
    std::shared_ptr<const Snapshot> snap = ing->snapshot();
    SessionLease lease;
    lease.session = snap->session();
    lease.epoch = snap->epoch();
    lease.pin = std::move(snap);
    return lease;
  };
  auto service = QueryService::Start(nullptr, sopts).ValueOrDie();

  // --- shared recording state -------------------------------------------
  // serial -> raw blob bytes, recorded at append time. Serials are globally
  // unique and ride in MaskMeta::image_id, so they survive every renumber.
  std::mutex blob_mu;
  std::map<int64_t, std::string> serial_blobs;
  std::atomic<int64_t> next_serial{0};

  // publish_mu serializes every Publish()/Compact() with the recording of
  // the epoch it installed, so epoch_records is exact.
  std::mutex publish_mu;
  std::map<int64_t, EpochRecord> epoch_records;
  epoch_records.emplace(0, EpochRecord{});  // epoch 0: the empty store

  auto record_current_epoch = [&] {  // caller holds publish_mu
    std::shared_ptr<const Snapshot> snap = ingestor->snapshot();
    EpochRecord serials;
    serials.reserve(snap->watermark());
    for (int64_t v = 0; v < snap->watermark(); ++v) {
      serials.push_back(snap->store().meta(v).image_id);
    }
    epoch_records[snap->epoch()] = std::move(serials);
  };

  // --- concurrent phase -------------------------------------------------
  std::atomic<bool> writers_done{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < cfg.num_writers; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(1000 + w);
      for (int e = 0; e < cfg.epochs_per_writer; ++e) {
        for (int m = 0; m < cfg.masks_per_epoch; ++m) {
          Mask mask = BlobMask(&rng, 32, 32);
          const int64_t serial = next_serial.fetch_add(1);
          MaskMeta meta;
          meta.image_id = serial;
          meta.model_id = 0;
          meta.mask_type = MaskType::kSaliencyMap;
          {
            std::lock_guard<std::mutex> lock(blob_mu);
            serial_blobs[serial] =
                std::string(reinterpret_cast<const char*>(mask.data().data()),
                            mask.ByteSize());
          }
          auto id = ingestor->Append(meta, mask);
          ASSERT_TRUE(id.ok()) << id.status().ToString();
        }
        std::lock_guard<std::mutex> lock(publish_mu);
        MS_ASSERT_OK(ingestor->Publish());
        record_current_epoch();
      }
    });
  }

  // Maintenance thread: scripted deletes + publishes + >= 2 compactions,
  // all racing the writers' appends and the readers' pinned queries.
  int64_t compactions_done = 0;
  std::thread maintenance([&] {
    Rng rng(31337);
    for (int round = 0; round < cfg.maintenance_rounds; ++round) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      {
        std::lock_guard<std::mutex> lock(publish_mu);
        const int64_t appended = ingestor->appended();
        int deleted = 0;
        for (int attempt = 0;
             attempt < cfg.deletes_per_round * 4 &&
             deleted < cfg.deletes_per_round && appended > 0;
             ++attempt) {
          const MaskId victim =
              static_cast<MaskId>(rng.UniformInt(0, appended - 1));
          const Status st = ingestor->Delete(victim);
          if (st.ok()) {
            ++deleted;
          } else {
            // Racing double-delete: typed NotFound, never anything else.
            ASSERT_EQ(st.code(), StatusCode::kNotFound) << st.ToString();
          }
        }
        MS_ASSERT_OK(ingestor->Publish());
        record_current_epoch();
      }
      if ((round + 1) % cfg.compact_every == 0) {
        std::lock_guard<std::mutex> lock(publish_mu);
        auto stats = compactor.Compact();
        ASSERT_TRUE(stats.ok()) << stats.status().ToString();
        ++compactions_done;
        // The swap published a fresh epoch in the new generation.
        record_current_epoch();
      }
    }
  });

  std::mutex obs_mu;
  std::vector<Observation> observations;
  std::vector<std::thread> readers;
  for (int r = 0; r < cfg.num_readers; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(2000 + r);
      for (int i = 0; i < cfg.queries_per_reader || !writers_done.load();
           ++i) {
        if (i >= cfg.queries_per_reader * 4) break;  // bounded overrun
        const uint64_t seed = rng.UniformInt(0, 1 << 30);
        Rng qrng(seed);
        ServiceRequest req;
        req.tenant = r;
        req.query = MakeQuery(&qrng);
        auto pending = service->Submit(req);
        if (!pending.ok()) continue;  // shed by admission control: fine
        auto response = (*pending)->Wait();
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        const int64_t epoch = (*pending)->epoch();
        std::lock_guard<std::mutex> lock(obs_mu);
        observations.push_back({epoch, seed, std::move(*response)});
      }
    });
  }

  for (auto& t : writers) t.join();
  writers_done.store(true);
  maintenance.join();
  for (auto& t : readers) t.join();
  service->Drain();

  ASSERT_GE(compactions_done, 2) << "the script must exercise >= 2 swaps";
  EXPECT_EQ(ingestor->generation(), compactions_done);
  EXPECT_EQ(compactor.Counters().compactions_completed, compactions_done);

  // --- replay oracle ----------------------------------------------------
  // Per distinct observed epoch: rebuild a store holding exactly the
  // recorded visible masks of that epoch (compaction renumbers ids, so the
  // final store's prefix cannot stand in), replay every query admitted at
  // that epoch serially, and demand byte-identical responses.
  for (const Observation& obs : observations) {
    ASSERT_TRUE(epoch_records.count(obs.epoch))
        << "query admitted at an epoch that was never recorded: "
        << obs.epoch;
  }
  for (const auto& [epoch, serials] : epoch_records) {
    bool any = false;
    for (const Observation& obs : observations) any |= obs.epoch == epoch;
    if (!any) continue;

    TempDir replay_dir("maintain_replay_" + std::to_string(epoch));
    MaskStoreWriter::Options wopts;
    wopts.num_shards = 3;
    auto writer =
        MaskStoreWriter::Create(replay_dir.path(), wopts).ValueOrDie();
    for (const int64_t serial : serials) {
      MaskMeta meta;
      meta.image_id = serial;
      meta.model_id = 0;
      meta.mask_type = MaskType::kSaliencyMap;
      meta.width = 32;
      meta.height = 32;
      writer->AppendBlob(meta, serial_blobs.at(serial)).ValueOrDie();
    }
    MS_ASSERT_OK(writer->Finish());
    auto replay_store = MaskStore::Open(replay_dir.path()).ValueOrDie();
    SessionOptions sess;
    sess.chi = TestConfig();
    auto session = Session::Open(replay_store.get(), sess).ValueOrDie();

    for (const Observation& obs : observations) {
      if (obs.epoch != epoch) continue;
      Rng qrng(obs.query_seed);
      const QueryRequest query = MakeQuery(&qrng);
      QueryResponse serial_resp;
      serial_resp.kind = query.kind;
      switch (query.kind) {
        case QueryRequest::Kind::kFilter:
          serial_resp.filter = session->Filter(query.filter).ValueOrDie();
          break;
        case QueryRequest::Kind::kTopK:
          serial_resp.topk = session->TopK(query.topk).ValueOrDie();
          break;
        case QueryRequest::Kind::kAggregation:
          serial_resp.agg = session->Aggregate(query.agg).ValueOrDie();
          break;
        case QueryRequest::Kind::kMaskAgg:
          serial_resp.agg =
              session->MaskAggregate(query.mask_agg).ValueOrDie();
          break;
      }
      ExpectSameResponse(serial_resp, obs.response, epoch, obs.query_seed);
    }
  }

  // --- retention invariants ---------------------------------------------
  // Every query drained, so no superseded snapshot stays pinned and every
  // retired generation's directory is gone; only the current one remains.
  EXPECT_EQ(ingestor->Stats().live_snapshots, 0);
  const int64_t current_gen = ingestor->generation();
  for (int64_t g = 1; g < current_gen; ++g) {
    EXPECT_FALSE(std::filesystem::exists(GenerationDir(dir.path(), g)))
        << "retired generation " << g << " was not GC'd";
  }
  EXPECT_TRUE(
      std::filesystem::is_directory(GenerationDir(dir.path(), current_gen)));
  EXPECT_FALSE(PathExists(MaskStoreManifestPath(dir.path())))
      << "generation 0's files were not GC'd";
  service->Shutdown();

  // The final store reopens read-only with exactly the last epoch's view.
  const EpochRecord& last = epoch_records.rbegin()->second;
  auto final_store = MaskStore::Open(dir.path()).ValueOrDie();
  ASSERT_EQ(final_store->num_masks(), static_cast<int64_t>(last.size()));
  for (size_t v = 0; v < last.size(); ++v) {
    EXPECT_EQ(final_store->meta(v).image_id, last[v]);
    std::string blob;
    MS_ASSERT_OK(final_store->ReadBlob(static_cast<MaskId>(v), &blob));
    EXPECT_EQ(blob, serial_blobs.at(last[v])) << "visible id " << v;
  }
}

/// Generation swaps racing the resolver: admission must always observe a
/// fully published snapshot whose store matches its watermark, and
/// generations/epochs move forward only.
TEST(MaintainStressTest, SwapAlwaysPresentsConsistentSnapshot) {
  const StressConfig cfg = MakeConfig();
  TempDir dir("maintain_swap_consistent");
  IngestorOptions iopts;
  iopts.chi = TestConfig();
  iopts.num_shards = 2;
  iopts.cache_budget_bytes = 2ull << 20;
  auto ingestor = Ingestor::Create(dir.path(), iopts).ValueOrDie();
  Compactor compactor(ingestor.get());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(7);
    const int rounds = cfg.maintenance_rounds * 2;
    for (int e = 0; e < rounds; ++e) {
      for (int m = 0; m < cfg.masks_per_epoch; ++m) {
        MaskMeta meta;
        meta.image_id = e * cfg.masks_per_epoch + m;
        auto id = ingestor->Append(meta, BlobMask(&rng, 16, 16));
        ASSERT_TRUE(id.ok());
      }
      if (ingestor->appended() > 2) {
        MS_ASSERT_OK(ingestor->Delete(ingestor->appended() - 2));
      }
      MS_ASSERT_OK(ingestor->Publish());
      auto stats = compactor.Compact();
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    }
    stop.store(true);
  });

  std::vector<std::thread> observers;
  for (int r = 0; r < cfg.num_readers; ++r) {
    observers.emplace_back([&] {
      int64_t last_epoch = -1;
      int64_t last_gen = -1;
      while (!stop.load(std::memory_order_acquire)) {
        std::shared_ptr<const Snapshot> snap = ingestor->snapshot();
        EXPECT_GE(snap->epoch(), last_epoch);
        EXPECT_GE(snap->generation(), last_gen);
        EXPECT_EQ(snap->store().num_masks(), snap->watermark());
        // A pinned snapshot's store stays readable across swaps: load the
        // last visible mask (generation files must still be on disk).
        if (snap->watermark() > 0) {
          auto mask = snap->store().LoadMask(snap->watermark() - 1);
          EXPECT_TRUE(mask.ok()) << mask.status().ToString();
        }
        last_epoch = snap->epoch();
        last_gen = snap->generation();
      }
    });
  }
  writer.join();
  for (auto& t : observers) t.join();
  EXPECT_EQ(ingestor->Stats().live_snapshots, 0);
  EXPECT_EQ(ingestor->generation(), cfg.maintenance_rounds * 2);
}

}  // namespace
}  // namespace masksearch
