// Failure-injection tests: corrupted or truncated on-disk state must surface
// as clean Status errors from every layer — never crashes, never silently
// wrong results. Also exercises concurrent query execution on one session,
// network-layer failures (server gone mid-request → typed error within the
// timeout, never a hang), and router-level replica kills under load
// (docs/REPLICATION.md).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include "masksearch/catalog/catalog.h"
#include "masksearch/catalog/prepared.h"
#include "masksearch/exec/session.h"
#include "masksearch/net/client.h"
#include "masksearch/net/server.h"
#include "masksearch/replica/fault_injector.h"
#include "masksearch/replica/replica_group.h"
#include "masksearch/replica/router.h"
#include "masksearch/sql/binder.h"
#include "masksearch/workload/query_gen.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::MakeStore;
using testing_util::TempDir;

FilterQuery EverythingQuery() {
  FilterQuery q;
  CpTerm term;
  term.roi_source = RoiSource::kFullMask;
  term.range = ValueRange(0.0, 1.0);
  q.terms.push_back(term);
  // Forces verification of every mask: the threshold sits inside (0, area).
  q.predicate = Predicate::Compare(CpExpr::Term(0), CompareOp::kGt, 1.0);
  return q;
}

TEST(FailureInjectionTest, TruncatedDataFileFailsLoads) {
  TempDir dir("fail");
  auto store = MakeStore(dir.path(), 6, 1, 16, 16);
  store.reset();
  // Truncate the data file to half a mask.
  std::filesystem::resize_file(MaskStoreDataPath(dir.path()), 100);
  auto reopened = MaskStore::Open(dir.path()).ValueOrDie();
  EXPECT_TRUE(reopened->LoadMask(0).status().IsIOError());
  EXPECT_TRUE(reopened->LoadMask(5).status().IsIOError());
}

TEST(FailureInjectionTest, TruncatedDataFilePropagatesThroughExecutor) {
  TempDir dir("fail");
  auto store = MakeStore(dir.path(), 6, 1, 16, 16);
  store.reset();
  std::filesystem::resize_file(MaskStoreDataPath(dir.path()), 100);
  auto reopened = MaskStore::Open(dir.path()).ValueOrDie();
  // No index: the executor must load masks and must report the I/O failure.
  auto r = ExecuteFilter(*reopened, nullptr, EverythingQuery());
  EXPECT_TRUE(r.status().IsIOError()) << r.status();
}

TEST(FailureInjectionTest, CorruptChiFileRejectedAtSessionOpen) {
  TempDir dir("fail");
  auto store = MakeStore(dir.path(), 4, 1, 16, 16);
  const std::string index_path = dir.file("bad.chi");
  MS_ASSERT_OK(WriteFile(index_path, "definitely not a chi set"));
  SessionOptions opts;
  opts.chi.cell_width = opts.chi.cell_height = 8;
  opts.chi.num_bins = 4;
  opts.index_path = index_path;
  EXPECT_FALSE(Session::Open(store.get(), opts).ok());
}

TEST(FailureInjectionTest, TruncatedChiFileRejected) {
  TempDir dir("fail");
  auto store = MakeStore(dir.path(), 4, 1, 16, 16);
  ChiConfig cfg;
  cfg.cell_width = cfg.cell_height = 8;
  cfg.num_bins = 4;
  IndexManager mgr(4, cfg);
  MS_ASSERT_OK(mgr.BuildAll(*store));
  const std::string path = dir.file("t.chi");
  MS_ASSERT_OK(mgr.SaveToFile(path));
  auto bytes = ReadFile(path).ValueOrDie();
  MS_ASSERT_OK(WriteFile(path, bytes.substr(0, bytes.size() * 2 / 3)));
  IndexManager restored(4, cfg);
  EXPECT_FALSE(restored.LoadFromFile(path).ok());
}

TEST(FailureInjectionTest, MissingDataFile) {
  TempDir dir("fail");
  auto store = MakeStore(dir.path(), 3, 1, 16, 16);
  store.reset();
  MS_ASSERT_OK(RemoveFileIfExists(MaskStoreDataPath(dir.path())));
  EXPECT_FALSE(MaskStore::Open(dir.path()).ok());
}

TEST(FailureInjectionTest, ManifestDataDisagreementDetectedOnLoad) {
  // A manifest pointing past the end of the data file is caught per load.
  TempDir dir("fail");
  auto store = MakeStore(dir.path(), 3, 1, 16, 16);
  store.reset();
  const std::string data_path = MaskStoreDataPath(dir.path());
  const auto size = ReadFile(data_path).ValueOrDie().size();
  std::filesystem::resize_file(data_path, size - 64);
  auto reopened = MaskStore::Open(dir.path()).ValueOrDie();
  EXPECT_TRUE(reopened->LoadMask(0).ok());   // early masks intact
  EXPECT_FALSE(reopened->LoadMask(2).ok());  // last mask truncated
}

TEST(ConcurrencyTest, ParallelQueriesOnOneSessionAgree) {
  TempDir dir("conc");
  auto store = MakeStore(dir.path(), 20, 2, 32, 32, /*seed=*/5);
  SessionOptions opts;
  opts.chi.cell_width = opts.chi.cell_height = 8;
  opts.chi.num_bins = 8;
  auto session = Session::Open(store.get(), opts).ValueOrDie();

  // Sequential ground truth.
  std::vector<FilterQuery> queries;
  Rng rng(33);
  for (int i = 0; i < 8; ++i) queries.push_back(GenerateFilterQuery(&rng, *store));
  std::vector<std::vector<MaskId>> expected;
  for (const auto& q : queries) expected.push_back(session->Filter(q)->mask_ids);

  // The same queries issued concurrently from multiple threads.
  std::vector<std::vector<MaskId>> got(queries.size());
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = t; i < queries.size(); i += 4) {
        got[i] = session->Filter(queries[i])->mask_ids;
      }
    });
  }
  for (auto& th : threads) th.join();
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "query " << i;
  }
}

TEST(ConcurrencyTest, IncrementalIndexingUnderConcurrentQueries) {
  // MS-II builds CHIs from concurrent query threads; first-put-wins keeps
  // the index consistent and every query exact.
  TempDir dir("conc");
  auto store = MakeStore(dir.path(), 16, 2, 32, 32, /*seed=*/6);
  SessionOptions opts;
  opts.chi.cell_width = opts.chi.cell_height = 8;
  opts.chi.num_bins = 8;
  opts.incremental = true;
  auto session = Session::Open(store.get(), opts).ValueOrDie();

  FilterQuery q = EverythingQuery();
  std::vector<std::thread> threads;
  std::vector<std::vector<MaskId>> results(4);
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back(
        [&, t] { results[t] = session->Filter(q)->mask_ids; });
  }
  for (auto& th : threads) th.join();
  for (size_t t = 1; t < 4; ++t) EXPECT_EQ(results[t], results[0]);
  EXPECT_EQ(static_cast<int64_t>(session->index().num_built()),
            store->num_masks());
}

// ---------------------------------------------------------------------------
// Network-layer failures (docs/NETWORK.md, docs/REPLICATION.md)
// ---------------------------------------------------------------------------

constexpr char kNetFilterSql[] =
    "SELECT mask_id FROM MasksDatabaseView "
    "WHERE CP(mask, object, (0.6, 1.0)) > 40;";

TEST(NetworkFailureTest, ServerGoneMidStreamYieldsTypedErrorsNotHangs) {
  TempDir dir("netfail");
  MakeStore(dir.path() + "/store", 8, 1, 16, 16).reset();
  Catalog catalog;
  DatasetConfig config;
  config.service.num_workers = 2;
  ASSERT_TRUE(catalog.Register("main", dir.path() + "/store", config).ok());
  auto server = net::NetServer::Start(&catalog, {}).ValueOrDie();

  net::NetClientOptions copts;
  copts.recv_timeout_seconds = 2;  // the no-hang bound
  auto client =
      net::NetClient::Connect("127.0.0.1", server->port(), copts).ValueOrDie();
  MS_ASSERT_OK(client->Ping());

  // Clients hammering the server while it is stopped mid-stream: every
  // outcome is either a correct response or a typed error, returned within
  // the receive timeout — no hangs, no garbage.
  const auto expected =
      catalog.Find("main")
          ->session()
          ->Filter(sql::ParseAndBind(kNetFilterSql).ValueOrDie().filter)
          .ValueOrDie();
  std::atomic<int> wrong{0};
  std::atomic<int> untyped{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      net::NetClientOptions o;
      o.recv_timeout_seconds = 2;
      auto c = net::NetClient::Connect("127.0.0.1", server->port(), o);
      if (!c.ok()) return;
      for (int i = 0; i < 40; ++i) {
        auto resp = (*c)->Query("main", kNetFilterSql);
        if (!resp.ok()) {
          // Typed transport/service error; anything else is a bug.
          if (!resp.status().IsUnavailable() && !resp.status().IsIOError() &&
              !resp.status().IsCancelled()) {
            ++untyped;
          }
          return;  // connection is gone; this client is done
        }
        if (resp->result.mask_ids.size() != expected.mask_ids.size()) ++wrong;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server->Stop();
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(untyped.load(), 0);

  // And a fresh request against the stopped server fails typed, fast.
  const auto t0 = std::chrono::steady_clock::now();
  const Status st = client->Query("main", kNetFilterSql).status();
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsUnavailable() || st.IsIOError()) << st.ToString();
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(10));
}

TEST(NetworkFailureTest, ClientReconnectsToRestartedServerWithinBudget) {
  TempDir dir("netfail");
  MakeStore(dir.path() + "/store", 8, 1, 16, 16).reset();
  Catalog catalog;
  DatasetConfig config;
  config.service.num_workers = 2;
  ASSERT_TRUE(catalog.Register("main", dir.path() + "/store", config).ok());
  auto server = net::NetServer::Start(&catalog, {}).ValueOrDie();
  const uint16_t port = server->port();

  net::NetClientOptions copts;
  copts.recv_timeout_seconds = 5;
  copts.max_retries = 4;
  copts.retry_backoff_seconds = 0.02;
  auto client = net::NetClient::Connect("127.0.0.1", port, copts).ValueOrDie();
  auto first = client->Query("main", kNetFilterSql).ValueOrDie();

  // Bounce the server on the same port; the client's bounded reconnect
  // path must pick up the new instance transparently.
  server->Stop();
  net::NetServerOptions sopts;
  sopts.port = port;
  auto server2 = net::NetServer::Start(&catalog, sopts).ValueOrDie();

  auto second = client->Query("main", kNetFilterSql).ValueOrDie();
  EXPECT_EQ(second.result.mask_ids, first.result.mask_ids);
  const auto rs = client->retry_stats();
  EXPECT_GE(rs.retries, 1u);
  EXPECT_GE(rs.reconnects, 1u);

  // With the server gone for good, the budget bounds the failure: typed
  // error after at most 1 + max_retries attempts, never an infinite loop.
  server2->Stop();
  const Status st = client->Query("main", kNetFilterSql).status();
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsUnavailable() || st.IsIOError()) << st.ToString();
}

// Router-level fault injection under concurrent load: a replica killed by
// script mid-run. Survivors must return byte-identical results, the typed
// error count stays within the failover budget (zero — retries absorb the
// kill), and the router returns to full throughput.
TEST(RouterFailureTest, ScriptedKillMidLoadStaysWithinErrorBudget) {
  TempDir dir("routerfail");
  auto store = MakeStore(dir.path() + "/store", 24, 2, 32, 32);

  ReplicaConfig config;
  config.service.num_workers = 2;
  ReplicaGroup group;
  MS_ASSERT_OK(group.AddInProcess("r", dir.path() + "/store", config, 3));

  FaultInjector injector;
  injector.Schedule(FaultInjector::Parse("kill:r1:60").ValueOrDie());

  RouterOptions opts;
  opts.fault_injector = &injector;
  opts.failure_threshold = 1;
  opts.probe_interval_seconds = 0.01;
  opts.backoff_base_seconds = 0.0005;
  opts.max_attempts = 4;
  Router router(&group, opts);

  const std::vector<std::string> sqls = {
      "SELECT mask_id FROM MasksDatabaseView "
      "WHERE CP(mask, object, (0.6, 1.0)) > 40;",
      "SELECT mask_id FROM MasksDatabaseView "
      "WHERE CP(mask, object, (0.8, 1.0)) > 10;",
      "SELECT mask_id FROM MasksDatabaseView "
      "WHERE CP(mask, object, (0.5, 1.0)) > 100;",
  };
  auto session = Session::Open(store.get(), {}).ValueOrDie();
  std::vector<std::vector<MaskId>> expected;
  for (const auto& sql : sqls) {
    expected.push_back(
        session->Filter(sql::ParseAndBind(sql).ValueOrDie().filter)
            ->mask_ids);
  }
  auto make_request = [&](size_t which) {
    RoutedRequest routed;
    routed.sqltext = sqls[which];
    routed.service.query =
        RequestFromBound(sql::ParseAndBind(sqls[which]).ValueOrDie());
    return routed;
  };

  constexpr int kThreads = 6;
  constexpr int kPerThread = 40;
  std::atomic<int> wrong{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const size_t which = static_cast<size_t>(t + i) % sqls.size();
        auto resp = router.Execute(make_request(which));
        if (!resp.ok()) {
          ++errors;
          continue;
        }
        if (resp->filter.mask_ids != expected[which]) ++wrong;
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(wrong.load(), 0);           // survivors: byte-identical results
  EXPECT_LE(errors.load(), kThreads);   // bounded error budget
  EXPECT_EQ(errors.load(), 0) << "failover should absorb the scripted kill";
  EXPECT_EQ(injector.stats().kills_fired, 1u);
  EXPECT_FALSE(group.Find("r1")->alive());

  // Throughput resumes on the survivors.
  for (size_t which = 0; which < sqls.size(); ++which) {
    auto resp = router.Execute(make_request(which)).ValueOrDie();
    EXPECT_EQ(resp.filter.mask_ids, expected[which]);
  }
  const RouterStats stats = router.Stats();
  EXPECT_GE(stats.succeeded,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.shed, 0u);
  router.Shutdown();
  group.StopAll();
}

}  // namespace
}  // namespace masksearch
