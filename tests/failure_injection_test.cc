// Failure-injection tests: corrupted or truncated on-disk state must surface
// as clean Status errors from every layer — never crashes, never silently
// wrong results. Also exercises concurrent query execution on one session.

#include <gtest/gtest.h>

#include <filesystem>

#include "masksearch/exec/session.h"
#include "masksearch/workload/query_gen.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::MakeStore;
using testing_util::TempDir;

FilterQuery EverythingQuery() {
  FilterQuery q;
  CpTerm term;
  term.roi_source = RoiSource::kFullMask;
  term.range = ValueRange(0.0, 1.0);
  q.terms.push_back(term);
  // Forces verification of every mask: the threshold sits inside (0, area).
  q.predicate = Predicate::Compare(CpExpr::Term(0), CompareOp::kGt, 1.0);
  return q;
}

TEST(FailureInjectionTest, TruncatedDataFileFailsLoads) {
  TempDir dir("fail");
  auto store = MakeStore(dir.path(), 6, 1, 16, 16);
  store.reset();
  // Truncate the data file to half a mask.
  std::filesystem::resize_file(MaskStoreDataPath(dir.path()), 100);
  auto reopened = MaskStore::Open(dir.path()).ValueOrDie();
  EXPECT_TRUE(reopened->LoadMask(0).status().IsIOError());
  EXPECT_TRUE(reopened->LoadMask(5).status().IsIOError());
}

TEST(FailureInjectionTest, TruncatedDataFilePropagatesThroughExecutor) {
  TempDir dir("fail");
  auto store = MakeStore(dir.path(), 6, 1, 16, 16);
  store.reset();
  std::filesystem::resize_file(MaskStoreDataPath(dir.path()), 100);
  auto reopened = MaskStore::Open(dir.path()).ValueOrDie();
  // No index: the executor must load masks and must report the I/O failure.
  auto r = ExecuteFilter(*reopened, nullptr, EverythingQuery());
  EXPECT_TRUE(r.status().IsIOError()) << r.status();
}

TEST(FailureInjectionTest, CorruptChiFileRejectedAtSessionOpen) {
  TempDir dir("fail");
  auto store = MakeStore(dir.path(), 4, 1, 16, 16);
  const std::string index_path = dir.file("bad.chi");
  MS_ASSERT_OK(WriteFile(index_path, "definitely not a chi set"));
  SessionOptions opts;
  opts.chi.cell_width = opts.chi.cell_height = 8;
  opts.chi.num_bins = 4;
  opts.index_path = index_path;
  EXPECT_FALSE(Session::Open(store.get(), opts).ok());
}

TEST(FailureInjectionTest, TruncatedChiFileRejected) {
  TempDir dir("fail");
  auto store = MakeStore(dir.path(), 4, 1, 16, 16);
  ChiConfig cfg;
  cfg.cell_width = cfg.cell_height = 8;
  cfg.num_bins = 4;
  IndexManager mgr(4, cfg);
  MS_ASSERT_OK(mgr.BuildAll(*store));
  const std::string path = dir.file("t.chi");
  MS_ASSERT_OK(mgr.SaveToFile(path));
  auto bytes = ReadFile(path).ValueOrDie();
  MS_ASSERT_OK(WriteFile(path, bytes.substr(0, bytes.size() * 2 / 3)));
  IndexManager restored(4, cfg);
  EXPECT_FALSE(restored.LoadFromFile(path).ok());
}

TEST(FailureInjectionTest, MissingDataFile) {
  TempDir dir("fail");
  auto store = MakeStore(dir.path(), 3, 1, 16, 16);
  store.reset();
  MS_ASSERT_OK(RemoveFileIfExists(MaskStoreDataPath(dir.path())));
  EXPECT_FALSE(MaskStore::Open(dir.path()).ok());
}

TEST(FailureInjectionTest, ManifestDataDisagreementDetectedOnLoad) {
  // A manifest pointing past the end of the data file is caught per load.
  TempDir dir("fail");
  auto store = MakeStore(dir.path(), 3, 1, 16, 16);
  store.reset();
  const std::string data_path = MaskStoreDataPath(dir.path());
  const auto size = ReadFile(data_path).ValueOrDie().size();
  std::filesystem::resize_file(data_path, size - 64);
  auto reopened = MaskStore::Open(dir.path()).ValueOrDie();
  EXPECT_TRUE(reopened->LoadMask(0).ok());   // early masks intact
  EXPECT_FALSE(reopened->LoadMask(2).ok());  // last mask truncated
}

TEST(ConcurrencyTest, ParallelQueriesOnOneSessionAgree) {
  TempDir dir("conc");
  auto store = MakeStore(dir.path(), 20, 2, 32, 32, /*seed=*/5);
  SessionOptions opts;
  opts.chi.cell_width = opts.chi.cell_height = 8;
  opts.chi.num_bins = 8;
  auto session = Session::Open(store.get(), opts).ValueOrDie();

  // Sequential ground truth.
  std::vector<FilterQuery> queries;
  Rng rng(33);
  for (int i = 0; i < 8; ++i) queries.push_back(GenerateFilterQuery(&rng, *store));
  std::vector<std::vector<MaskId>> expected;
  for (const auto& q : queries) expected.push_back(session->Filter(q)->mask_ids);

  // The same queries issued concurrently from multiple threads.
  std::vector<std::vector<MaskId>> got(queries.size());
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = t; i < queries.size(); i += 4) {
        got[i] = session->Filter(queries[i])->mask_ids;
      }
    });
  }
  for (auto& th : threads) th.join();
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "query " << i;
  }
}

TEST(ConcurrencyTest, IncrementalIndexingUnderConcurrentQueries) {
  // MS-II builds CHIs from concurrent query threads; first-put-wins keeps
  // the index consistent and every query exact.
  TempDir dir("conc");
  auto store = MakeStore(dir.path(), 16, 2, 32, 32, /*seed=*/6);
  SessionOptions opts;
  opts.chi.cell_width = opts.chi.cell_height = 8;
  opts.chi.num_bins = 8;
  opts.incremental = true;
  auto session = Session::Open(store.get(), opts).ValueOrDie();

  FilterQuery q = EverythingQuery();
  std::vector<std::thread> threads;
  std::vector<std::vector<MaskId>> results(4);
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back(
        [&, t] { results[t] = session->Filter(q)->mask_ids; });
  }
  for (auto& th : threads) th.join();
  for (size_t t = 1; t < 4; ++t) EXPECT_EQ(results[t], results[0]);
  EXPECT_EQ(static_cast<int64_t>(session->index().num_built()),
            store->num_masks());
}

}  // namespace
}  // namespace masksearch
