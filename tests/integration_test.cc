// End-to-end integration: build a synthetic dataset, run the paper's five
// benchmark queries (Table 1) through the SQL front end on a MaskSearch
// session, and cross-check every result against all three baselines.

#include <gtest/gtest.h>

#include "masksearch/baselines/full_scan.h"
#include "masksearch/baselines/row_store.h"
#include "masksearch/baselines/tiled_array.h"
#include "masksearch/exec/session.h"
#include "masksearch/sql/binder.h"
#include "masksearch/workload/datasets.h"
#include "masksearch/workload/workload_gen.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::TempDir;

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("integration");
    DatasetSpec spec;
    spec.name = "integration";
    spec.num_images = 40;
    spec.num_models = 2;
    spec.saliency.width = 56;
    spec.saliency.height = 56;
    spec.seed = 1234;
    MS_ASSERT_OK(BuildDataset(dir_->path(), spec));
    store_ = MaskStore::Open(dir_->path()).ValueOrDie();

    SessionOptions opts;
    opts.chi.cell_width = 8;
    opts.chi.cell_height = 8;
    opts.chi.num_bins = 16;
    session_ = Session::Open(store_.get(), opts).ValueOrDie();
    full_ = std::make_unique<FullScanBaseline>(store_.get());
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<MaskStore> store_;
  std::unique_ptr<Session> session_;
  std::unique_ptr<FullScanBaseline> full_;
};

TEST_F(IntegrationTest, Q1FilterConstantRoiViaSql) {
  auto bound = sql::ParseAndBind(
      "SELECT mask_id FROM MasksDatabaseView "
      "WHERE CP(mask, ((9, 9), (40, 40)), (0.6, 1.0)) > 300 AND model_id = 1;");
  ASSERT_TRUE(bound.ok()) << bound.status();
  ASSERT_EQ(bound->kind, sql::BoundQuery::Kind::kFilter);
  auto got = session_->Filter(bound->filter);
  ASSERT_TRUE(got.ok());
  auto want = full_->Filter(bound->filter);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(got->mask_ids, want->mask_ids);
  EXPECT_LT(got->stats.masks_loaded, want->stats.masks_loaded);
}

TEST_F(IntegrationTest, Q2FilterObjectRoiViaSql) {
  auto bound = sql::ParseAndBind(
      "SELECT mask_id FROM MasksDatabaseView "
      "WHERE CP(mask, object, (0.8, 1.0)) > 150 AND model_id = 1;");
  ASSERT_TRUE(bound.ok());
  auto got = session_->Filter(bound->filter);
  auto want = full_->Filter(bound->filter);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(got->mask_ids, want->mask_ids);
}

TEST_F(IntegrationTest, Q3TopKViaSql) {
  auto bound = sql::ParseAndBind(
      "SELECT mask_id FROM MasksDatabaseView WHERE model_id = 1 "
      "ORDER BY CP(mask, ((9,9),(40,40)), (0.8, 1.0)) DESC LIMIT 25;");
  ASSERT_TRUE(bound.ok());
  ASSERT_EQ(bound->kind, sql::BoundQuery::Kind::kTopK);
  auto got = session_->TopK(bound->topk);
  auto want = full_->TopK(bound->topk);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(want.ok());
  ASSERT_EQ(got->items.size(), want->items.size());
  for (size_t i = 0; i < got->items.size(); ++i) {
    EXPECT_EQ(got->items[i].mask_id, want->items[i].mask_id);
  }
}

TEST_F(IntegrationTest, Q4AggregationViaSql) {
  auto bound = sql::ParseAndBind(
      "SELECT image_id, MEAN(CP(mask, object, (0.8, 1.0))) AS m "
      "FROM MasksDatabaseView GROUP BY image_id ORDER BY m DESC LIMIT 25;");
  ASSERT_TRUE(bound.ok());
  ASSERT_EQ(bound->kind, sql::BoundQuery::Kind::kAggregation);
  auto got = session_->Aggregate(bound->agg);
  auto want = full_->Aggregate(bound->agg);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(want.ok());
  ASSERT_EQ(got->groups.size(), want->groups.size());
  for (size_t i = 0; i < got->groups.size(); ++i) {
    EXPECT_EQ(got->groups[i].group, want->groups[i].group);
    EXPECT_DOUBLE_EQ(got->groups[i].value, want->groups[i].value);
  }
}

TEST_F(IntegrationTest, Q5MaskAggViaSql) {
  auto bound = sql::ParseAndBind(
      "SELECT image_id, CP(INTERSECT(mask > 0.8), object, (0.8, 1.0)) AS s "
      "FROM MasksDatabaseView GROUP BY image_id ORDER BY s DESC LIMIT 25;");
  ASSERT_TRUE(bound.ok());
  ASSERT_EQ(bound->kind, sql::BoundQuery::Kind::kMaskAgg);
  auto got = session_->MaskAggregate(bound->mask_agg);
  auto want = full_->MaskAggregate(bound->mask_agg);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_TRUE(want.ok());
  ASSERT_EQ(got->groups.size(), want->groups.size());
  for (size_t i = 0; i < got->groups.size(); ++i) {
    EXPECT_EQ(got->groups[i].group, want->groups[i].group);
    EXPECT_DOUBLE_EQ(got->groups[i].value, want->groups[i].value);
  }
}

TEST_F(IntegrationTest, AllBaselinesAgreeOnQ1) {
  MS_ASSERT_OK(RowStoreBaseline::CreateFiles(dir_->file("rs"), *store_));
  auto row =
      RowStoreBaseline::Open(dir_->file("rs"), store_.get(), nullptr)
          .ValueOrDie();
  TiledArrayBaseline::Options topts;
  MS_ASSERT_OK(TiledArrayBaseline::CreateFiles(dir_->file("ta"), *store_, topts));
  auto tiled =
      TiledArrayBaseline::Open(dir_->file("ta"), store_.get(), nullptr)
          .ValueOrDie();

  auto bound = sql::ParseAndBind(
      "SELECT mask_id FROM MasksDatabaseView "
      "WHERE CP(mask, ((9, 9), (40, 40)), (0.6, 1.0)) > 300;");
  ASSERT_TRUE(bound.ok());
  auto ms = session_->Filter(bound->filter);
  auto np = full_->Filter(bound->filter);
  auto pg = row->Filter(bound->filter);
  auto tdb = tiled->Filter(bound->filter);
  ASSERT_TRUE(ms.ok());
  ASSERT_TRUE(np.ok());
  ASSERT_TRUE(pg.ok());
  ASSERT_TRUE(tdb.ok());
  EXPECT_EQ(ms->mask_ids, np->mask_ids);
  EXPECT_EQ(ms->mask_ids, pg->mask_ids);
  EXPECT_EQ(ms->mask_ids, tdb->mask_ids);
}

TEST_F(IntegrationTest, MultiQueryWorkloadMsEqualsMsii) {
  WorkloadOptions wopts;
  wopts.num_queries = 15;
  wopts.p_seen = 0.5;
  wopts.seed = 99;
  const Workload workload = GenerateWorkload(*store_, wopts);

  SessionOptions ii;
  ii.chi = session_->options().chi;
  ii.incremental = true;
  auto msii = Session::Open(store_.get(), ii).ValueOrDie();

  for (size_t i = 0; i < workload.queries.size(); ++i) {
    auto a = session_->Filter(workload.queries[i]);
    auto b = msii->Filter(workload.queries[i]);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->mask_ids, b->mask_ids) << "workload query " << i;
  }
  // MS-II never indexed more masks than the workload touched.
  EXPECT_LE(static_cast<int64_t>(msii->index().num_built()),
            workload.distinct_targeted);
}

TEST_F(IntegrationTest, IndexIsSmallRelativeToData) {
  // §4.1 sizes the index at ~5% of the dataset by picking cell size
  // proportional to the mask (224/28 = 8 cells per side). With the paper's
  // proportions (8×8 grid, 8 bins) the index on this dataset stays below
  // 10% of the raw bytes.
  ChiConfig paper_proportions;
  paper_proportions.cell_width = 14;   // 56 / 14 = 4 cells per side
  paper_proportions.cell_height = 14;
  paper_proportions.num_bins = 8;
  IndexManager sized(store_->num_masks(), paper_proportions);
  MS_ASSERT_OK(sized.BuildAll(*store_));
  const size_t index_bytes = sized.MemoryBytes();
  const uint64_t raw_bytes = store_->TotalDataBytes();
  EXPECT_LT(index_bytes, raw_bytes / 10);
  EXPECT_GT(index_bytes, 0u);
}

}  // namespace
}  // namespace masksearch
