// End-to-end SQL conformance: paper-style query strings round-tripped
// through lexer -> parser -> binder -> executor against a synthetic
// MaskStore, with every result asserted equal to the FullScan baseline's.
// Unlike integration_test (which exercises the five Table 1 queries in
// depth), this suite sweeps a broader list of statements through a single
// kind-dispatching harness, in both the bulk-indexed (MS) and incremental
// (MS-II) regimes.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "masksearch/baselines/full_scan.h"
#include "masksearch/exec/session.h"
#include "masksearch/sql/binder.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::MakeStore;
using testing_util::TempDir;

const char* const kConformanceQueries[] = {
    // Q1: filter, constant ROI in the paper's corner syntax.
    "SELECT mask_id FROM MasksDatabaseView "
    "WHERE CP(mask, ((5, 5), (40, 40)), (0.6, 1.0)) > 300;",
    // Q2: filter, object-box ROI plus a catalog predicate.
    "SELECT mask_id FROM masks "
    "WHERE CP(mask, object, (0.8, 1.0)) > 150 AND model_id = 1;",
    // Filter with a two-term CP comparison.
    "SELECT * FROM masks WHERE "
    "CP(mask, object, (0.7, 1.0)) > CP(mask, -, (0.9, 1.0));",
    // Q3: top-k by a single CP term, descending.
    "SELECT mask_id FROM masks WHERE model_id = 0 "
    "ORDER BY CP(mask, ((8,8),(40,40)), (0.7, 1.0)) DESC LIMIT 10;",
    // Example 1: ratio expression, ascending top-k. The denominator range
    // spans the full [0, 1) domain so it is always |mask| > 0 — a zero
    // denominator would make the ranking NaN-valued and unordered.
    "SELECT image_id, "
    "CP(mask, ((4,4),(24,24)), (0.8, 1.0)) / CP(mask, -, (0.0, 1.0)) AS r "
    "FROM MasksDatabaseView ORDER BY r ASC LIMIT 10;",
    // Q4: scalar aggregation, grouped, top-k over groups.
    "SELECT image_id, MEAN(CP(mask, object, (0.7, 1.0))) AS m "
    "FROM masks WHERE model_id IN (0, 1) "
    "GROUP BY image_id ORDER BY m DESC LIMIT 10;",
    // Aggregation with HAVING instead of ORDER BY.
    "SELECT image_id, SUM(CP(mask, object, (0.5, 1.0))) AS s "
    "FROM masks GROUP BY image_id HAVING s > 100;",
    // Q5 / Example 2: MASK_AGG intersect.
    "SELECT image_id, CP(INTERSECT(mask > 0.7), object, (0.7, 1.0)) AS s "
    "FROM masks GROUP BY image_id ORDER BY s DESC LIMIT 10;",
};

class SqlConformanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("sql_conformance");
    store_ = MakeStore(dir_->path(), /*num_images=*/24, /*num_models=*/2,
                       /*w=*/48, /*h=*/48, /*seed=*/321);
    full_ = std::make_unique<FullScanBaseline>(store_.get());
  }

  std::unique_ptr<Session> OpenSession(bool incremental) {
    SessionOptions opts;
    opts.chi.cell_width = 8;
    opts.chi.cell_height = 8;
    opts.chi.num_bins = 8;
    opts.incremental = incremental;
    return Session::Open(store_.get(), opts).ValueOrDie();
  }

  // Runs `sql` through the full front end on `session`, and asserts the
  // executor result is identical to the FullScan baseline's.
  void CheckQuery(Session* session, const std::string& sql) {
    SCOPED_TRACE(sql);
    auto bound = sql::ParseAndBind(sql);
    ASSERT_TRUE(bound.ok()) << bound.status();
    switch (bound->kind) {
      case sql::BoundQuery::Kind::kFilter: {
        auto got = session->Filter(bound->filter);
        ASSERT_TRUE(got.ok()) << got.status();
        auto want = full_->Filter(bound->filter);
        ASSERT_TRUE(want.ok()) << want.status();
        EXPECT_EQ(got->mask_ids, want->mask_ids);
        break;
      }
      case sql::BoundQuery::Kind::kTopK: {
        auto got = session->TopK(bound->topk);
        ASSERT_TRUE(got.ok()) << got.status();
        auto want = full_->TopK(bound->topk);
        ASSERT_TRUE(want.ok()) << want.status();
        ASSERT_EQ(got->items.size(), want->items.size());
        for (size_t i = 0; i < got->items.size(); ++i) {
          EXPECT_EQ(got->items[i].mask_id, want->items[i].mask_id) << "rank " << i;
          EXPECT_DOUBLE_EQ(got->items[i].value, want->items[i].value) << "rank " << i;
        }
        break;
      }
      case sql::BoundQuery::Kind::kAggregation: {
        auto got = session->Aggregate(bound->agg);
        ASSERT_TRUE(got.ok()) << got.status();
        auto want = full_->Aggregate(bound->agg);
        ASSERT_TRUE(want.ok()) << want.status();
        CheckGroups(*got, *want, /*ranked=*/bound->agg.k.has_value());
        break;
      }
      case sql::BoundQuery::Kind::kMaskAgg: {
        auto got = session->MaskAggregate(bound->mask_agg);
        ASSERT_TRUE(got.ok()) << got.status();
        auto want = full_->MaskAggregate(bound->mask_agg);
        ASSERT_TRUE(want.ok()) << want.status();
        CheckGroups(*got, *want, /*ranked=*/bound->mask_agg.k.has_value());
        break;
      }
    }
  }

  // Ranked (ORDER BY ... LIMIT) results must agree position-by-position,
  // values included. HAVING-only results are a set: order is unspecified and
  // bound-accepted groups may carry NaN values (the executor's documented
  // contract — membership is the answer), so only the group-id sets must
  // match.
  static void CheckGroups(const AggResult& got, const AggResult& want,
                          bool ranked) {
    ASSERT_EQ(got.groups.size(), want.groups.size());
    if (ranked) {
      for (size_t i = 0; i < got.groups.size(); ++i) {
        EXPECT_EQ(got.groups[i].group, want.groups[i].group) << "rank " << i;
        EXPECT_DOUBLE_EQ(got.groups[i].value, want.groups[i].value)
            << "rank " << i;
      }
      return;
    }
    std::vector<int64_t> got_ids, want_ids;
    for (const ScoredGroup& g : got.groups) got_ids.push_back(g.group);
    for (const ScoredGroup& g : want.groups) want_ids.push_back(g.group);
    std::sort(got_ids.begin(), got_ids.end());
    std::sort(want_ids.begin(), want_ids.end());
    EXPECT_EQ(got_ids, want_ids);
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<MaskStore> store_;
  std::unique_ptr<FullScanBaseline> full_;
};

TEST_F(SqlConformanceTest, BulkIndexedSessionMatchesFullScan) {
  auto session = OpenSession(/*incremental=*/false);
  for (const char* sql : kConformanceQueries) {
    CheckQuery(session.get(), sql);
  }
}

TEST_F(SqlConformanceTest, IncrementalSessionMatchesFullScan) {
  // MS-II: the session starts with no CHIs and indexes as queries touch
  // masks; answers must be exact from the very first query.
  auto session = OpenSession(/*incremental=*/true);
  for (const char* sql : kConformanceQueries) {
    CheckQuery(session.get(), sql);
  }
  // Second sweep: now partially indexed — results must not change.
  for (const char* sql : kConformanceQueries) {
    CheckQuery(session.get(), sql);
  }
}

TEST_F(SqlConformanceTest, MalformedStatementsRejectedUpstream) {
  // The front end, not the executor, must reject these.
  for (const char* sql : {
           "SELECT mask_id FROM masks WHERE CP(mask) > 5;",
           "SELECT FROM masks;",
           "SELECT * masks;",
           "SELECT mask_id FROM masks ORDER BY nonsense DESC LIMIT 5;",
       }) {
    SCOPED_TRACE(sql);
    EXPECT_FALSE(sql::ParseAndBind(sql).ok());
  }
}

}  // namespace
}  // namespace masksearch
