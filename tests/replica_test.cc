// Replicated-tier tests (docs/REPLICATION.md): routing affinity, health
// state machine, failover under scripted kills, online join via snapshot
// shipping, and the fault-injection gate — 2+ replicas under concurrent
// load, one killed mid-run, zero wrong results, bounded typed errors, and
// the router back to full throughput afterwards.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "masksearch/catalog/catalog.h"
#include "masksearch/catalog/prepared.h"
#include "masksearch/net/client.h"
#include "masksearch/net/server.h"
#include "masksearch/replica/fault_injector.h"
#include "masksearch/replica/replica_group.h"
#include "masksearch/replica/router.h"
#include "masksearch/sql/binder.h"
#include "tests/test_util.h"

namespace masksearch {
namespace {

using testing_util::MakeStore;
using testing_util::TempDir;

constexpr char kFilterSql[] =
    "SELECT mask_id FROM MasksDatabaseView "
    "WHERE CP(mask, object, (0.6, 1.0)) > 40;";
constexpr char kFilterSql2[] =
    "SELECT mask_id FROM MasksDatabaseView "
    "WHERE CP(mask, object, (0.8, 1.0)) > 10;";

ReplicaConfig SmallConfig() {
  ReplicaConfig config;
  config.service.num_workers = 2;
  return config;
}

/// A routed filter request carrying its SQL text (the wire shape).
RoutedRequest FilterRequest(const std::string& sql) {
  RoutedRequest routed;
  routed.sqltext = sql;
  routed.service.query = RequestFromBound(sql::ParseAndBind(sql).ValueOrDie());
  return routed;
}

class ReplicaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("replica");
    store_ = MakeStore(dir_->path() + "/store", 16, 2, 32, 32);
  }

  /// Ground truth straight through a fresh session on the source store.
  FilterResult Direct(const std::string& sql) {
    auto session = Session::Open(store_.get(), {}).ValueOrDie();
    const auto bound = sql::ParseAndBind(sql).ValueOrDie();
    return session->Filter(bound.filter).ValueOrDie();
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<MaskStore> store_;
};

TEST_F(ReplicaTest, RoutedRequestKeyIsStableAndOverridable) {
  RoutedRequest a = FilterRequest(kFilterSql);
  RoutedRequest b = FilterRequest(kFilterSql);
  RoutedRequest c = FilterRequest(kFilterSql2);
  EXPECT_EQ(a.Key(), b.Key());
  EXPECT_NE(a.Key(), c.Key());
  a.routing_key = 1234;
  EXPECT_EQ(a.Key(), 1234u);

  // Bound-only requests (no SQL text) still get a selection-derived key.
  RoutedRequest bare = FilterRequest(kFilterSql);
  bare.sqltext.clear();
  EXPECT_NE(bare.Key(), 0u);
  RoutedRequest bare2 = FilterRequest(kFilterSql);
  bare2.sqltext.clear();
  EXPECT_EQ(bare.Key(), bare2.Key());
}

TEST_F(ReplicaTest, InProcessReplicaStopsAndRestartsTyped) {
  auto replica = InProcessReplica::Open("r0", dir_->path() + "/store",
                                        SmallConfig())
                     .ValueOrDie();
  MS_ASSERT_OK(replica->Ping());
  const auto expected = Direct(kFilterSql);
  auto resp = replica->Execute(FilterRequest(kFilterSql)).ValueOrDie();
  EXPECT_EQ(resp.filter.mask_ids, expected.mask_ids);

  MS_ASSERT_OK(replica->Stop());
  EXPECT_FALSE(replica->alive());
  EXPECT_TRUE(replica->Ping().IsUnavailable());
  EXPECT_TRUE(
      replica->Execute(FilterRequest(kFilterSql)).status().IsUnavailable());

  MS_ASSERT_OK(replica->Start());
  EXPECT_TRUE(replica->alive());
  auto again = replica->Execute(FilterRequest(kFilterSql)).ValueOrDie();
  EXPECT_EQ(again.filter.mask_ids, expected.mask_ids);
}

TEST_F(ReplicaTest, GroupMembershipIsNameUniqueAndVersioned) {
  ReplicaGroup group;
  MS_ASSERT_OK(group.AddInProcess("r", dir_->path() + "/store",
                                  SmallConfig(), 3));
  EXPECT_EQ(group.size(), 3u);
  const uint64_t v = group.version();

  auto dup = InProcessReplica::Open("r1", dir_->path() + "/store",
                                    SmallConfig())
                 .ValueOrDie();
  EXPECT_TRUE(group.Add(std::move(dup)).IsAlreadyExists());

  EXPECT_TRUE(group.Remove("nope").IsNotFound());
  MS_ASSERT_OK(group.Remove("r1"));
  EXPECT_EQ(group.size(), 2u);
  EXPECT_GT(group.version(), v);
  EXPECT_EQ(group.Find("r1"), nullptr);
  EXPECT_NE(group.Find("r0"), nullptr);
  group.StopAll();
}

TEST_F(ReplicaTest, SnapshotJoinServesIdenticalBytes) {
  ReplicaGroup group;
  MS_ASSERT_OK(group.AddInProcess("r", dir_->path() + "/store",
                                  SmallConfig(), 1));
  auto joined = group
                    .AddFromSnapshot(*store_, "joiner",
                                     dir_->path() + "/joiner", SmallConfig())
                    .ValueOrDie();
  EXPECT_EQ(group.size(), 2u);

  const auto expected = Direct(kFilterSql);
  auto resp = joined->Execute(FilterRequest(kFilterSql)).ValueOrDie();
  EXPECT_EQ(resp.filter.mask_ids, expected.mask_ids);
  group.StopAll();
}

TEST_F(ReplicaTest, RouterKeepsAKeyOnOneReplica) {
  ReplicaGroup group;
  MS_ASSERT_OK(group.AddInProcess("r", dir_->path() + "/store",
                                  SmallConfig(), 3));
  Router router(&group);

  const auto expected = Direct(kFilterSql);
  for (int i = 0; i < 8; ++i) {
    auto resp = router.Execute(FilterRequest(kFilterSql)).ValueOrDie();
    EXPECT_EQ(resp.filter.mask_ids, expected.mask_ids);
  }
  // Shard affinity: every attempt landed on the same replica.
  size_t replicas_hit = 0;
  for (const auto& r : router.Stats().replicas) {
    if (r.routed > 0) ++replicas_hit;
  }
  EXPECT_EQ(replicas_hit, 1u);
  router.Shutdown();
  group.StopAll();
}

TEST_F(ReplicaTest, FailoverSurvivesAKilledReplicaWithCorrectBytes) {
  ReplicaGroup group;
  MS_ASSERT_OK(group.AddInProcess("r", dir_->path() + "/store",
                                  SmallConfig(), 3));
  RouterOptions opts;
  opts.backoff_base_seconds = 0;  // keep the test fast
  Router router(&group, opts);

  const auto expected = Direct(kFilterSql);
  MS_ASSERT_OK(router.Execute(FilterRequest(kFilterSql)).status());

  // Kill whichever replica owns this key, then re-issue the same query.
  std::string owner;
  for (const auto& r : router.Stats().replicas) {
    if (r.routed > 0) owner = r.name;
  }
  ASSERT_FALSE(owner.empty());
  MS_ASSERT_OK(group.Find(owner)->Stop());

  auto resp = router.Execute(FilterRequest(kFilterSql)).ValueOrDie();
  EXPECT_EQ(resp.filter.mask_ids, expected.mask_ids);

  const RouterStats stats = router.Stats();
  EXPECT_GE(stats.retries, 1u);
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_EQ(stats.shed, 0u);
  router.Shutdown();
  group.StopAll();
}

TEST_F(ReplicaTest, AllReplicasDownShedsTypedWithoutHanging) {
  ReplicaGroup group;
  MS_ASSERT_OK(group.AddInProcess("r", dir_->path() + "/store",
                                  SmallConfig(), 2));
  RouterOptions opts;
  opts.failure_threshold = 1;
  opts.backoff_base_seconds = 0;
  Router router(&group, opts);
  group.StopAll();

  const auto t0 = std::chrono::steady_clock::now();
  const Status st = router.Execute(FilterRequest(kFilterSql)).status();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  EXPECT_GE(router.Stats().shed, 1u);
  router.Shutdown();
}

TEST_F(ReplicaTest, HealthRecoversThroughHalfOpenProbes) {
  ReplicaGroup group;
  MS_ASSERT_OK(group.AddInProcess("r", dir_->path() + "/store",
                                  SmallConfig(), 2));
  RouterOptions opts;
  opts.failure_threshold = 1;
  opts.probe_interval_seconds = 0.01;
  opts.backoff_base_seconds = 0;
  Router router(&group, opts);

  MS_ASSERT_OK(group.Find("r0")->Stop());
  // The prober marks r0 unhealthy, then half-open; once it restarts, a
  // successful trial brings it back to healthy.
  auto wait_for_health = [&](ReplicaHealth want) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      for (const auto& r : router.Stats().replicas) {
        if (r.name == "r0" && r.health == want) return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  };
  EXPECT_TRUE(wait_for_health(ReplicaHealth::kUnhealthy));
  MS_ASSERT_OK(group.Find("r0")->Start());
  EXPECT_TRUE(wait_for_health(ReplicaHealth::kHealthy));

  const auto expected = Direct(kFilterSql);
  auto resp = router.Execute(FilterRequest(kFilterSql)).ValueOrDie();
  EXPECT_EQ(resp.filter.mask_ids, expected.mask_ids);
  router.Shutdown();
  group.StopAll();
}

TEST_F(ReplicaTest, FaultInjectorParsesSpecs) {
  auto kill = FaultInjector::Parse("kill:r1:40").ValueOrDie();
  EXPECT_EQ(kill.kind, FaultKind::kKill);
  EXPECT_EQ(kill.replica, "r1");
  EXPECT_EQ(kill.at_request, 40u);

  auto error = FaultInjector::Parse("error:r0:10:5").ValueOrDie();
  EXPECT_EQ(error.kind, FaultKind::kError);
  EXPECT_EQ(error.count, 5u);

  auto stall = FaultInjector::Parse("stall:r2:0:20").ValueOrDie();
  EXPECT_EQ(stall.kind, FaultKind::kStall);
  EXPECT_DOUBLE_EQ(stall.stall_ms, 20.0);

  EXPECT_TRUE(FaultInjector::Parse("kill:r1").status().IsInvalidArgument());
  EXPECT_TRUE(FaultInjector::Parse("boom:r1:1").status().IsInvalidArgument());
  EXPECT_TRUE(FaultInjector::Parse("stall:r1:1").status().IsInvalidArgument());
}

TEST_F(ReplicaTest, InjectedErrorsFailOverWithinBudget) {
  ReplicaGroup group;
  MS_ASSERT_OK(group.AddInProcess("r", dir_->path() + "/store",
                                  SmallConfig(), 2));
  FaultInjector injector;
  RouterOptions opts;
  opts.fault_injector = &injector;
  opts.backoff_base_seconds = 0;
  Router router(&group, opts);

  // Find the key's owner, then script one injected error against it: the
  // first attempt fails typed, the failover attempt succeeds elsewhere.
  MS_ASSERT_OK(router.Execute(FilterRequest(kFilterSql)).status());
  std::string owner;
  for (const auto& r : router.Stats().replicas) {
    if (r.routed > 0) owner = r.name;
  }
  Fault fault;
  fault.kind = FaultKind::kError;
  fault.replica = owner;
  fault.at_request = 0;
  fault.count = 1;
  injector.Schedule(fault);

  const auto expected = Direct(kFilterSql);
  auto resp = router.Execute(FilterRequest(kFilterSql)).ValueOrDie();
  EXPECT_EQ(resp.filter.mask_ids, expected.mask_ids);
  EXPECT_EQ(injector.stats().errors_injected, 1u);
  EXPECT_EQ(router.Stats().injected, 1u);
  router.Shutdown();
  group.StopAll();
}

// The fault-injection gate: 2 replicas under concurrent closed-loop load, a
// scripted kill mid-run. Every completed request must carry correct bytes,
// the typed-error count stays within the retry-budget bound (here: zero —
// failover absorbs the kill entirely), and throughput resumes on the
// survivor.
TEST_F(ReplicaTest, ScriptedKillMidLoadKeepsEveryResultCorrect) {
  ReplicaGroup group;
  MS_ASSERT_OK(group.AddInProcess("r", dir_->path() + "/store",
                                  SmallConfig(), 2));
  FaultInjector injector;
  Fault fault;
  fault.kind = FaultKind::kKill;
  fault.replica = "r0";
  fault.at_request = 40;
  injector.Schedule(fault);

  RouterOptions opts;
  opts.fault_injector = &injector;
  opts.failure_threshold = 1;
  opts.backoff_base_seconds = 0;
  opts.max_attempts = 4;
  Router router(&group, opts);

  const std::vector<std::string> sqls = {kFilterSql, kFilterSql2};
  std::vector<FilterResult> expected;
  for (const auto& sql : sqls) expected.push_back(Direct(sql));

  constexpr int kThreads = 4;
  constexpr int kPerThread = 30;
  std::atomic<int> wrong{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const size_t which = static_cast<size_t>(t + i) % sqls.size();
        auto resp = router.Execute(FilterRequest(sqls[which]));
        if (!resp.ok()) {
          ++errors;
          continue;
        }
        if (resp->filter.mask_ids != expected[which].mask_ids) ++wrong;
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(wrong.load(), 0);  // never wrong bytes
  EXPECT_EQ(errors.load(), 0) << "failover must absorb the kill";
  EXPECT_EQ(injector.stats().kills_fired, 1u);
  EXPECT_FALSE(group.Find("r0")->alive());

  // Throughput resumes: the survivor serves new keys immediately.
  const auto expected2 = Direct(kFilterSql2);
  auto resp = router.Execute(FilterRequest(kFilterSql2)).ValueOrDie();
  EXPECT_EQ(resp.filter.mask_ids, expected2.mask_ids);
  EXPECT_GE(router.Stats().succeeded,
            static_cast<uint64_t>(kThreads * kPerThread));
  router.Shutdown();
  group.StopAll();
}

TEST_F(ReplicaTest, AsyncSubmitCompletesHandles) {
  ReplicaGroup group;
  MS_ASSERT_OK(group.AddInProcess("r", dir_->path() + "/store",
                                  SmallConfig(), 2));
  Router router(&group);

  const auto expected = Direct(kFilterSql);
  std::vector<std::shared_ptr<PendingQuery>> pending;
  for (int i = 0; i < 16; ++i) {
    pending.push_back(router.Submit(FilterRequest(kFilterSql)).ValueOrDie());
  }
  for (auto& p : pending) {
    auto resp = p->Wait().ValueOrDie();
    EXPECT_EQ(resp.filter.mask_ids, expected.mask_ids);
  }
  router.Shutdown();
  EXPECT_TRUE(router.Submit(FilterRequest(kFilterSql))
                  .status()
                  .IsUnavailable());
  group.StopAll();
}

TEST_F(ReplicaTest, OnlineMembershipChangeWhileRouting) {
  ReplicaGroup group;
  MS_ASSERT_OK(group.AddInProcess("r", dir_->path() + "/store",
                                  SmallConfig(), 2));
  RouterOptions opts;
  opts.backoff_base_seconds = 0;
  Router router(&group, opts);

  const auto expected = Direct(kFilterSql);
  MS_ASSERT_OK(router.Execute(FilterRequest(kFilterSql)).status());

  // Join a third replica from a snapshot, remove one original, and keep
  // serving correct bytes throughout — the ring follows the membership.
  ASSERT_TRUE(group
                  .AddFromSnapshot(*store_, "joiner",
                                   dir_->path() + "/join2", SmallConfig())
                  .ok());
  auto resp = router.Execute(FilterRequest(kFilterSql)).ValueOrDie();
  EXPECT_EQ(resp.filter.mask_ids, expected.mask_ids);

  MS_ASSERT_OK(group.Remove("r0"));
  for (int i = 0; i < 4; ++i) {
    auto after = router.Execute(FilterRequest(kFilterSql)).ValueOrDie();
    EXPECT_EQ(after.filter.mask_ids, expected.mask_ids);
  }
  router.Shutdown();
  group.StopAll();
}

// RemoteReplica end-to-end: a router whose member speaks the real wire
// protocol to an in-process NetServer, byte-identical to direct execution.
TEST_F(ReplicaTest, RemoteReplicaRoutesOverRealSockets) {
  Catalog catalog;
  DatasetConfig config;
  config.service.num_workers = 2;
  Dataset* ds =
      catalog.Register("main", dir_->path() + "/store", config).ValueOrDie();
  net::NetServerOptions server_opts;
  server_opts.port = 0;
  auto server = net::NetServer::Start(&catalog, server_opts).ValueOrDie();

  ReplicaGroup group;
  net::NetClientOptions client_opts;
  client_opts.recv_timeout_seconds = 10;
  client_opts.max_retries = 2;
  MS_ASSERT_OK(group.Add(std::make_shared<RemoteReplica>(
      "remote0", "127.0.0.1", server->port(), "main", client_opts)));
  RouterOptions opts;
  opts.backoff_base_seconds = 0;
  Router router(&group, opts);

  const auto bound = sql::ParseAndBind(kFilterSql).ValueOrDie();
  const auto expected = ds->session()->Filter(bound.filter).ValueOrDie();
  auto resp = router.Execute(FilterRequest(kFilterSql)).ValueOrDie();
  EXPECT_EQ(resp.filter.mask_ids.size(), expected.mask_ids.size());
  for (size_t i = 0; i < expected.mask_ids.size(); ++i) {
    EXPECT_EQ(resp.filter.mask_ids[i], expected.mask_ids[i]) << "i=" << i;
  }

  // Bound-only requests cannot travel: typed error, not a hang.
  RoutedRequest bare = FilterRequest(kFilterSql);
  bare.sqltext.clear();
  EXPECT_TRUE(group.Find("remote0")
                  ->Execute(bare)
                  .status()
                  .IsInvalidArgument());

  router.Shutdown();
  server->Stop();
  catalog.ShutdownAll();
}

}  // namespace
}  // namespace masksearch
