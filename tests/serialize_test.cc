// Round-trip coverage for common/serialize.h and the Chi / ChiConfig wire
// format: primitives, strings, vectors, reader exhaustion, and
// build -> serialize -> deserialize -> identical bounds on random ROIs.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "masksearch/common/serialize.h"
#include "masksearch/index/bounds.h"
#include "masksearch/index/chi.h"
#include "masksearch/index/chi_builder.h"
#include "masksearch/query/cp.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::BlobMask;

TEST(BufferRoundTripTest, Primitives) {
  BufferWriter w;
  w.PutU8(0xab);
  w.PutU16(0xbeef);
  w.PutU32(0xdeadbeefu);
  w.PutU64(0x0123456789abcdefull);
  w.PutI32(-12345);
  w.PutI64(std::numeric_limits<int64_t>::min());
  w.PutF32(3.5f);
  w.PutF64(-2.25);

  BufferReader r(w.buffer());
  EXPECT_EQ(r.GetU8().ValueOrDie(), 0xab);
  EXPECT_EQ(r.GetU16().ValueOrDie(), 0xbeef);
  EXPECT_EQ(r.GetU32().ValueOrDie(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64().ValueOrDie(), 0x0123456789abcdefull);
  EXPECT_EQ(r.GetI32().ValueOrDie(), -12345);
  EXPECT_EQ(r.GetI64().ValueOrDie(), std::numeric_limits<int64_t>::min());
  EXPECT_EQ(r.GetF32().ValueOrDie(), 3.5f);
  EXPECT_EQ(r.GetF64().ValueOrDie(), -2.25);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BufferRoundTripTest, LittleEndianLayout) {
  BufferWriter w;
  w.PutU32(0x04030201u);
  const std::string& buf = w.buffer();
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0x01);
  EXPECT_EQ(static_cast<uint8_t>(buf[1]), 0x02);
  EXPECT_EQ(static_cast<uint8_t>(buf[2]), 0x03);
  EXPECT_EQ(static_cast<uint8_t>(buf[3]), 0x04);
}

TEST(BufferRoundTripTest, StringsAndVectors) {
  BufferWriter w;
  w.PutString("");
  w.PutString(std::string("bin\0ary", 7));
  w.PutVector(std::vector<uint32_t>{});
  w.PutVector(std::vector<double>{-1.5, 0.0, 2.75});

  BufferReader r(w.buffer());
  EXPECT_EQ(r.GetString().ValueOrDie(), "");
  EXPECT_EQ(r.GetString().ValueOrDie(), std::string("bin\0ary", 7));
  EXPECT_TRUE(r.GetVector<uint32_t>().ValueOrDie().empty());
  EXPECT_EQ(r.GetVector<double>().ValueOrDie(),
            (std::vector<double>{-1.5, 0.0, 2.75}));
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BufferRoundTripTest, ReaderNeverOverReads) {
  BufferWriter w;
  w.PutU16(7);
  BufferReader r(w.buffer());
  EXPECT_FALSE(r.GetU32().ok());  // only 2 bytes available
  EXPECT_EQ(r.GetU16().ValueOrDie(), 7);
  EXPECT_FALSE(r.GetU8().ok());
  EXPECT_FALSE(r.GetString().ok());
  EXPECT_FALSE(r.Skip(1).ok());
}

TEST(BufferRoundTripTest, VectorLengthBombRejected) {
  // A corrupt u64 length must fail cleanly, not allocate.
  BufferWriter w;
  w.PutU64(std::numeric_limits<uint64_t>::max());
  BufferReader r(w.buffer());
  EXPECT_FALSE(r.GetVector<uint32_t>().ok());
}

ChiConfig EquiWidthConfig() {
  ChiConfig cfg;
  cfg.cell_width = 7;   // deliberately not dividing the mask width
  cfg.cell_height = 9;
  cfg.num_bins = 8;
  return cfg;
}

ChiConfig EquiDepthConfig() {
  ChiConfig cfg;
  cfg.cell_width = 8;
  cfg.cell_height = 8;
  cfg.num_bins = 4;
  cfg.custom_edges = {0.1, 0.4, 0.75};
  return cfg;
}

TEST(ChiSerializeTest, ConfigSurvivesRoundTrip) {
  for (const ChiConfig& cfg : {EquiWidthConfig(), EquiDepthConfig()}) {
    Rng rng(99);
    const Mask mask = BlobMask(&rng, 61, 45);
    const Chi chi = BuildChi(mask, cfg);

    BufferWriter w;
    chi.Serialize(&w);
    BufferReader r(w.buffer());
    auto back = Chi::Deserialize(&r);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(r.remaining(), 0u);

    EXPECT_EQ(back->width(), chi.width());
    EXPECT_EQ(back->height(), chi.height());
    EXPECT_TRUE(back->config() == cfg);
    EXPECT_EQ(back->num_boundaries_x(), chi.num_boundaries_x());
    EXPECT_EQ(back->num_boundaries_y(), chi.num_boundaries_y());
    EXPECT_EQ(back->MemoryBytes(), chi.MemoryBytes());
  }
}

TEST(ChiSerializeTest, IdenticalBoundsOnRandomRois) {
  Rng rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    const int32_t w = static_cast<int32_t>(rng.UniformInt(20, 90));
    const int32_t h = static_cast<int32_t>(rng.UniformInt(20, 90));
    const Mask mask = BlobMask(&rng, w, h);
    const ChiConfig cfg = trial % 2 == 0 ? EquiWidthConfig() : EquiDepthConfig();
    const Chi chi = BuildChi(mask, cfg);

    BufferWriter buf;
    chi.Serialize(&buf);
    BufferReader r(buf.buffer());
    auto back = Chi::Deserialize(&r);
    ASSERT_TRUE(back.ok()) << back.status();

    for (int i = 0; i < 25; ++i) {
      const int32_t x0 = static_cast<int32_t>(rng.UniformInt(0, w - 1));
      const int32_t y0 = static_cast<int32_t>(rng.UniformInt(0, h - 1));
      const int32_t x1 = static_cast<int32_t>(rng.UniformInt(x0 + 1, w));
      const int32_t y1 = static_cast<int32_t>(rng.UniformInt(y0 + 1, h));
      const ROI roi(x0, y0, x1, y1);
      const double lv = rng.Uniform(0.0, 0.9);
      const ValueRange range(lv, rng.Uniform(lv + 0.01, 1.0));

      const CpBounds want = ComputeCpBounds(chi, roi, range);
      const CpBounds got = ComputeCpBounds(*back, roi, range);
      EXPECT_EQ(got.lower, want.lower) << roi.ToString();
      EXPECT_EQ(got.upper, want.upper) << roi.ToString();

      // And both must bracket the exact CP value (§3.2 guarantee).
      const int64_t exact = CountPixels(mask, roi, range);
      EXPECT_LE(got.lower, exact);
      EXPECT_GE(got.upper, exact);
    }
  }
}

TEST(ChiSerializeTest, CorruptHeaderRejected) {
  Rng rng(7);
  const Chi chi = BuildChi(BlobMask(&rng, 32, 32), EquiWidthConfig());
  BufferWriter w;
  chi.Serialize(&w);
  std::string bytes = w.buffer();

  // Zero out the width: header validation must fire.
  for (int i = 0; i < 4; ++i) bytes[i] = 0;
  BufferReader r(bytes);
  EXPECT_FALSE(Chi::Deserialize(&r).ok());

  // Truncations anywhere must fail cleanly.
  const std::string& full = w.buffer();
  for (size_t cut : {size_t{0}, size_t{3}, size_t{17}, full.size() - 1}) {
    BufferReader t(full.data(), cut);
    EXPECT_FALSE(Chi::Deserialize(&t).ok()) << "cut at " << cut;
  }
}

}  // namespace
}  // namespace masksearch
