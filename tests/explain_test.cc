// Tests for the EXPLAIN module.

#include <gtest/gtest.h>

#include "masksearch/exec/explain.h"
#include "masksearch/sql/binder.h"

namespace masksearch {
namespace {

TEST(ExplainTest, SelectionVariants) {
  Selection all;
  EXPECT_NE(ExplainSelection(all).find("all masks"), std::string::npos);

  Selection narrow;
  narrow.model_ids = {1, 2};
  narrow.mask_types = {MaskType::kSaliencyMap};
  narrow.predicted_labels = {7};
  narrow.mask_ids = {1, 2, 3};
  const std::string s = ExplainSelection(narrow);
  EXPECT_NE(s.find("model_id IN {1,2}"), std::string::npos);
  EXPECT_NE(s.find("saliency_map"), std::string::npos);
  EXPECT_NE(s.find("predicted_label"), std::string::npos);
  EXPECT_NE(s.find("3 masks"), std::string::npos);
  EXPECT_NE(s.find("catalog only"), std::string::npos);
}

TEST(ExplainTest, FilterPlanMentionsStages) {
  auto bound = sql::ParseAndBind(
      "SELECT mask_id FROM masks WHERE CP(mask, object, (0.8, 1.0)) > 100;");
  ASSERT_TRUE(bound.ok());
  const std::string s = ExplainFilter(bound->filter);
  EXPECT_NE(s.find("filter stage"), std::string::npos);
  EXPECT_NE(s.find("verification stage"), std::string::npos);
  EXPECT_NE(s.find("CP#0"), std::string::npos);
}

TEST(ExplainTest, TopKPlanMentionsRunningThreshold) {
  auto bound = sql::ParseAndBind(
      "SELECT mask_id FROM masks ORDER BY CP(mask, -, (0.5, 1.0)) ASC "
      "LIMIT 7;");
  ASSERT_TRUE(bound.ok());
  const std::string s = ExplainTopK(bound->topk);
  EXPECT_NE(s.find("limit 7"), std::string::npos);
  EXPECT_NE(s.find("ASC"), std::string::npos);
  EXPECT_NE(s.find("Eq. 15"), std::string::npos);
}

TEST(ExplainTest, AggregationPlan) {
  auto bound = sql::ParseAndBind(
      "SELECT image_id, SUM(CP(mask, object, (0.5, 1.0))) AS s FROM masks "
      "GROUP BY image_id HAVING s > 10;");
  ASSERT_TRUE(bound.ok());
  const std::string s = ExplainAggregation(bound->agg);
  EXPECT_NE(s.find("SUM"), std::string::npos);
  EXPECT_NE(s.find("GROUP BY image_id"), std::string::npos);
  EXPECT_NE(s.find("HAVING"), std::string::npos);
}

TEST(ExplainTest, MaskAggPlan) {
  auto bound = sql::ParseAndBind(
      "SELECT image_id, CP(INTERSECT(mask > 0.8), object, (0.8, 1.0)) AS s "
      "FROM masks GROUP BY image_id ORDER BY s DESC LIMIT 5;");
  ASSERT_TRUE(bound.ok());
  const std::string s = ExplainMaskAgg(bound->mask_agg);
  EXPECT_NE(s.find("INTERSECT"), std::string::npos);
  EXPECT_NE(s.find("derived"), std::string::npos);
}

TEST(ExplainTest, StatsSummary) {
  ExecStats stats;
  stats.masks_targeted = 100;
  stats.pruned = 80;
  stats.accepted_by_bounds = 10;
  stats.candidates = 10;
  stats.masks_loaded = 10;
  stats.seconds = 0.25;
  const std::string s = SummarizeStats(stats);
  EXPECT_NE(s.find("100 targeted"), std::string::npos);
  EXPECT_NE(s.find("10 loaded"), std::string::npos);
  EXPECT_NE(s.find("10.00%"), std::string::npos);
}

}  // namespace
}  // namespace masksearch
