// Edge-case coverage for the SQL front end: precedence, parenthesization,
// boolean composition, and malformed-input robustness.

#include <gtest/gtest.h>

#include "masksearch/sql/binder.h"
#include "masksearch/sql/parser.h"

namespace masksearch {
namespace sql {
namespace {

TEST(SqlEdgeTest, ArithmeticPrecedence) {
  // 1 + 2 * 3 parses as 1 + (2 * 3).
  auto stmt = ParseSelect("SELECT 1 + 2 * 3 FROM masks");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->items[0].expr->ToString(),
            "(1.000000 + (2.000000 * 3.000000))");
}

TEST(SqlEdgeTest, ParenthesesOverridePrecedence) {
  auto stmt = ParseSelect("SELECT (1 + 2) * 3 FROM masks");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->items[0].expr->ToString(),
            "((1.000000 + 2.000000) * 3.000000)");
}

TEST(SqlEdgeTest, BooleanPrecedenceAndBindsTighterThanOr) {
  auto q = ParseAndBind(
      "SELECT * FROM masks WHERE CP(mask, -, (0.1, 0.2)) > 1 OR "
      "CP(mask, -, (0.3, 0.4)) > 2 AND CP(mask, -, (0.5, 0.6)) > 3;");
  ASSERT_TRUE(q.ok()) << q.status();
  // (A) OR (B AND C): A alone satisfies.
  EXPECT_TRUE(q->filter.predicate.EvalExact({10, 0, 0}));
  EXPECT_FALSE(q->filter.predicate.EvalExact({0, 10, 0}));
  EXPECT_TRUE(q->filter.predicate.EvalExact({0, 10, 10}));
}

TEST(SqlEdgeTest, NotPredicate) {
  auto q = ParseAndBind(
      "SELECT * FROM masks WHERE NOT CP(mask, -, (0.1, 0.9)) > 100;");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->filter.predicate.EvalExact({50}));
  EXPECT_FALSE(q->filter.predicate.EvalExact({150}));
}

TEST(SqlEdgeTest, UnaryMinusInThreshold) {
  auto q = ParseAndBind(
      "SELECT * FROM masks WHERE CP(mask, -, (0.1, 0.9)) > -5;");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->filter.predicate.EvalExact({0}));
}

TEST(SqlEdgeTest, CaseInsensitiveKeywords) {
  auto stmt = ParseSelect(
      "select mask_id from masks where cp(mask, object, (0.1, 0.2)) > 1 "
      "order by cp(mask, object, (0.1, 0.2)) desc limit 3;");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->limit, 3);
}

TEST(SqlEdgeTest, WhitespaceAndCommentsAnywhere) {
  auto q = ParseAndBind(
      "SELECT mask_id -- projection\n"
      "FROM masks -- the view\n"
      "WHERE CP(mask, -- the mask\n"
      " object, (0.5, 1.0)) > 7;");
  ASSERT_TRUE(q.ok()) << q.status();
}

TEST(SqlEdgeTest, MalformedInputsRejectedCleanly) {
  const char* bad[] = {
      "SELECT",
      "SELECT * FROM",
      "SELECT * FROM masks WHERE",
      "SELECT * FROM masks WHERE CP(mask, object) > 1;",       // missing range
      "SELECT * FROM masks WHERE CP(mask, object, (0.1)) > 1;", // half range
      "SELECT * FROM masks WHERE CP(mask, object, (0.1, 0.2) > 1;",  // parens
      "SELECT * FROM masks WHERE CP(, object, (0.1, 0.2)) > 1;",
      "SELECT * FROM masks GROUP BY;",
      "SELECT * FROM masks ORDER BY;",
      "SELECT * FROM masks LIMIT;",
      "SELECT * FROM masks WHERE model_id IN ();",
      "SELECT * FROM masks; SELECT * FROM masks;",  // trailing statement
  };
  for (const char* sql : bad) {
    auto r = ParseAndBind(sql);
    EXPECT_FALSE(r.ok()) << "should reject: " << sql;
  }
}

TEST(SqlEdgeTest, DeepParenthesesDoNotOverflow) {
  std::string sql = "SELECT * FROM masks WHERE ";
  for (int i = 0; i < 40; ++i) sql += "(";
  sql += "CP(mask, -, (0.1, 0.9)) > 1";
  for (int i = 0; i < 40; ++i) sql += ")";
  sql += ";";
  auto q = ParseAndBind(sql);
  EXPECT_TRUE(q.ok()) << q.status();
}

TEST(SqlEdgeTest, SelfReferentialAliasRejected) {
  // An alias that resolves to itself must not loop forever.
  auto q = ParseAndBind("SELECT r AS r FROM masks ORDER BY r DESC LIMIT 3;");
  EXPECT_FALSE(q.ok());
}

TEST(SqlEdgeTest, MultipleCpTermsShareTermTable) {
  auto q = ParseAndBind(
      "SELECT * FROM masks WHERE "
      "CP(mask, object, (0.1, 0.5)) + CP(mask, object, (0.5, 0.9)) > 10 "
      "AND CP(mask, -, (0.1, 0.9)) < 500;");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->filter.terms.size(), 3u);
  EXPECT_TRUE(q->filter.predicate.EvalExact({6, 5, 100}));
  EXPECT_FALSE(q->filter.predicate.EvalExact({6, 5, 600}));
}

TEST(SqlEdgeTest, GroupByTopKAscending) {
  auto q = ParseAndBind(
      "SELECT image_id, MIN(CP(mask, object, (0.2, 0.8))) AS m FROM masks "
      "GROUP BY image_id ORDER BY m ASC LIMIT 4;");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->agg.op, ScalarAggOp::kMin);
  EXPECT_FALSE(q->agg.descending);
}

TEST(SqlEdgeTest, UnionAndAverageMaskAggs) {
  auto u = ParseAndBind(
      "SELECT image_id, CP(UNION(mask > 0.5), -, (0.5, 1.0)) AS s FROM masks "
      "GROUP BY image_id ORDER BY s DESC LIMIT 2;");
  ASSERT_TRUE(u.ok()) << u.status();
  EXPECT_EQ(u->mask_agg.op, MaskAggOp::kUnionThreshold);

  auto a = ParseAndBind(
      "SELECT image_id, CP(AVERAGE(mask), -, (0.5, 1.0)) AS s FROM masks "
      "GROUP BY image_id ORDER BY s DESC LIMIT 2;");
  ASSERT_TRUE(a.ok()) << a.status();
  EXPECT_EQ(a->mask_agg.op, MaskAggOp::kAverage);

  // Malformed MASK_AGG arguments.
  EXPECT_FALSE(ParseAndBind("SELECT image_id, CP(INTERSECT(mask), -, (0,1)) "
                            "AS s FROM masks GROUP BY image_id ORDER BY s "
                            "DESC LIMIT 2;")
                   .ok());
  EXPECT_FALSE(ParseAndBind("SELECT image_id, CP(AVERAGE(mask > 0.5), -, "
                            "(0,1)) AS s FROM masks GROUP BY image_id ORDER "
                            "BY s DESC LIMIT 2;")
                   .ok());
}

}  // namespace
}  // namespace sql
}  // namespace masksearch
