// Cross-cutting property tests: the filter–verification engine must return
// exactly the brute-force answer for EVERY combination of index
// configuration (granularity, bucket scheme), storage kind (raw /
// compressed), and query shape. This is the correctness guarantee of §3.2
// exercised as a parameterized sweep.

#include <gtest/gtest.h>

#include "masksearch/baselines/full_scan.h"
#include "masksearch/exec/session.h"
#include "masksearch/index/chi_builder.h"
#include "masksearch/workload/query_gen.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::TempDir;

struct SweepParam {
  int32_t cell;
  int32_t bins;
  bool equi_depth;
  StorageKind storage;

  friend std::ostream& operator<<(std::ostream& os, const SweepParam& p) {
    return os << "cell" << p.cell << "_bins" << p.bins
              << (p.equi_depth ? "_eqdepth" : "_eqwidth")
              << (p.storage == StorageKind::kCompressed ? "_compressed"
                                                        : "_raw");
  }
};

class EnginePropertyTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  void SetUp() override {
    const SweepParam p = GetParam();
    dir_ = std::make_unique<TempDir>("engine_prop");

    // Build a store in the requested storage kind.
    MaskStoreWriter::Options wopts;
    wopts.kind = p.storage;
    auto writer = MaskStoreWriter::Create(dir_->path(), wopts).ValueOrDie();
    Rng rng(91);
    SaliencySpec spec;
    spec.width = 40;
    spec.height = 40;
    for (int64_t img = 0; img < 15; ++img) {
      const ROI box = GenerateObjectBox(&rng, 40, 40);
      const bool dispersed = rng.NextBool(0.3);
      const auto blobs = SampleSaliencyBlobs(&rng, spec, box, dispersed);
      for (int32_t model = 0; model < 2; ++model) {
        const auto mb =
            model == 0 ? blobs : JitterSaliencyBlobs(&rng, blobs, 0.25, 40, 40);
        MaskMeta meta;
        meta.image_id = img;
        meta.model_id = model;
        meta.object_box = box;
        writer->Append(meta, RenderSaliencyMask(&rng, spec, mb)).ValueOrDie();
      }
    }
    writer->Finish().CheckOK();
    store_ = MaskStore::Open(dir_->path()).ValueOrDie();

    ChiConfig cfg;
    cfg.cell_width = cfg.cell_height = p.cell;
    cfg.num_bins = p.bins;
    if (p.equi_depth) {
      cfg.custom_edges =
          ComputeEquiDepthEdges(*store_, p.bins, 16).ValueOrDie();
    }
    index_ = std::make_unique<IndexManager>(store_->num_masks(), cfg);
    MS_ASSERT_OK(index_->BuildAll(*store_));
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<MaskStore> store_;
  std::unique_ptr<IndexManager> index_;
};

TEST_P(EnginePropertyTest, FilterMatchesReference) {
  FullScanBaseline reference(store_.get());
  Rng rng(17);
  QueryGenOptions qopts;
  qopts.threshold_fraction_max = 0.2;  // keep results mixed
  for (int i = 0; i < 12; ++i) {
    const FilterQuery q = GenerateFilterQuery(&rng, *store_, qopts);
    auto got = ExecuteFilter(*store_, index_.get(), q);
    ASSERT_TRUE(got.ok()) << got.status();
    auto want = reference.Filter(q);
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(got->mask_ids, want->mask_ids) << "query " << i;
    // Accounting invariant: every targeted mask has exactly one outcome.
    ASSERT_EQ(got->stats.pruned + got->stats.accepted_by_bounds +
                  got->stats.candidates,
              got->stats.masks_targeted);
  }
}

TEST_P(EnginePropertyTest, TopKMatchesReference) {
  FullScanBaseline reference(store_.get());
  Rng rng(18);
  for (int i = 0; i < 10; ++i) {
    const TopKQuery q = GenerateTopKQuery(&rng, *store_);
    auto got = ExecuteTopK(*store_, index_.get(), q);
    ASSERT_TRUE(got.ok()) << got.status();
    auto want = reference.TopK(q);
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(got->items.size(), want->items.size());
    for (size_t j = 0; j < got->items.size(); ++j) {
      ASSERT_EQ(got->items[j].mask_id, want->items[j].mask_id)
          << "query " << i << " rank " << j;
    }
  }
}

TEST_P(EnginePropertyTest, AggregationMatchesReference) {
  FullScanBaseline reference(store_.get());
  Rng rng(19);
  for (int i = 0; i < 8; ++i) {
    const AggregationQuery q = GenerateAggQuery(&rng, *store_);
    auto got = ExecuteAggregation(*store_, index_.get(), q);
    ASSERT_TRUE(got.ok()) << got.status();
    auto want = reference.Aggregate(q);
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(got->groups.size(), want->groups.size());
    for (size_t j = 0; j < got->groups.size(); ++j) {
      ASSERT_EQ(got->groups[j].group, want->groups[j].group);
      ASSERT_NEAR(got->groups[j].value, want->groups[j].value, 1e-9);
    }
  }
}

TEST_P(EnginePropertyTest, MaskAggMatchesReference) {
  FullScanBaseline reference(store_.get());
  MaskAggQuery q;
  q.op = MaskAggOp::kIntersectThreshold;
  q.agg_threshold = 0.6;
  q.term.roi_source = RoiSource::kObjectBox;
  q.term.range = ValueRange(0.6, 1.0);
  q.k = 6;
  DerivedIndexCache cache(index_->config());
  auto got = ExecuteMaskAgg(*store_, index_.get(), &cache, q);
  ASSERT_TRUE(got.ok()) << got.status();
  auto want = reference.MaskAggregate(q);
  ASSERT_TRUE(want.ok());
  ASSERT_EQ(got->groups.size(), want->groups.size());
  for (size_t j = 0; j < got->groups.size(); ++j) {
    ASSERT_EQ(got->groups[j].group, want->groups[j].group);
    ASSERT_DOUBLE_EQ(got->groups[j].value, want->groups[j].value);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnginePropertyTest,
    ::testing::Values(
        SweepParam{4, 4, false, StorageKind::kRawFloat32},
        SweepParam{8, 16, false, StorageKind::kRawFloat32},
        SweepParam{16, 8, false, StorageKind::kRawFloat32},
        SweepParam{7, 5, false, StorageKind::kRawFloat32},   // ragged
        SweepParam{8, 8, true, StorageKind::kRawFloat32},    // equi-depth
        SweepParam{8, 16, false, StorageKind::kCompressed},  // codec path
        SweepParam{8, 8, true, StorageKind::kCompressed}),
    [](const ::testing::TestParamInfo<SweepParam>& param_info) {
      std::ostringstream os;
      os << param_info.param;
      return os.str();
    });

}  // namespace
}  // namespace masksearch
