// Unit tests for IndexManager and CHI persistence (§3.2, §3.6).

#include <gtest/gtest.h>

#include "masksearch/index/chi_builder.h"
#include "masksearch/index/chi_store.h"
#include "masksearch/index/index_manager.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::MakeStore;
using testing_util::RandomMask;
using testing_util::TempDir;

ChiConfig SmallConfig() {
  ChiConfig cfg;
  cfg.cell_width = 8;
  cfg.cell_height = 8;
  cfg.num_bins = 8;
  return cfg;
}

TEST(IndexManagerTest, StartsEmpty) {
  IndexManager mgr(10, SmallConfig());
  EXPECT_EQ(mgr.num_masks(), 10);
  EXPECT_EQ(mgr.num_built(), 0u);
  EXPECT_EQ(mgr.Get(3), nullptr);
  EXPECT_FALSE(mgr.Has(3));
  EXPECT_EQ(mgr.MemoryBytes(), 0u);
}

TEST(IndexManagerTest, PutAndGet) {
  IndexManager mgr(4, SmallConfig());
  Rng rng(1);
  const Mask m = RandomMask(&rng, 16, 16);
  mgr.Put(2, BuildChi(m, SmallConfig()));
  EXPECT_TRUE(mgr.Has(2));
  EXPECT_EQ(mgr.num_built(), 1u);
  ASSERT_NE(mgr.Get(2), nullptr);
  EXPECT_EQ(mgr.Get(2)->width(), 16);
  EXPECT_GT(mgr.MemoryBytes(), 0u);
}

TEST(IndexManagerTest, FirstPutWins) {
  IndexManager mgr(2, SmallConfig());
  Rng rng(2);
  const Mask a = RandomMask(&rng, 16, 16);
  mgr.Put(0, BuildChi(a, SmallConfig()));
  const Chi* first = mgr.Get(0);
  const Mask b = RandomMask(&rng, 8, 8);
  mgr.Put(0, BuildChi(b, SmallConfig()));
  EXPECT_EQ(mgr.Get(0), first);  // pointer unchanged
  EXPECT_EQ(mgr.num_built(), 1u);
}

TEST(IndexManagerTest, OutOfRangeIdsAreSafe) {
  IndexManager mgr(2, SmallConfig());
  EXPECT_EQ(mgr.Get(-1), nullptr);
  EXPECT_EQ(mgr.Get(5), nullptr);
  Rng rng(3);
  mgr.Put(99, BuildChi(RandomMask(&rng, 4, 4), SmallConfig()));  // ignored
  EXPECT_EQ(mgr.num_built(), 0u);
}

TEST(IndexManagerTest, BuildAllIndexesEveryMask) {
  TempDir dir("idx");
  auto store = MakeStore(dir.path(), /*num_images=*/6, /*num_models=*/2, 32, 32);
  IndexManager mgr(store->num_masks(), SmallConfig());
  MS_ASSERT_OK(mgr.BuildAll(*store));
  EXPECT_EQ(mgr.num_built(), 12u);
  for (MaskId id = 0; id < store->num_masks(); ++id) {
    EXPECT_TRUE(mgr.Has(id));
  }
  // BuildAll loads each mask exactly once.
  EXPECT_EQ(store->masks_loaded(), 12u);
}

TEST(IndexManagerTest, BuildAllWithThreadPool) {
  TempDir dir("idx");
  auto store = MakeStore(dir.path(), 8, 2, 24, 24);
  ThreadPool pool(4);
  IndexManager mgr(store->num_masks(), SmallConfig());
  MS_ASSERT_OK(mgr.BuildAll(*store, &pool));
  EXPECT_EQ(mgr.num_built(), 16u);
}

TEST(IndexManagerTest, BuildAllSizeMismatchRejected) {
  TempDir dir("idx");
  auto store = MakeStore(dir.path(), 3, 1, 16, 16);
  IndexManager mgr(99, SmallConfig());
  EXPECT_TRUE(mgr.BuildAll(*store).IsInvalidArgument());
}

TEST(IndexManagerTest, SaveLoadRoundTrip) {
  TempDir dir("idx");
  auto store = MakeStore(dir.path(), 5, 1, 20, 20);
  IndexManager mgr(store->num_masks(), SmallConfig());
  MS_ASSERT_OK(mgr.BuildAll(*store));
  const std::string path = dir.file("chi.idx");
  MS_ASSERT_OK(mgr.SaveToFile(path));

  IndexManager restored(store->num_masks(), SmallConfig());
  MS_ASSERT_OK(restored.LoadFromFile(path));
  EXPECT_EQ(restored.num_built(), 5u);
  for (MaskId id = 0; id < 5; ++id) {
    const Chi* a = mgr.Get(id);
    const Chi* b = restored.Get(id);
    ASSERT_NE(b, nullptr);
    for (int32_t bj = 0; bj < a->num_boundaries_y(); ++bj) {
      for (int32_t bi = 0; bi < a->num_boundaries_x(); ++bi) {
        for (int32_t bin = 0; bin <= SmallConfig().num_bins; ++bin) {
          ASSERT_EQ(a->H(bi, bj, bin), b->H(bi, bj, bin));
        }
      }
    }
  }
}

TEST(IndexManagerTest, PartialSaveLoad) {
  // Incremental sessions persist only the CHIs built so far (§3.6).
  TempDir dir("idx");
  auto store = MakeStore(dir.path(), 4, 1, 16, 16);
  IndexManager mgr(4, SmallConfig());
  mgr.BuildAndPut(1, store->LoadMask(1).ValueOrDie());
  mgr.BuildAndPut(3, store->LoadMask(3).ValueOrDie());
  const std::string path = dir.file("partial.idx");
  MS_ASSERT_OK(mgr.SaveToFile(path));

  IndexManager restored(4, SmallConfig());
  MS_ASSERT_OK(restored.LoadFromFile(path));
  EXPECT_EQ(restored.num_built(), 2u);
  EXPECT_FALSE(restored.Has(0));
  EXPECT_TRUE(restored.Has(1));
  EXPECT_FALSE(restored.Has(2));
  EXPECT_TRUE(restored.Has(3));
}

TEST(IndexManagerTest, LoadRejectsConfigMismatch) {
  TempDir dir("idx");
  auto store = MakeStore(dir.path(), 2, 1, 16, 16);
  IndexManager mgr(2, SmallConfig());
  MS_ASSERT_OK(mgr.BuildAll(*store));
  const std::string path = dir.file("chi.idx");
  MS_ASSERT_OK(mgr.SaveToFile(path));

  ChiConfig other = SmallConfig();
  other.num_bins = 4;
  IndexManager mismatched(2, other);
  EXPECT_TRUE(mismatched.LoadFromFile(path).IsInvalidArgument());

  IndexManager wrong_count(3, SmallConfig());
  EXPECT_TRUE(wrong_count.LoadFromFile(path).IsInvalidArgument());
}

TEST(IndexManagerTest, AttachFileLoadsOnDemand) {
  TempDir dir("idx");
  auto store = MakeStore(dir.path(), 6, 1, 20, 20);
  const std::string path = dir.file("ondisk.chi");
  {
    IndexManager mgr(6, SmallConfig());
    MS_ASSERT_OK(mgr.BuildAll(*store));
    MS_ASSERT_OK(mgr.SaveToFile(path));
  }

  IndexManager lazy(6, SmallConfig());
  MS_ASSERT_OK(lazy.AttachFile(path));
  EXPECT_EQ(lazy.num_built(), 0u);  // nothing resident yet
  EXPECT_FALSE(lazy.IsResident(2));

  // First access loads from disk and makes the CHI resident.
  const Chi* chi = lazy.Get(2);
  ASSERT_NE(chi, nullptr);
  EXPECT_TRUE(lazy.IsResident(2));
  EXPECT_EQ(lazy.num_built(), 1u);
  EXPECT_GT(lazy.attached_bytes_loaded(), 0u);
  // Second access is the resident fast path (same pointer).
  EXPECT_EQ(lazy.Get(2), chi);

  // Loaded CHIs are identical to the originals.
  IndexManager eager(6, SmallConfig());
  MS_ASSERT_OK(eager.LoadFromFile(path));
  const Chi* want = eager.Get(2);
  for (int32_t bj = 0; bj < want->num_boundaries_y(); ++bj) {
    for (int32_t bi = 0; bi < want->num_boundaries_x(); ++bi) {
      for (int32_t bin = 0; bin <= SmallConfig().num_bins; ++bin) {
        ASSERT_EQ(chi->H(bi, bj, bin), want->H(bi, bj, bin));
      }
    }
  }
}

TEST(IndexManagerTest, AttachFilePartialSet) {
  TempDir dir("idx");
  auto store = MakeStore(dir.path(), 4, 1, 16, 16);
  const std::string path = dir.file("partial.chi");
  {
    IndexManager mgr(4, SmallConfig());
    mgr.BuildAndPut(1, store->LoadMask(1).ValueOrDie());
    MS_ASSERT_OK(mgr.SaveToFile(path));
  }
  IndexManager lazy(4, SmallConfig());
  MS_ASSERT_OK(lazy.AttachFile(path));
  EXPECT_EQ(lazy.Get(0), nullptr);   // absent from the file
  EXPECT_NE(lazy.Get(1), nullptr);   // loaded on demand
}

TEST(IndexManagerTest, AttachFileValidatesConfigAndCount) {
  TempDir dir("idx");
  auto store = MakeStore(dir.path(), 3, 1, 16, 16);
  const std::string path = dir.file("x.chi");
  IndexManager mgr(3, SmallConfig());
  MS_ASSERT_OK(mgr.BuildAll(*store));
  MS_ASSERT_OK(mgr.SaveToFile(path));

  ChiConfig other = SmallConfig();
  other.num_bins = 2;
  IndexManager wrong_cfg(3, other);
  EXPECT_TRUE(wrong_cfg.AttachFile(path).IsInvalidArgument());
  IndexManager wrong_count(5, SmallConfig());
  EXPECT_TRUE(wrong_count.AttachFile(path).IsInvalidArgument());
  IndexManager missing(3, SmallConfig());
  EXPECT_FALSE(missing.AttachFile(dir.file("nope.chi")).ok());
}

TEST(IndexManagerTest, EquiDepthEdgesFromStore) {
  TempDir dir("idx");
  auto store = MakeStore(dir.path(), 8, 1, 32, 32);
  auto edges = ComputeEquiDepthEdges(*store, 8, /*sample_masks=*/8);
  ASSERT_TRUE(edges.ok()) << edges.status();
  ASSERT_EQ(edges->size(), 7u);
  double prev = 0.0;
  for (double e : *edges) {
    EXPECT_GT(e, prev);
    EXPECT_LT(e, 1.0);
    prev = e;
  }
  // An equi-depth index round-trips through persistence like any other.
  ChiConfig cfg = SmallConfig();
  cfg.custom_edges = *edges;
  cfg.num_bins = 8;
  IndexManager mgr(store->num_masks(), cfg);
  MS_ASSERT_OK(mgr.BuildAll(*store));
  const std::string path = dir.file("ed.idx");
  MS_ASSERT_OK(mgr.SaveToFile(path));
  IndexManager restored(store->num_masks(), cfg);
  MS_ASSERT_OK(restored.LoadFromFile(path));
  EXPECT_EQ(restored.num_built(), 8u);
}

TEST(IndexManagerTest, EquiDepthEdgesValidation) {
  TempDir dir("idx");
  auto store = MakeStore(dir.path(), 2, 1, 16, 16);
  EXPECT_TRUE(ComputeEquiDepthEdges(*store, 1).status().IsInvalidArgument());
}

TEST(ChiStoreTest, EmptySetRoundTrip) {
  TempDir dir("idx");
  const std::string path = dir.file("empty.idx");
  MS_ASSERT_OK(SaveChiSet(path, SmallConfig(), {nullptr, nullptr}));
  auto set = LoadChiSet(path);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->chis.size(), 2u);
  EXPECT_EQ(set->num_present(), 0u);
}

TEST(ChiStoreTest, CorruptFileRejected) {
  TempDir dir("idx");
  const std::string path = dir.file("bad.idx");
  MS_ASSERT_OK(WriteFile(path, "this is not a chi store"));
  EXPECT_TRUE(LoadChiSet(path).status().IsCorruption());
}

TEST(IndexManagerTest, ConcurrentPutsAreSafe) {
  IndexManager mgr(64, SmallConfig());
  Rng rng(9);
  const Mask m = RandomMask(&rng, 16, 16);
  const Chi chi = BuildChi(m, SmallConfig());
  ThreadPool pool(4);
  ParallelFor(&pool, 256, [&](size_t i) {
    mgr.Put(static_cast<MaskId>(i % 64), Chi(chi));
  });
  EXPECT_EQ(mgr.num_built(), 64u);
}

}  // namespace
}  // namespace masksearch
