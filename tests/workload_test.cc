// Tests for the synthetic data generators and §4.3/§4.5 workload machinery.

#include <gtest/gtest.h>

#include <set>

#include "masksearch/query/cp.h"
#include "masksearch/workload/datasets.h"
#include "masksearch/workload/query_gen.h"
#include "masksearch/workload/workload_gen.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::TempDir;

TEST(SyntheticTest, ObjectBoxWithinImage) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const ROI box = GenerateObjectBox(&rng, 224, 224);
    EXPECT_GE(box.x0, 0);
    EXPECT_GE(box.y0, 0);
    EXPECT_LE(box.x1, 224);
    EXPECT_LE(box.y1, 224);
    EXPECT_GT(box.Area(), 0);
  }
}

TEST(SyntheticTest, SaliencyMaskDomainAndShape) {
  Rng rng(2);
  SaliencySpec spec;
  spec.width = 64;
  spec.height = 48;
  const ROI box = GenerateObjectBox(&rng, 64, 48);
  const Mask m = GenerateSaliencyMask(&rng, spec, box, false);
  EXPECT_EQ(m.width(), 64);
  EXPECT_EQ(m.height(), 48);
  for (float v : m.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(SyntheticTest, FocusedMasksConcentrateOnObject) {
  // Averaged over many images, focused masks put a larger share of their
  // salient pixels inside the object box than dispersed masks do.
  Rng rng(3);
  SaliencySpec spec;
  spec.width = 96;
  spec.height = 96;
  double focused_ratio = 0, dispersed_ratio = 0;
  const int n = 30;
  for (int i = 0; i < n; ++i) {
    const ROI box = GenerateObjectBox(&rng, 96, 96);
    const Mask focused = GenerateSaliencyMask(&rng, spec, box, false);
    const Mask dispersed = GenerateSaliencyMask(&rng, spec, box, true);
    const ValueRange salient(0.7, 1.0);
    const auto ratio = [&](const Mask& m) {
      const double inside = static_cast<double>(CountPixels(m, box, salient));
      const double total = static_cast<double>(CountPixels(m, salient)) + 1;
      return inside / total;
    };
    focused_ratio += ratio(focused);
    dispersed_ratio += ratio(dispersed);
  }
  EXPECT_GT(focused_ratio / n, dispersed_ratio / n + 0.2);
}

TEST(SyntheticTest, CorrelatedModelsShareStructure) {
  // A jittered re-render of the same blobs stays closer to the original than
  // an independently sampled mask.
  Rng rng(4);
  SaliencySpec spec;
  spec.width = 64;
  spec.height = 64;
  const ROI box = GenerateObjectBox(&rng, 64, 64);
  const auto blobs = SampleSaliencyBlobs(&rng, spec, box, false);
  const Mask a = RenderSaliencyMask(&rng, spec, blobs);
  const Mask b = RenderSaliencyMask(
      &rng, spec, JitterSaliencyBlobs(&rng, blobs, 0.25, 64, 64));
  const Mask c = GenerateSaliencyMask(&rng, spec, box, false);
  double dist_b = 0, dist_c = 0;
  for (size_t i = 0; i < a.data().size(); ++i) {
    dist_b += std::abs(a.data()[i] - b.data()[i]);
    dist_c += std::abs(a.data()[i] - c.data()[i]);
  }
  EXPECT_LT(dist_b, dist_c);
}

TEST(SyntheticTest, HighValueRangesPopulatedForEveryModel) {
  // Regression test: jittered models keep the same pixel-value distribution,
  // so (0.8, 1.0) queries remain non-degenerate on model 1 (a linear blend
  // of two maps would cap values at the correlation weight).
  testing_util::TempDir dir("hv");
  auto store = testing_util::MakeStore(dir.path(), 40, 2, 64, 64, 17);
  int64_t high[2] = {0, 0};
  for (MaskId id = 0; id < store->num_masks(); ++id) {
    const Mask m = store->LoadMask(id).ValueOrDie();
    high[store->meta(id).model_id] += CountPixels(m, ValueRange(0.8, 1.0));
  }
  EXPECT_GT(high[1], 0);
  // Jittered models keep comparable high-value mass (a value blend would
  // collapse model 1 to near zero).
  EXPECT_GT(high[1] * 3, high[0]);
  EXPECT_GT(high[0] * 3, high[1]);
}

TEST(SyntheticTest, SegmentationMaskHighInsideObject) {
  Rng rng(5);
  SaliencySpec spec;
  spec.width = 64;
  spec.height = 64;
  const ROI box(16, 16, 48, 48);
  const Mask m = GenerateSegmentationMask(&rng, spec, box);
  // Center of the object is near 1; far corner is near 0.
  EXPECT_GT(m.at(32, 32), 0.7f);
  EXPECT_LT(m.at(1, 1), 0.2f);
}

TEST(QueryGenTest, ValueRangeOnGrid) {
  Rng rng(6);
  QueryGenOptions opts;
  for (int i = 0; i < 200; ++i) {
    const ValueRange r = RandomValueRange(&rng, opts);
    EXPECT_LT(r.lv, r.uv);
    EXPECT_GE(r.lv, 0.1 - 1e-9);
    EXPECT_LE(r.uv, 0.9 + 1e-9);
    // On the 0.1 grid.
    const double klv = r.lv * 10, kuv = r.uv * 10;
    EXPECT_NEAR(klv, std::round(klv), 1e-9);
    EXPECT_NEAR(kuv, std::round(kuv), 1e-9);
  }
}

TEST(QueryGenTest, RandomRectangleNonEmptyAndInBounds) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const ROI r = RandomRectangle(&rng, 50, 30);
    EXPECT_FALSE(r.Empty());
    EXPECT_GE(r.x0, 0);
    EXPECT_LE(r.x1, 50);
    EXPECT_LE(r.y1, 30);
  }
}

TEST(QueryGenTest, GeneratorsAreDeterministic) {
  TempDir dir("wl");
  auto store = testing_util::MakeStore(dir.path(), 6, 2, 32, 32);
  Rng r1(99), r2(99);
  const FilterQuery a = GenerateFilterQuery(&r1, *store);
  const FilterQuery b = GenerateFilterQuery(&r2, *store);
  EXPECT_EQ(a.terms[0].range.lv, b.terms[0].range.lv);
  EXPECT_EQ(a.terms[0].range.uv, b.terms[0].range.uv);
  EXPECT_EQ(a.predicate.ToString(), b.predicate.ToString());
}

TEST(WorkloadGenTest, PSeenOneNeverExceedsInitialTarget) {
  // Workload 4 (p_seen = 1.0): only the first query introduces unseen masks,
  // so the distinct-targeted count stays well below the dataset (§4.5: 30%).
  TempDir dir("wl");
  auto store = testing_util::MakeStore(dir.path(), 30, 2, 16, 16);
  WorkloadOptions opts;
  opts.num_queries = 20;
  opts.p_seen = 1.0;
  opts.seed = 5;
  const Workload w = GenerateWorkload(*store, opts);
  EXPECT_EQ(w.queries.size(), 20u);
  EXPECT_LE(w.distinct_targeted,
            static_cast<int64_t>(0.31 * store->num_masks()) + 1);
}

TEST(WorkloadGenTest, LowPSeenExploresWholeDataset) {
  TempDir dir("wl");
  auto store = testing_util::MakeStore(dir.path(), 30, 2, 16, 16);
  WorkloadOptions opts;
  opts.num_queries = 60;
  opts.p_seen = 0.2;
  opts.seed = 6;
  const Workload w = GenerateWorkload(*store, opts);
  EXPECT_EQ(w.distinct_targeted, store->num_masks());
}

TEST(WorkloadGenTest, QueriesTargetRequestedFractions) {
  TempDir dir("wl");
  auto store = testing_util::MakeStore(dir.path(), 40, 2, 16, 16);
  WorkloadOptions opts;
  opts.num_queries = 30;
  opts.p_seen = 0.5;
  const Workload w = GenerateWorkload(*store, opts);
  const int64_t n = store->num_masks();
  for (const FilterQuery& q : w.queries) {
    const int64_t size = static_cast<int64_t>(q.selection.mask_ids.size());
    EXPECT_GE(size, static_cast<int64_t>(0.05 * n));
    EXPECT_LE(size, static_cast<int64_t>(0.3 * n) + 1);
    // No duplicate targets within one query.
    std::set<MaskId> uniq(q.selection.mask_ids.begin(),
                          q.selection.mask_ids.end());
    EXPECT_EQ(uniq.size(), q.selection.mask_ids.size());
  }
}

TEST(WorkloadGenTest, ClassBasedWorkloadSelectsByPredictedLabel) {
  TempDir dir("wl");
  DatasetSpec spec;
  spec.name = "classes";
  spec.num_images = 60;
  spec.num_models = 1;
  spec.saliency.width = 16;
  spec.saliency.height = 16;
  spec.num_classes = 8;
  MS_ASSERT_OK(BuildDataset(dir.path(), spec));
  auto store = MaskStore::Open(dir.path()).ValueOrDie();

  WorkloadOptions opts;
  opts.num_queries = 20;
  opts.p_seen = 0.5;
  opts.by_predicted_class = true;
  opts.seed = 9;
  const Workload w = GenerateWorkload(*store, opts);
  ASSERT_EQ(w.queries.size(), 20u);
  for (const FilterQuery& q : w.queries) {
    EXPECT_FALSE(q.selection.predicted_labels.empty());
    EXPECT_TRUE(q.selection.mask_ids.empty());
    // The selection must actually resolve to the classes' masks.
    const auto ids = ResolveSelection(*store, q.selection);
    for (MaskId id : ids) {
      const int32_t label = store->meta(id).predicted_label;
      EXPECT_NE(std::find(q.selection.predicted_labels.begin(),
                          q.selection.predicted_labels.end(), label),
                q.selection.predicted_labels.end());
    }
  }
  EXPECT_GT(w.distinct_targeted, 0);
  EXPECT_LE(w.distinct_targeted, store->num_masks());
}

TEST(DatasetTest, BuildAndEnsure) {
  TempDir dir("ds");
  DatasetSpec spec;
  spec.name = "tiny";
  spec.num_images = 10;
  spec.num_models = 2;
  spec.saliency.width = 24;
  spec.saliency.height = 24;
  MS_ASSERT_OK(BuildDataset(dir.path(), spec));

  auto store = MaskStore::Open(dir.path()).ValueOrDie();
  EXPECT_EQ(store->num_masks(), 20);
  // Two masks per image, same object box, correct ids.
  for (int64_t img = 0; img < 10; ++img) {
    const MaskMeta& m0 = store->meta(img * 2);
    const MaskMeta& m1 = store->meta(img * 2 + 1);
    EXPECT_EQ(m0.image_id, img);
    EXPECT_EQ(m1.image_id, img);
    EXPECT_EQ(m0.model_id, 0);
    EXPECT_EQ(m1.model_id, 1);
    EXPECT_EQ(m0.object_box, m1.object_box);
    EXPECT_EQ(m0.label, m1.label);
  }

  // EnsureDataset with the same spec is a no-op (fingerprint match)...
  store.reset();
  MS_ASSERT_OK(EnsureDataset(dir.path(), spec));
  // ...and rebuilds when the spec changes.
  spec.num_images = 12;
  MS_ASSERT_OK(EnsureDataset(dir.path(), spec));
  auto rebuilt = MaskStore::Open(dir.path()).ValueOrDie();
  EXPECT_EQ(rebuilt->num_masks(), 24);
}

TEST(DatasetTest, SpecsHaveSensibleScales) {
  const DatasetSpec wilds = WildsSimSpec(0.1);
  EXPECT_EQ(wilds.saliency.width, 224);
  EXPECT_GT(wilds.num_images, 2000);
  const DatasetSpec imagenet = ImageNetSimSpec(0.005);
  EXPECT_EQ(imagenet.saliency.width, 112);
  EXPECT_GT(imagenet.num_images, 6000);
  EXPECT_GT(imagenet.num_images, wilds.num_images);
}

}  // namespace
}  // namespace masksearch
