// Query-service stress suite (docs/SERVING.md): many tenants submitting a
// random mix of filter / top-k / scalar-agg / mask-agg requests through the
// concurrent QueryService must produce results byte-identical to serial
// execution — under a tiny thrashing cache budget and overlapped I/O
// pipelines — plus admission control, deadline, cancellation, fairness,
// and shutdown semantics. The ASan/TSan lanes run this suite.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "masksearch/common/thread_pool.h"
#include "masksearch/service/query_service.h"
#include "masksearch/storage/disk_throttle.h"
#include "masksearch/workload/query_gen.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::MakeStore;
using testing_util::TempDir;

ChiConfig TestConfig() {
  ChiConfig cfg;
  cfg.cell_width = cfg.cell_height = 8;
  cfg.num_bins = 8;
  return cfg;
}

/// Random mixed-kind request stream, mirroring the Fig.-11 workload mix.
std::vector<QueryRequest> GenerateMix(Rng* rng, const MaskStore& store,
                                      size_t n) {
  QueryGenOptions gen;
  gen.threshold_fraction_max = 0.5;  // keep result sets non-empty
  std::vector<QueryRequest> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    switch (rng->UniformInt(0, 4)) {
      case 0:
      case 1:
        out.push_back(
            QueryRequest::Filter(GenerateFilterQuery(rng, store, gen)));
        break;
      case 2:
        out.push_back(QueryRequest::TopK(GenerateTopKQuery(rng, store, gen)));
        break;
      case 3:
        out.push_back(
            QueryRequest::Aggregation(GenerateAggQuery(rng, store, gen)));
        break;
      default: {
        MaskAggQuery q;
        q.op = rng->NextBool() ? MaskAggOp::kIntersectThreshold
                               : MaskAggOp::kUnionThreshold;
        q.agg_threshold = 0.5;
        q.term.roi_source = RoiSource::kObjectBox;
        q.term.range = RandomValueRange(rng, gen);
        q.group_key = GroupKey::kImageId;
        q.k = 5;
        q.descending = rng->NextBool();
        out.push_back(QueryRequest::MaskAgg(std::move(q)));
        break;
      }
    }
  }
  return out;
}

/// Serial ground truth: the same specs through direct Session calls.
QueryResponse RunSerial(Session* session, const QueryRequest& q) {
  QueryResponse r;
  r.kind = q.kind;
  switch (q.kind) {
    case QueryRequest::Kind::kFilter:
      r.filter = session->Filter(q.filter).ValueOrDie();
      break;
    case QueryRequest::Kind::kTopK:
      r.topk = session->TopK(q.topk).ValueOrDie();
      break;
    case QueryRequest::Kind::kAggregation:
      r.agg = session->Aggregate(q.agg).ValueOrDie();
      break;
    case QueryRequest::Kind::kMaskAgg:
      r.agg = session->MaskAggregate(q.mask_agg).ValueOrDie();
      break;
  }
  return r;
}

/// Byte-identical result comparison (stats are scheduling-dependent and
/// deliberately not compared).
void ExpectSameResult(const QueryResponse& expected, const QueryResponse& got,
                      size_t query_index) {
  ASSERT_EQ(expected.kind, got.kind) << "query " << query_index;
  switch (expected.kind) {
    case QueryRequest::Kind::kFilter:
      EXPECT_EQ(expected.filter.mask_ids, got.filter.mask_ids)
          << "query " << query_index;
      break;
    case QueryRequest::Kind::kTopK: {
      ASSERT_EQ(expected.topk.items.size(), got.topk.items.size())
          << "query " << query_index;
      for (size_t i = 0; i < expected.topk.items.size(); ++i) {
        EXPECT_EQ(expected.topk.items[i].mask_id, got.topk.items[i].mask_id)
            << "query " << query_index << " item " << i;
        EXPECT_EQ(expected.topk.items[i].value, got.topk.items[i].value)
            << "query " << query_index << " item " << i;
      }
      break;
    }
    case QueryRequest::Kind::kAggregation:
    case QueryRequest::Kind::kMaskAgg: {
      ASSERT_EQ(expected.agg.groups.size(), got.agg.groups.size())
          << "query " << query_index;
      for (size_t i = 0; i < expected.agg.groups.size(); ++i) {
        EXPECT_EQ(expected.agg.groups[i].group, got.agg.groups[i].group)
            << "query " << query_index << " group " << i;
        EXPECT_EQ(expected.agg.groups[i].value, got.agg.groups[i].value)
            << "query " << query_index << " group " << i;
      }
      break;
    }
  }
}

struct Harness {
  std::unique_ptr<TempDir> dir;
  std::shared_ptr<DiskThrottle> throttle;
  std::unique_ptr<MaskStore> store;
  std::unique_ptr<Session> session;
  std::unique_ptr<ThreadPool> io_pool;

  /// `cache_budget` > 0 opens the store + session caches under one tiny
  /// shared pool; `latency_us` > 0 models a slow disk (admission/deadline
  /// tests need the worker to be demonstrably busy); `no_coalesce` caps
  /// coalesced reads at one blob so every mask pays the modeled latency —
  /// the deadline tests need execution to span many modeled requests.
  static Harness Make(const std::string& tag, uint64_t cache_budget,
                      double latency_us, bool use_index = true,
                      bool overlapped = false, bool no_coalesce = false) {
    Harness h;
    h.dir = std::make_unique<TempDir>(tag);
    // Build the dataset once per TempDir path.
    { MakeStore(h.dir->path(), 20, 2, 48, 48, /*seed=*/11); }
    MaskStore::Options sopts;
    if (latency_us > 0) {
      h.throttle = std::make_shared<DiskThrottle>(
          /*bytes_per_second=*/256.0 * 1024 * 1024, latency_us,
          /*queue_depth=*/4);
      sopts.throttle = h.throttle;
    }
    if (no_coalesce) sopts.batch_max_bytes = 1;
    std::shared_ptr<BufferPool> pool;
    if (cache_budget > 0) {
      BufferPool::Options popts;
      popts.budget_bytes = cache_budget;
      popts.shards = 4;
      pool = std::make_shared<BufferPool>(popts);
      sopts.cache = pool;
    }
    h.store = MaskStore::Open(h.dir->path(), sopts).ValueOrDie();
    SessionOptions opts;
    opts.chi = TestConfig();
    opts.use_index = use_index;
    opts.cache = pool;
    // Small verification batches: fine-grained deadline/cancel checkpoints
    // (results are batch-size independent).
    opts.filter_verify_batch = 8;
    opts.agg_verify_batch = 4;
    if (overlapped) {
      h.io_pool = std::make_unique<ThreadPool>(3);
      opts.io_pool = h.io_pool.get();
    }
    h.session = Session::Open(h.store.get(), opts).ValueOrDie();
    return h;
  }
};

// --- determinism under concurrency -----------------------------------------

TEST(ServiceTest, ConcurrentMixedWorkloadMatchesSerial) {
  // Serial ground truth: its own session and store (cold, uncached).
  Harness serial = Harness::Make("svc_serial", /*cache_budget=*/0,
                                 /*latency_us=*/0);
  Rng rng(303);
  const std::vector<QueryRequest> mix =
      GenerateMix(&rng, *serial.store, /*n=*/48);
  std::vector<QueryResponse> expected;
  expected.reserve(mix.size());
  for (const QueryRequest& q : mix) {
    expected.push_back(RunSerial(serial.session.get(), q));
  }

  // Service run: 8 executor slots over one shared session with a tiny
  // (thrashing) cache budget and the overlapped I/O pipelines enabled —
  // pins, CHI caches, and prefetch under real contention.
  Harness svc = Harness::Make("svc_conc", /*cache_budget=*/192 * 1024,
                              /*latency_us=*/0, /*use_index=*/true,
                              /*overlapped=*/true);
  QueryServiceOptions sopts;
  sopts.num_workers = 8;
  sopts.max_queue_depth = mix.size();
  auto service = QueryService::Start(svc.session.get(), sopts).ValueOrDie();

  std::vector<std::shared_ptr<PendingQuery>> pending;
  pending.reserve(mix.size());
  for (size_t i = 0; i < mix.size(); ++i) {
    ServiceRequest req;
    req.tenant = static_cast<TenantId>(i % 5);
    req.priority = static_cast<PriorityClass>(i % kNumPriorityClasses);
    req.query = mix[i];
    auto p = service->Submit(std::move(req));
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    pending.push_back(*p);
  }
  for (size_t i = 0; i < pending.size(); ++i) {
    auto r = pending[i]->Wait();
    ASSERT_TRUE(r.ok()) << "query " << i << ": " << r.status().ToString();
    ExpectSameResult(expected[i], *r, i);
  }

  const ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.total.submitted, mix.size());
  EXPECT_EQ(stats.total.admitted, mix.size());
  EXPECT_EQ(stats.total.completed, mix.size());
  EXPECT_EQ(stats.total.rejected, 0u);
  EXPECT_EQ(stats.total.latency.count, mix.size());
  service->Drain();
  EXPECT_EQ(service->Stats().queued_now, 0u);
}

// Same invariant in the MS-II regime: concurrent incremental indexing
// (first-build-wins CHI registration) must not perturb results either.
TEST(ServiceTest, ConcurrentIncrementalIndexingMatchesSerial) {
  Harness serial = Harness::Make("svcii_serial", 0, 0);
  Rng rng(404);
  const std::vector<QueryRequest> mix = GenerateMix(&rng, *serial.store, 24);
  std::vector<QueryResponse> expected;
  for (const QueryRequest& q : mix) {
    expected.push_back(RunSerial(serial.session.get(), q));
  }

  Harness svc;
  svc.dir = std::make_unique<TempDir>("svcii_conc");
  { MakeStore(svc.dir->path(), 20, 2, 48, 48, /*seed=*/11); }
  svc.store = MaskStore::Open(svc.dir->path()).ValueOrDie();
  SessionOptions opts;
  opts.chi = TestConfig();
  opts.incremental = true;  // MS-II
  svc.session = Session::Open(svc.store.get(), opts).ValueOrDie();

  QueryServiceOptions sopts;
  sopts.num_workers = 6;
  sopts.max_queue_depth = mix.size();
  auto service = QueryService::Start(svc.session.get(), sopts).ValueOrDie();
  std::vector<std::shared_ptr<PendingQuery>> pending;
  for (size_t i = 0; i < mix.size(); ++i) {
    ServiceRequest req;
    req.tenant = static_cast<TenantId>(i % 3);
    req.query = mix[i];
    pending.push_back(service->Submit(std::move(req)).ValueOrDie());
  }
  for (size_t i = 0; i < pending.size(); ++i) {
    auto r = pending[i]->Wait();
    ASSERT_TRUE(r.ok()) << "query " << i << ": " << r.status().ToString();
    ExpectSameResult(expected[i], *r, i);
  }
}

// --- admission control ------------------------------------------------------

TEST(ServiceTest, AdmissionShedsWithTypedStatusWhenQueueFull) {
  // One slow worker (modeled 2 ms/request disk, no index: every query
  // loads every mask) and a depth-2 queue: a fast submission burst must be
  // mostly shed with kUnavailable.
  Harness h = Harness::Make("svc_admit", 0, /*latency_us=*/2000.0,
                            /*use_index=*/false);
  QueryServiceOptions sopts;
  sopts.num_workers = 1;
  sopts.max_queue_depth = 2;
  auto service = QueryService::Start(h.session.get(), sopts).ValueOrDie();

  Rng rng(505);
  QueryGenOptions gen;
  std::vector<std::shared_ptr<PendingQuery>> admitted;
  size_t rejected = 0;
  for (int i = 0; i < 30; ++i) {
    ServiceRequest req;
    req.tenant = i % 4;
    req.query = QueryRequest::Filter(GenerateFilterQuery(&rng, *h.store, gen));
    auto p = service->Submit(std::move(req));
    if (p.ok()) {
      admitted.push_back(*p);
    } else {
      EXPECT_TRUE(p.status().IsUnavailable()) << p.status().ToString();
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
  for (auto& p : admitted) EXPECT_TRUE(p->Wait().ok());

  const ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.total.submitted, 30u);
  EXPECT_EQ(stats.total.rejected, rejected);
  EXPECT_EQ(stats.total.admitted + stats.total.rejected,
            stats.total.submitted);
  EXPECT_EQ(stats.total.completed, admitted.size());
}

TEST(ServiceTest, AdmissionShedsOnQueuedBytesButAdmitsIntoEmptyQueue) {
  Harness h = Harness::Make("svc_bytes", 0, /*latency_us=*/5000.0,
                            /*use_index=*/false);
  QueryServiceOptions sopts;
  sopts.num_workers = 1;
  sopts.max_queue_depth = 64;
  sopts.max_queued_bytes = 1;  // any second queued request exceeds this
  auto service = QueryService::Start(h.session.get(), sopts).ValueOrDie();

  Rng rng(606);
  QueryGenOptions gen;
  auto make_req = [&] {
    ServiceRequest req;
    req.query = QueryRequest::Filter(GenerateFilterQuery(&rng, *h.store, gen));
    return req;
  };
  // First request dispatches; the next two race for the queue: whichever
  // finds it empty is admitted (empty-queue override), a request that
  // finds it occupied is shed on bytes.
  auto p0 = service->Submit(make_req());
  ASSERT_TRUE(p0.ok());
  auto p1 = service->Submit(make_req());
  auto p2 = service->Submit(make_req());
  EXPECT_TRUE(p1.ok() || p1.status().IsUnavailable());
  EXPECT_FALSE(p1.ok() && p2.ok())
      << "both follow-ups admitted: queued-bytes limit never applied";
  service->Drain();
}

// --- deadlines and cancellation --------------------------------------------

TEST(ServiceTest, QueuedDeadlineExpiryIsShedAtDispatch) {
  Harness h = Harness::Make("svc_dl_queue", 0, /*latency_us=*/3000.0,
                            /*use_index=*/false, /*overlapped=*/false,
                            /*no_coalesce=*/true);
  QueryServiceOptions sopts;
  sopts.num_workers = 1;
  auto service = QueryService::Start(h.session.get(), sopts).ValueOrDie();

  Rng rng(707);
  QueryGenOptions gen;
  ServiceRequest slow;
  slow.query = QueryRequest::Filter(GenerateFilterQuery(&rng, *h.store, gen));
  auto p0 = service->Submit(slow);  // occupies the only worker (≥ 100 ms)
  ASSERT_TRUE(p0.ok());

  ServiceRequest doomed;
  doomed.query = slow.query;
  doomed.deadline_seconds = 1e-4;  // expires while queued behind p0
  auto p1 = service->Submit(std::move(doomed));
  ASSERT_TRUE(p1.ok());
  auto r1 = (*p1)->Wait();
  ASSERT_FALSE(r1.ok());
  EXPECT_TRUE(r1.status().IsDeadlineExceeded()) << r1.status().ToString();
  EXPECT_TRUE(p0.ValueOrDie()->Wait().ok());
  EXPECT_GE(service->Stats().total.deadline_missed, 1u);
}

TEST(ServiceTest, MidExecutionDeadlineAbortsAtBatchBoundary) {
  // ~40 masks × 3 ms modeled latency ≈ 120 ms of execution against a 20 ms
  // deadline: the executor must abort at a batch boundary, typed.
  Harness h = Harness::Make("svc_dl_exec", 0, /*latency_us=*/3000.0,
                            /*use_index=*/false, /*overlapped=*/false,
                            /*no_coalesce=*/true);
  QueryServiceOptions sopts;
  sopts.num_workers = 1;
  auto service = QueryService::Start(h.session.get(), sopts).ValueOrDie();

  Rng rng(808);
  QueryGenOptions gen;
  ServiceRequest req;
  req.query = QueryRequest::Filter(GenerateFilterQuery(&rng, *h.store, gen));
  req.deadline_seconds = 0.02;
  auto r = service->Execute(std::move(req));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status().ToString();
  EXPECT_GE(service->Stats().total.deadline_missed, 1u);
}

TEST(ServiceTest, CancelQueuedAndRunningRequests) {
  Harness h = Harness::Make("svc_cancel", 0, /*latency_us=*/3000.0,
                            /*use_index=*/false);
  QueryServiceOptions sopts;
  sopts.num_workers = 1;
  auto service = QueryService::Start(h.session.get(), sopts).ValueOrDie();

  Rng rng(909);
  QueryGenOptions gen;
  auto make_req = [&] {
    ServiceRequest req;
    req.query = QueryRequest::Filter(GenerateFilterQuery(&rng, *h.store, gen));
    return req;
  };
  auto running = service->Submit(make_req()).ValueOrDie();
  auto queued = service->Submit(make_req()).ValueOrDie();
  queued->Cancel();   // still waiting behind `running`: shed at dispatch
  running->Cancel();  // mid-execution: aborts at the next batch boundary

  const auto r_running = running->Wait();
  const auto r_queued = queued->Wait();
  ASSERT_FALSE(r_queued.ok());
  EXPECT_TRUE(r_queued.status().IsCancelled()) << r_queued.status().ToString();
  // The running request may have been cancelled before, during, or (rarely)
  // after its execution finished; all are legal, but a failure must be the
  // typed cancellation.
  if (!r_running.ok()) {
    EXPECT_TRUE(r_running.status().IsCancelled())
        << r_running.status().ToString();
  }
  EXPECT_GE(service->Stats().total.cancelled, 1u);
}

TEST(ServiceTest, ShutdownCancelsQueuedRequests) {
  Harness h = Harness::Make("svc_shutdown", 0, /*latency_us=*/3000.0,
                            /*use_index=*/false);
  QueryServiceOptions sopts;
  sopts.num_workers = 1;
  auto service = QueryService::Start(h.session.get(), sopts).ValueOrDie();

  Rng rng(111);
  QueryGenOptions gen;
  std::vector<std::shared_ptr<PendingQuery>> pending;
  for (int i = 0; i < 6; ++i) {
    ServiceRequest req;
    req.query = QueryRequest::Filter(GenerateFilterQuery(&rng, *h.store, gen));
    pending.push_back(service->Submit(std::move(req)).ValueOrDie());
  }
  service->Shutdown();
  size_t cancelled = 0;
  for (auto& p : pending) {
    const auto r = p->Wait();  // every handle must resolve
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
      ++cancelled;
    }
  }
  EXPECT_GT(cancelled, 0u);
  // Post-shutdown submissions are shed, typed.
  ServiceRequest late;
  late.query = QueryRequest::Filter(GenerateFilterQuery(&rng, *h.store, gen));
  EXPECT_TRUE(service->Submit(std::move(late)).status().IsUnavailable());
}

// --- scheduler policy -------------------------------------------------------

TEST(ServiceTest, SchedulerRoundRobinsTenantsWithinClass) {
  const std::array<uint32_t, kNumPriorityClasses> weights{{1, 1, 1}};
  FairScheduler sched(weights);
  // Tenant 1 floods; tenants 2 and 3 each queue one request.
  auto push = [&](TenantId t, int seq) {
    ScheduledItem item;
    item.tenant = t;
    item.priority = PriorityClass::kNormal;
    item.payload = std::make_shared<int>(seq);
    sched.Push(std::move(item));
  };
  for (int i = 0; i < 5; ++i) push(1, i);
  push(2, 100);
  push(3, 200);

  std::vector<TenantId> order;
  ScheduledItem item;
  while (sched.Pop(&item)) order.push_back(item.tenant);
  ASSERT_EQ(order.size(), 7u);
  // One item per tenant per rotation: 2 and 3 dispatch within the first
  // three slots despite tenant 1's backlog; tenant 1 fills the tail.
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
  for (size_t i = 3; i < order.size(); ++i) EXPECT_EQ(order[i], 1);
}

TEST(ServiceTest, SchedulerWeightsClassesAndNeverStarves) {
  const std::array<uint32_t, kNumPriorityClasses> weights{{2, 1, 1}};
  FairScheduler sched(weights);
  auto push = [&](PriorityClass c, int n) {
    for (int i = 0; i < n; ++i) {
      ScheduledItem item;
      item.tenant = 7;
      item.priority = c;
      item.payload = std::make_shared<int>(i);
      sched.Push(std::move(item));
    }
  };
  push(PriorityClass::kInteractive, 8);
  push(PriorityClass::kBatch, 4);

  std::vector<PriorityClass> order;
  ScheduledItem item;
  while (sched.Pop(&item)) order.push_back(item.priority);
  ASSERT_EQ(order.size(), 12u);
  // Weighted DRR at 2:1: within the first 6 dispatches batch work appears
  // twice — backlogged low-priority work is paced, not starved.
  size_t batch_in_first6 = 0;
  for (size_t i = 0; i < 6; ++i) {
    if (order[i] == PriorityClass::kBatch) ++batch_in_first6;
  }
  EXPECT_EQ(batch_in_first6, 2u);
  // Everything eventually dispatches.
  EXPECT_EQ(sched.size(), 0u);
}

// --- service + shared pools -------------------------------------------------

// Service workers over a session whose compute/I-O pool is one shared
// 2-thread ThreadPool: executor pipelines submit io_pool tasks and wait on
// latches from many workers at once. WaitHelping keeps this deadlock-free;
// the test is the regression for the nested-submission hazard.
TEST(ServiceTest, SharedAliasedPoolsDoNotDeadlock) {
  Harness h;
  h.dir = std::make_unique<TempDir>("svc_alias");
  { MakeStore(h.dir->path(), 16, 2, 48, 48, /*seed=*/11); }
  BufferPool::Options popts;
  popts.budget_bytes = 256 * 1024;
  auto pool = std::make_shared<BufferPool>(popts);
  MaskStore::Options sopts_store;
  sopts_store.cache = pool;
  h.store = MaskStore::Open(h.dir->path(), sopts_store).ValueOrDie();
  h.io_pool = std::make_unique<ThreadPool>(2);
  SessionOptions opts;
  opts.chi = TestConfig();
  opts.cache = pool;
  opts.pool = h.io_pool.get();     // aliased compute pool
  opts.io_pool = h.io_pool.get();  // and I/O pool
  h.session = Session::Open(h.store.get(), opts).ValueOrDie();

  QueryServiceOptions sopts;
  sopts.num_workers = 6;
  sopts.max_queue_depth = 128;
  auto service = QueryService::Start(h.session.get(), sopts).ValueOrDie();
  Rng rng(222);
  const std::vector<QueryRequest> mix = GenerateMix(&rng, *h.store, 36);
  std::vector<std::shared_ptr<PendingQuery>> pending;
  for (size_t i = 0; i < mix.size(); ++i) {
    ServiceRequest req;
    req.tenant = static_cast<TenantId>(i % 4);
    req.query = mix[i];
    pending.push_back(service->Submit(std::move(req)).ValueOrDie());
  }
  for (auto& p : pending) EXPECT_TRUE(p->Wait().ok());
}

// --- pending-query waiting and notification ---------------------------------

TEST(ServiceTest, WaitForTimesOutTypedThenResolves) {
  Harness h = Harness::Make("svc_waitfor", 0, /*latency_us=*/3000.0,
                            /*use_index=*/false, /*overlapped=*/false,
                            /*no_coalesce=*/true);
  QueryServiceOptions sopts;
  sopts.num_workers = 1;
  auto service = QueryService::Start(h.session.get(), sopts).ValueOrDie();

  Rng rng(121);
  QueryGenOptions gen;
  ServiceRequest req;
  req.query = QueryRequest::Filter(GenerateFilterQuery(&rng, *h.store, gen));
  auto p = service->Submit(std::move(req)).ValueOrDie();

  // The modeled disk keeps the query busy for >= 100 ms: a 1 ms wait must
  // time out typed — and the query KEEPS RUNNING (timeout is not Cancel).
  const auto timed_out = p->WaitFor(std::chrono::milliseconds(1));
  ASSERT_FALSE(timed_out.ok());
  EXPECT_TRUE(timed_out.status().IsUnavailable())
      << timed_out.status().ToString();

  const auto done = p->WaitFor(std::chrono::seconds(60));
  MS_ASSERT_OK(done.status());
  // A resolved handle answers WaitFor immediately, repeatably.
  MS_EXPECT_OK(p->WaitFor(std::chrono::milliseconds(0)).status());
  MS_EXPECT_OK(p->Wait().status());
}

TEST(ServiceTest, NotifyDoneFiresOnceOnCompletion) {
  Harness h = Harness::Make("svc_notify", 0, /*latency_us=*/0);
  auto service =
      QueryService::Start(h.session.get(), QueryServiceOptions{}).ValueOrDie();

  Rng rng(131);
  QueryGenOptions gen;
  ServiceRequest req;
  req.query = QueryRequest::Filter(GenerateFilterQuery(&rng, *h.store, gen));
  auto p = service->Submit(std::move(req)).ValueOrDie();

  std::atomic<int> fired{0};
  p->NotifyDone([&] { fired.fetch_add(1); });
  MS_ASSERT_OK(p->Wait().status());
  // Wait() returning only guarantees the result is set; the callback runs on
  // the finishing worker thread and may trail by an instant. It must still
  // fire exactly once.
  for (int i = 0; i < 2000 && fired.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(fired.load(), 1);

  // Registration after completion runs the callback inline.
  std::atomic<int> late{0};
  p->NotifyDone([&] { late.fetch_add(1); });
  EXPECT_EQ(late.load(), 1);
}

// --- stats: reject-reason split and bounded memory ---------------------------

TEST(ServiceTest, RejectionCountersSplitShutdownFromOverload) {
  Harness h = Harness::Make("svc_rej_split", 0, /*latency_us=*/2000.0,
                            /*use_index=*/false);
  QueryServiceOptions sopts;
  sopts.num_workers = 1;
  sopts.max_queue_depth = 1;
  auto service = QueryService::Start(h.session.get(), sopts).ValueOrDie();

  Rng rng(141);
  QueryGenOptions gen;
  auto make_req = [&] {
    ServiceRequest req;
    req.query = QueryRequest::Filter(GenerateFilterQuery(&rng, *h.store, gen));
    return req;
  };
  // Burst past the depth-1 queue: overload sheds.
  std::vector<std::shared_ptr<PendingQuery>> admitted;
  for (int i = 0; i < 10; ++i) {
    auto p = service->Submit(make_req());
    if (p.ok()) admitted.push_back(*p);
  }
  for (auto& p : admitted) (void)p->Wait();
  const ServiceStats mid = service->Stats();
  EXPECT_GT(mid.total.rejected, 0u);
  EXPECT_EQ(mid.total.rejected_shutdown, 0u);

  // Shutdown-time rejects land in their own counter, not in overload.
  service->Shutdown();
  EXPECT_TRUE(service->Submit(make_req()).status().IsUnavailable());
  EXPECT_TRUE(service->Submit(make_req()).status().IsUnavailable());
  const ServiceStats after = service->Stats();
  EXPECT_EQ(after.total.rejected, mid.total.rejected);
  EXPECT_EQ(after.total.rejected_shutdown, 2u);
  EXPECT_NE(after.ToString().find("rejected_shutdown=2"), std::string::npos);
}

TEST(ServiceTest, LatencySummaryFromHistogramIsBoundedAndExact) {
  // O(1)-memory histogram over many samples: count, mean, and max are
  // exact (streamed); percentiles carry the log-bucket relative error.
  obs::LogHistogram h;
  const size_t n = 50000;
  // Latencies 1ms..50s — inside the histogram's bucketed range.
  for (size_t i = 0; i < n; ++i) h.Record((i + 1) * 1e-3);

  EXPECT_EQ(h.count(), n);
  const LatencySummary s = LatencySummary::FromHistogram(h);
  EXPECT_EQ(s.count, n);
  EXPECT_DOUBLE_EQ(s.max, n * 1e-3);
  EXPECT_NEAR(s.mean, (n + 1) / 2.0 * 1e-3, 1e-6);
  // Percentiles of the uniform population land within the histogram's
  // bounded relative error of the true order statistics.
  EXPECT_NEAR(s.p50, 0.50 * n * 1e-3, 0.10 * 0.50 * n * 1e-3);
  EXPECT_NEAR(s.p95, 0.95 * n * 1e-3, 0.10 * 0.95 * n * 1e-3);
  EXPECT_GE(s.p99, s.p95);
  EXPECT_GE(s.p95, s.p50);
  EXPECT_LE(s.p99, s.max);
}

TEST(ServiceTest, LatencySummarySmallCountsStayWithinBucketError) {
  obs::LogHistogram h;
  for (double v : {4.0, 1.0, 3.0, 2.0}) h.Record(v);
  const LatencySummary s = LatencySummary::FromHistogram(h);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  // Median of {1,2,3,4}: bucket interpolation, not exact — within the
  // ~9% relative error bound around the interpolated value 2.5.
  EXPECT_NEAR(s.p50, 2.5, 0.25 * 2.5);

  // Degenerate populations are exact: empty, single-sample, all-equal.
  const LatencySummary empty =
      LatencySummary::FromHistogram(obs::LogHistogram());
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.p99, 0.0);

  obs::LogHistogram one;
  one.Record(0.125);
  const LatencySummary single = LatencySummary::FromHistogram(one);
  EXPECT_DOUBLE_EQ(single.p50, 0.125);
  EXPECT_DOUBLE_EQ(single.p99, 0.125);

  obs::LogHistogram merged;
  merged.Merge(h);
  merged.Merge(one);
  EXPECT_EQ(merged.count(), 5u);
  EXPECT_DOUBLE_EQ(merged.max(), 4.0);
  EXPECT_DOUBLE_EQ(merged.min(), 0.125);
}

}  // namespace
}  // namespace masksearch
