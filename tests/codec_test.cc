// Unit tests for the mask compression codec.

#include <gtest/gtest.h>

#include "masksearch/storage/codec.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::BlobMask;
using testing_util::RandomMask;

TEST(CodecTest, RoundTripWithinQuantizationError8Bit) {
  Rng rng(3);
  Mask m = RandomMask(&rng, 32, 24);
  const std::string blob = EncodeMask(m);
  auto decoded = DecodeMask(blob);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->width(), 32);
  EXPECT_EQ(decoded->height(), 24);
  for (size_t i = 0; i < m.data().size(); ++i) {
    EXPECT_NEAR(decoded->data()[i], m.data()[i], 1.0 / 256.0 + 1e-6);
  }
}

TEST(CodecTest, RoundTripWithinQuantizationError16Bit) {
  Rng rng(4);
  Mask m = RandomMask(&rng, 17, 9);
  CodecOptions opts;
  opts.bits = QuantBits::k16;
  auto decoded = DecodeMask(EncodeMask(m, opts));
  ASSERT_TRUE(decoded.ok());
  for (size_t i = 0; i < m.data().size(); ++i) {
    EXPECT_NEAR(decoded->data()[i], m.data()[i], 1.0 / 65536.0 + 1e-7);
  }
}

TEST(CodecTest, Idempotent) {
  // Decoded values are bin midpoints, so re-encoding is lossless.
  Rng rng(5);
  Mask m = RandomMask(&rng, 16, 16);
  auto once = DecodeMask(EncodeMask(m));
  ASSERT_TRUE(once.ok());
  auto twice = DecodeMask(EncodeMask(*once));
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(once->data(), twice->data());
}

TEST(CodecTest, CompressesSmoothMasks) {
  // Saliency-like masks have large flat regions; RLE on quantized bytes
  // should beat raw float32 comfortably.
  Rng rng(6);
  Mask m = BlobMask(&rng, 112, 112);
  const std::string blob = EncodeMask(m);
  EXPECT_LT(blob.size(), m.ByteSize() / 2)
      << "compressed " << blob.size() << " vs raw " << m.ByteSize();
}

TEST(CodecTest, ConstantMaskCompressesExtremely) {
  Mask m(64, 64);  // all zeros
  const std::string blob = EncodeMask(m);
  EXPECT_LT(blob.size(), 64u);
}

TEST(CodecTest, DecodedValuesStayInDomain) {
  Rng rng(7);
  Mask m = RandomMask(&rng, 20, 20);
  auto decoded = DecodeMask(EncodeMask(m));
  ASSERT_TRUE(decoded.ok());
  for (float v : decoded->data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(CodecTest, RejectsGarbage) {
  EXPECT_TRUE(DecodeMask(std::string("not a mask")).status().IsCorruption());
  EXPECT_TRUE(DecodeMask(std::string()).status().IsCorruption());
}

TEST(CodecTest, RejectsTruncatedBlob) {
  Rng rng(8);
  Mask m = RandomMask(&rng, 16, 16);
  std::string blob = EncodeMask(m);
  blob.resize(blob.size() / 2);
  EXPECT_TRUE(DecodeMask(blob).status().IsCorruption());
}

TEST(CodecTest, RejectsCorruptHeader) {
  Rng rng(9);
  Mask m = RandomMask(&rng, 8, 8);
  std::string blob = EncodeMask(m);
  blob[0] ^= 0x5a;  // break magic
  EXPECT_TRUE(DecodeMask(blob).status().IsCorruption());
}

}  // namespace
}  // namespace masksearch
