// Unit tests for obs/: LogHistogram percentile math against a sorted
// reference, the sharded metrics registry and its expositions, trace span
// aggregation + deterministic sampling, the slow-query log ring, and the
// trace recorder's line format round-trip.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "masksearch/common/random.h"
#include "masksearch/obs/histogram.h"
#include "masksearch/obs/metrics.h"
#include "masksearch/obs/recorder.h"
#include "masksearch/obs/slow_query_log.h"
#include "masksearch/obs/trace.h"
#include "tests/test_util.h"

namespace masksearch {
namespace obs {
namespace {

using testing_util::TempDir;

// --- LogHistogram ----------------------------------------------------------

TEST(LogHistogramTest, EmptyIsAllZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  EXPECT_EQ(h.Percentile(0.99), 0.0);
}

TEST(LogHistogramTest, SingleObservationIsExactEverywhere) {
  LogHistogram h;
  h.Record(0.125);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.125);
  EXPECT_DOUBLE_EQ(h.max(), 0.125);
  // The [min, max] clamp makes every percentile of a singleton exact.
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 0.125);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.125);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 0.125);
}

TEST(LogHistogramTest, PercentilesTrackSortedReference) {
  // The documented accuracy contract: any percentile is within the bucket
  // growth factor (2^(1/8), ~9.1% relative) of the exact order statistic.
  Rng rng(42);
  LogHistogram h;
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform latencies across 1 us .. 10 s: every octave exercised.
    const double v = std::pow(10.0, -6.0 + 7.0 * rng.NextDouble());
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999}) {
    const double exact =
        values[static_cast<size_t>(q * (values.size() - 1))];
    const double est = h.Percentile(q);
    EXPECT_GT(est, exact / 1.10) << "q=" << q;
    EXPECT_LT(est, exact * 1.10) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.min(), values.front());
  EXPECT_DOUBLE_EQ(h.max(), values.back());
}

TEST(LogHistogramTest, MergeIsExact) {
  Rng rng(7);
  LogHistogram a, b, whole;
  for (int i = 0; i < 5000; ++i) {
    const double v = 1e-4 + rng.NextDouble();
    whole.Record(v);
    (i % 2 == 0 ? a : b).Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  // Bucket counts merge exactly; the streamed sum differs only by
  // floating-point addition order.
  EXPECT_NEAR(a.sum(), whole.sum(), whole.sum() * 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.Percentile(q), whole.Percentile(q)) << "q=" << q;
  }
}

TEST(LogHistogramTest, OutOfRangeValuesLandInEdgeBuckets) {
  LogHistogram h;
  h.Record(0.0);      // below range: lowest bucket
  h.Record(-3.0);     // negative: lowest bucket, but exact min keeps it
  h.Record(1e9);      // above range: top bucket, exact max keeps it
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  // Estimates stay clamped to the observed range.
  EXPECT_GE(h.Percentile(0.99), -3.0);
  EXPECT_LE(h.Percentile(0.99), 1e9);
}

TEST(LogHistogramTest, BucketIndexRespectsBounds) {
  for (double v : {1e-9, 1e-3, 0.5, 1.0, 60.0, 1e4}) {
    const size_t i = LogHistogram::BucketIndex(v);
    ASSERT_LT(i, LogHistogram::kNumBuckets);
    EXPECT_GE(v, LogHistogram::BucketLower(i));
    EXPECT_LT(v, LogHistogram::BucketUpper(i));
  }
}

// --- metrics instruments ---------------------------------------------------

TEST(MetricsTest, CounterSumsAcrossThreads) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), 80000u);
}

TEST(MetricsTest, GaugeSetAddValue) {
  Gauge g;
  g.Set(2.5);
  g.Add(1.5);
  EXPECT_DOUBLE_EQ(g.Value(), 4.0);
}

TEST(MetricsTest, HistogramShardsMergeAtSnapshot) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 1000; ++i) h.Observe(0.001 * (1 + i % 100));
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Snapshot().count(), 8000u);
}

TEST(MetricsRegistryTest, StablePointersAndSamples) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("ms_test_total");
  EXPECT_EQ(c, reg.GetCounter("ms_test_total"));
  c->Inc(3);
  reg.GetGauge("ms_test_gauge")->Set(1.5);
  reg.GetHistogram("ms_test_seconds")->Observe(0.25);

  const auto samples = reg.Samples();
  auto value_of = [&](const std::string& name) -> double {
    for (const auto& s : samples) {
      if (s.name == name) return s.value;
    }
    ADD_FAILURE() << "no sample named " << name;
    return -1;
  };
  EXPECT_DOUBLE_EQ(value_of("ms_test_total"), 3.0);
  EXPECT_DOUBLE_EQ(value_of("ms_test_gauge"), 1.5);
  EXPECT_DOUBLE_EQ(value_of("ms_test_seconds.count"), 1.0);
  EXPECT_TRUE(std::is_sorted(
      samples.begin(), samples.end(),
      [](const auto& a, const auto& b) { return a.name < b.name; }));
}

TEST(MetricsRegistryTest, PrometheusTextGroupsLabeledSeries) {
  MetricsRegistry reg;
  reg.GetCounter("ms_req_total{class=\"interactive\"}")->Inc(2);
  reg.GetCounter("ms_req_total{class=\"batch\"}")->Inc(5);
  const std::string text = reg.PrometheusText();
  // One TYPE line for the base name; both labeled series present.
  EXPECT_EQ(text.find("# TYPE ms_req_total counter"),
            text.rfind("# TYPE ms_req_total counter"));
  EXPECT_NE(text.find("ms_req_total{class=\"interactive\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("ms_req_total{class=\"batch\"} 5"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonExpositionIsFlat) {
  MetricsRegistry reg;
  reg.GetCounter("ms_a_total")->Inc(7);
  reg.GetGauge("ms_b")->Set(0.5);
  const std::string json = reg.Json();
  EXPECT_NE(json.find("\"ms_a_total\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"ms_b\": 0.5"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
}

TEST(MetricsRegistryTest, CollectorsRunAtScrapeAndRemoveCleanly) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("ms_collected");
  int scrapes = 0;
  const size_t handle = reg.AddCollector([&] {
    ++scrapes;
    g->Set(static_cast<double>(scrapes));
  });
  (void)reg.Samples();
  (void)reg.PrometheusText();
  EXPECT_EQ(scrapes, 2);
  EXPECT_DOUBLE_EQ(g->Value(), 2.0);
  reg.RemoveCollector(handle);
  (void)reg.Samples();
  EXPECT_EQ(scrapes, 2);
}

// --- tracing ---------------------------------------------------------------

TEST(TraceTest, SpansAggregateByName) {
  Trace t(17);
  t.AddSpan("io_wait", 0.5);
  t.AddSpan("io_wait", 0.25);
  t.AddSpan("exec", 1.0);
  t.AddCount("cache_hits", 3);
  t.AddCount("cache_hits", 4);
  EXPECT_DOUBLE_EQ(t.SpanSeconds("io_wait"), 0.75);
  EXPECT_DOUBLE_EQ(t.SpanSeconds("exec"), 1.0);
  EXPECT_DOUBLE_EQ(t.SpanSeconds("absent"), 0.0);
  const auto spans = t.spans();
  EXPECT_EQ(spans.size(), 2u);
  for (const auto& s : spans) {
    if (s.name == "io_wait") {
      EXPECT_EQ(s.count, 2u);
    }
  }
  const auto counts = t.counts();
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0].second, 7u);
}

TEST(TraceTest, ScopeInstallsAndRestores) {
  EXPECT_EQ(Trace::Current(), nullptr);
  Trace outer(1), inner(2);
  {
    TraceScope a(&outer);
    EXPECT_EQ(Trace::Current(), &outer);
    {
      TraceScope b(&inner);
      EXPECT_EQ(Trace::Current(), &inner);
    }
    EXPECT_EQ(Trace::Current(), &outer);
    {
      TraceScope c(nullptr);  // a pool task propagating "not tracing"
      EXPECT_EQ(Trace::Current(), nullptr);
    }
    EXPECT_EQ(Trace::Current(), &outer);
  }
  EXPECT_EQ(Trace::Current(), nullptr);
}

TEST(TraceTest, NextIdIsUniqueAndNonzero) {
  std::set<uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t id = Trace::NextId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(ids.insert(id).second);
  }
}

TEST(TraceTest, SamplingIsDeterministicAndProportional) {
  int sampled = 0;
  for (uint64_t id = 1; id <= 10000; ++id) {
    const bool s = Trace::ShouldSample(id, 0.1);
    // Deterministic: the same id answers the same way every time.
    EXPECT_EQ(s, Trace::ShouldSample(id, 0.1));
    if (s) ++sampled;
    EXPECT_TRUE(Trace::ShouldSample(id, 1.0));
    EXPECT_FALSE(Trace::ShouldSample(id, 0.0));
  }
  // 10% +- 3 points over 10k distinct ids.
  EXPECT_GT(sampled, 700);
  EXPECT_LT(sampled, 1300);
}

// --- slow-query log --------------------------------------------------------

SlowQueryEntry MakeEntry(uint64_t id, double total) {
  SlowQueryEntry e;
  e.trace_id = id;
  e.priority_class = "normal";
  e.status = "ok";
  e.total_seconds = total;
  return e;
}

TEST(SlowQueryLogTest, ThresholdFilters) {
  SlowQueryLog::Options opts;
  opts.threshold_seconds = 0.1;
  SlowQueryLog log(opts);
  log.Offer(MakeEntry(1, 0.05));
  log.Offer(MakeEntry(2, 0.15));
  EXPECT_EQ(log.recorded(), 1u);
  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].trace_id, 2u);
}

TEST(SlowQueryLogTest, ZeroThresholdKeepsAllAndRingEvicts) {
  SlowQueryLog::Options opts;
  opts.threshold_seconds = 0;
  opts.capacity = 4;
  SlowQueryLog log(opts);
  for (uint64_t i = 1; i <= 10; ++i) log.Offer(MakeEntry(i, 0.001));
  EXPECT_EQ(log.recorded(), 10u);  // monotonic, survives eviction
  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries.front().trace_id, 7u);  // oldest kept
  EXPECT_EQ(entries.back().trace_id, 10u);
}

TEST(SlowQueryLogTest, RenderCarriesSpansAndCounts) {
  SlowQueryLog::Options opts;
  opts.threshold_seconds = 0;
  SlowQueryLog log(opts);
  SlowQueryEntry e = MakeEntry(777, 0.2);
  Trace::Span span;
  span.name = "io_wait";
  span.count = 3;
  span.total_seconds = 0.12;
  e.spans.push_back(span);
  e.counts.emplace_back("cache_hits", 9);
  log.Offer(std::move(e));
  const std::string text = log.Render();
  EXPECT_NE(text.find("trace=777"), std::string::npos);
  EXPECT_NE(text.find("io_wait"), std::string::npos);
  EXPECT_NE(text.find("count cache_hits"), std::string::npos);
}

// --- trace recorder format -------------------------------------------------

TEST(RecorderTest, LineRoundTripsExactly) {
  RecordedRequest r;
  r.at_ms = 123.456;
  r.dataset = "serving";
  r.tenant = 42;
  r.priority_class = "interactive";
  r.deadline_ms = 250;
  r.trace_id = 99;
  r.params = {0.8, 1.0, 37};
  r.sql = "SELECT mask_id FROM MasksDatabaseView "
          "WHERE CP(mask, object, (?, ?)) > ?;";
  const std::string line = EncodeRecordedRequest(r);
  auto parsed = ParseRecordedRequest(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->at_ms, r.at_ms);
  EXPECT_EQ(parsed->dataset, r.dataset);
  EXPECT_EQ(parsed->tenant, r.tenant);
  EXPECT_EQ(parsed->priority_class, r.priority_class);
  EXPECT_DOUBLE_EQ(parsed->deadline_ms, r.deadline_ms);
  EXPECT_EQ(parsed->trace_id, r.trace_id);
  EXPECT_EQ(parsed->params, r.params);
  EXPECT_EQ(parsed->sql, r.sql);
}

TEST(RecorderTest, SqlMayContainSpacesAndEquals) {
  RecordedRequest r;
  r.dataset = "d";
  r.sql = "SELECT x FROM t WHERE a = 1 AND b = 2;";
  auto parsed = ParseRecordedRequest(EncodeRecordedRequest(r));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->sql, r.sql);
}

TEST(RecorderTest, MalformedLineIsTypedCorruption) {
  EXPECT_TRUE(ParseRecordedRequest("not a trace line").status().IsCorruption());
  EXPECT_TRUE(
      ParseRecordedRequest("at_ms=1 dataset=d tenant=0 class=normal")
          .status()
          .IsCorruption());  // no sql=
}

TEST(RecorderTest, RecordThenLoadTrace) {
  TempDir dir("obs_recorder");
  const std::string path = dir.file("session.trace");
  {
    auto rec = TraceRecorder::Open(path);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    (*rec)->Record("serving", 3, "batch", 0.25, 11, {0.5, 800},
                   "SELECT mask_id FROM MasksDatabaseView "
                   "WHERE CP(mask, object, (?, 1.0)) > ?;");
    (*rec)->Record("serving", 0, "normal", 0, 0, {},
                   "SELECT mask_id FROM MasksDatabaseView "
                   "WHERE CP(mask, object, (0.5, 1.0)) > 10;");
    EXPECT_EQ((*rec)->recorded(), 2u);
  }  // destructor flushes
  auto loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].dataset, "serving");
  EXPECT_EQ((*loaded)[0].tenant, 3);
  EXPECT_EQ((*loaded)[0].priority_class, "batch");
  EXPECT_DOUBLE_EQ((*loaded)[0].deadline_ms, 250);
  EXPECT_EQ((*loaded)[0].trace_id, 11u);
  EXPECT_EQ((*loaded)[0].params.size(), 2u);
  EXPECT_EQ((*loaded)[1].params.size(), 0u);
  // Arrival offsets are monotone non-decreasing within one session.
  EXPECT_LE((*loaded)[0].at_ms, (*loaded)[1].at_ms);
}

}  // namespace
}  // namespace obs
}  // namespace masksearch
