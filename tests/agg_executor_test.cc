// Tests for scalar aggregation execution (§3.4, Q4).

#include <gtest/gtest.h>

#include <cmath>

#include "masksearch/baselines/full_scan.h"
#include "masksearch/exec/agg_executor.h"
#include "masksearch/workload/query_gen.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::MakeStore;
using testing_util::TempDir;

ChiConfig TestConfig() {
  ChiConfig cfg;
  cfg.cell_width = 8;
  cfg.cell_height = 8;
  cfg.num_bins = 8;
  return cfg;
}

class AggExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("agg");
    store_ = MakeStore(dir_->path(), 20, 2, 48, 48, /*seed=*/33);
    index_ = std::make_unique<IndexManager>(store_->num_masks(), TestConfig());
    MS_ASSERT_OK(index_->BuildAll(*store_));
    store_->ResetCounters();
  }

  AggregationQuery MeanQuery(size_t k, bool descending) const {
    AggregationQuery q;
    q.term.roi_source = RoiSource::kObjectBox;
    q.term.range = ValueRange(0.8, 1.0);
    q.op = ScalarAggOp::kAvg;
    q.group_key = GroupKey::kImageId;
    q.k = k;
    q.descending = descending;
    return q;
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<MaskStore> store_;
  std::unique_ptr<IndexManager> index_;
};

void ExpectSameGroups(const AggResult& got, const AggResult& want) {
  ASSERT_EQ(got.groups.size(), want.groups.size());
  for (size_t i = 0; i < got.groups.size(); ++i) {
    EXPECT_EQ(got.groups[i].group, want.groups[i].group) << "rank " << i;
    EXPECT_DOUBLE_EQ(got.groups[i].value, want.groups[i].value) << "rank " << i;
  }
}

TEST_F(AggExecutorTest, TopKMeanMatchesReference) {
  const AggregationQuery q = MeanQuery(5, true);
  auto got = ExecuteAggregation(*store_, index_.get(), q);
  ASSERT_TRUE(got.ok()) << got.status();
  FullScanBaseline reference(store_.get());
  auto want = reference.Aggregate(q);
  ASSERT_TRUE(want.ok());
  ExpectSameGroups(*got, *want);
}

TEST_F(AggExecutorTest, AllAggOpsMatchReference) {
  FullScanBaseline reference(store_.get());
  for (ScalarAggOp op : {ScalarAggOp::kSum, ScalarAggOp::kAvg,
                         ScalarAggOp::kMin, ScalarAggOp::kMax}) {
    AggregationQuery q = MeanQuery(6, true);
    q.op = op;
    auto got = ExecuteAggregation(*store_, index_.get(), q);
    ASSERT_TRUE(got.ok());
    auto want = reference.Aggregate(q);
    ASSERT_TRUE(want.ok());
    ExpectSameGroups(*got, *want);
  }
}

TEST_F(AggExecutorTest, AscendingOrder) {
  const AggregationQuery q = MeanQuery(5, false);
  auto got = ExecuteAggregation(*store_, index_.get(), q);
  ASSERT_TRUE(got.ok());
  FullScanBaseline reference(store_.get());
  auto want = reference.Aggregate(q);
  ASSERT_TRUE(want.ok());
  ExpectSameGroups(*got, *want);
}

TEST_F(AggExecutorTest, HavingFilterSetMatchesReference) {
  AggregationQuery q = MeanQuery(0, true);
  q.k.reset();
  q.having_op = CompareOp::kGt;
  q.having_threshold = 100.0;
  auto got = ExecuteAggregation(*store_, index_.get(), q);
  ASSERT_TRUE(got.ok());
  FullScanBaseline reference(store_.get());
  auto want = reference.Aggregate(q);
  ASSERT_TRUE(want.ok());
  // Group id sets must match; bound-accepted groups may carry NaN values.
  ASSERT_EQ(got->groups.size(), want->groups.size());
  std::vector<int64_t> got_ids, want_ids;
  for (const auto& g : got->groups) got_ids.push_back(g.group);
  for (const auto& g : want->groups) want_ids.push_back(g.group);
  std::sort(got_ids.begin(), got_ids.end());
  std::sort(want_ids.begin(), want_ids.end());
  EXPECT_EQ(got_ids, want_ids);
}

TEST_F(AggExecutorTest, GroupPruningLoadsFewerMasksThanTargeted) {
  const AggregationQuery q = MeanQuery(3, true);
  auto r = ExecuteAggregation(*store_, index_.get(), q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.masks_targeted, store_->num_masks());
  EXPECT_LT(r->stats.masks_loaded, r->stats.masks_targeted);
}

TEST_F(AggExecutorTest, GroupByModelId) {
  AggregationQuery q = MeanQuery(2, true);
  q.group_key = GroupKey::kModelId;
  q.op = ScalarAggOp::kSum;
  auto got = ExecuteAggregation(*store_, index_.get(), q);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->groups.size(), 2u);  // models 0 and 1
  FullScanBaseline reference(store_.get());
  auto want = reference.Aggregate(q);
  ASSERT_TRUE(want.ok());
  ExpectSameGroups(*got, *want);
}

TEST_F(AggExecutorTest, IncrementalIndexingStillExact) {
  IndexManager empty(store_->num_masks(), TestConfig());
  EngineOptions opts;
  opts.build_missing = true;
  const AggregationQuery q = MeanQuery(5, true);
  auto first = ExecuteAggregation(*store_, &empty, q, opts);
  ASSERT_TRUE(first.ok());
  auto second = ExecuteAggregation(*store_, &empty, q, opts);
  ASSERT_TRUE(second.ok());
  ExpectSameGroups(*first, *second);
  EXPECT_LE(second->stats.masks_loaded, first->stats.masks_loaded);
}

TEST_F(AggExecutorTest, RandomizedQueriesMatchReference) {
  FullScanBaseline reference(store_.get());
  Rng rng(4242);
  for (int i = 0; i < 20; ++i) {
    const AggregationQuery q = GenerateAggQuery(&rng, *store_);
    auto got = ExecuteAggregation(*store_, index_.get(), q);
    ASSERT_TRUE(got.ok());
    auto want = reference.Aggregate(q);
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(got->groups.size(), want->groups.size()) << "query " << i;
    for (size_t j = 0; j < got->groups.size(); ++j) {
      ASSERT_EQ(got->groups[j].group, want->groups[j].group)
          << "query " << i << " rank " << j;
      ASSERT_NEAR(got->groups[j].value, want->groups[j].value, 1e-9);
    }
  }
}

TEST_F(AggExecutorTest, InvalidQueriesRejected) {
  AggregationQuery neither = MeanQuery(0, true);
  neither.k.reset();
  EXPECT_TRUE(ExecuteAggregation(*store_, index_.get(), neither)
                  .status()
                  .IsInvalidArgument());

  AggregationQuery zero_k = MeanQuery(0, true);
  EXPECT_TRUE(ExecuteAggregation(*store_, index_.get(), zero_k)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace masksearch
