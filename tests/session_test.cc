// Tests for Session: the MS / MS-II / index-less regimes and CHI
// persistence across sessions (§3.6).

#include <gtest/gtest.h>

#include "masksearch/exec/session.h"
#include "masksearch/workload/query_gen.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::MakeStore;
using testing_util::TempDir;

SessionOptions BaseOptions() {
  SessionOptions opts;
  opts.chi.cell_width = 8;
  opts.chi.cell_height = 8;
  opts.chi.num_bins = 8;
  return opts;
}

FilterQuery SimpleQuery(double threshold) {
  FilterQuery q;
  CpTerm term;
  term.roi_source = RoiSource::kObjectBox;
  term.range = ValueRange(0.6, 1.0);
  q.terms.push_back(term);
  q.predicate = Predicate::Compare(CpExpr::Term(0), CompareOp::kGt, threshold);
  return q;
}

TEST(SessionTest, VanillaBuildsAllIndexesAtOpen) {
  TempDir dir("sess");
  auto store = MakeStore(dir.path(), 10, 2, 32, 32);
  auto session = Session::Open(store.get(), BaseOptions()).ValueOrDie();
  EXPECT_EQ(static_cast<int64_t>(session->index().num_built()),
            store->num_masks());
  EXPECT_GE(session->index_build_seconds(), 0.0);
}

TEST(SessionTest, IncrementalStartsEmpty) {
  TempDir dir("sess");
  auto store = MakeStore(dir.path(), 10, 2, 32, 32);
  SessionOptions opts = BaseOptions();
  opts.incremental = true;
  auto session = Session::Open(store.get(), opts).ValueOrDie();
  EXPECT_EQ(session->index().num_built(), 0u);
  EXPECT_EQ(session->index_build_seconds(), 0.0);
}

TEST(SessionTest, AllRegimesAgreeOnResults) {
  TempDir dir("sess");
  auto store = MakeStore(dir.path(), 15, 2, 32, 32, /*seed=*/77);

  auto ms = Session::Open(store.get(), BaseOptions()).ValueOrDie();

  SessionOptions ii = BaseOptions();
  ii.incremental = true;
  auto msii = Session::Open(store.get(), ii).ValueOrDie();

  SessionOptions off = BaseOptions();
  off.use_index = false;
  auto scan = Session::Open(store.get(), off).ValueOrDie();

  Rng rng(123);
  for (int i = 0; i < 10; ++i) {
    const FilterQuery q = GenerateFilterQuery(&rng, *store);
    auto a = ms->Filter(q);
    auto b = msii->Filter(q);
    auto c = scan->Filter(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(a->mask_ids, b->mask_ids) << "query " << i;
    EXPECT_EQ(a->mask_ids, c->mask_ids) << "query " << i;
  }
  // The index-less session never built anything.
  EXPECT_EQ(scan->index().num_built(), 0u);
  // MS-II has indexed everything it loaded.
  EXPECT_GT(msii->index().num_built(), 0u);
}

TEST(SessionTest, PersistenceAcrossSessions) {
  TempDir dir("sess");
  auto store = MakeStore(dir.path(), 8, 2, 32, 32);
  const std::string index_path = dir.file("session.chi");

  {
    SessionOptions opts = BaseOptions();
    opts.incremental = true;
    opts.index_path = index_path;
    auto session = Session::Open(store.get(), opts).ValueOrDie();
    session->Filter(SimpleQuery(100.0)).ValueOrDie();
    const size_t built = session->index().num_built();
    EXPECT_GT(built, 0u);
    MS_ASSERT_OK(session->Save());
  }

  // A new incremental session resumes with the persisted CHIs (§3.6).
  {
    SessionOptions opts = BaseOptions();
    opts.incremental = true;
    opts.index_path = index_path;
    auto session = Session::Open(store.get(), opts).ValueOrDie();
    EXPECT_GT(session->index().num_built(), 0u);
    auto r = session->Filter(SimpleQuery(100.0));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->stats.chis_built, 0);
  }
}

TEST(SessionTest, AttachIndexModeAnswersWithoutBulkLoad) {
  TempDir dir("sess");
  auto store = MakeStore(dir.path(), 12, 2, 32, 32, /*seed=*/41);
  const std::string index_path = dir.file("attach.chi");
  {
    auto builder = Session::Open(store.get(), BaseOptions()).ValueOrDie();
    SessionOptions bopts = BaseOptions();
    bopts.index_path = index_path;
    auto save_session = Session::Open(store.get(), bopts).ValueOrDie();
    MS_ASSERT_OK(save_session->Save());
  }

  SessionOptions opts = BaseOptions();
  opts.index_path = index_path;
  opts.attach_index = true;
  auto lazy = Session::Open(store.get(), opts).ValueOrDie();
  EXPECT_EQ(lazy->index().num_built(), 0u);
  EXPECT_EQ(lazy->index_build_seconds(), 0.0);

  auto eager = Session::Open(store.get(), BaseOptions()).ValueOrDie();
  const FilterQuery q = SimpleQuery(100.0);
  auto a = lazy->Filter(q);
  auto b = eager->Filter(q);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->mask_ids, b->mask_ids);
  // The lazy session made CHIs resident on demand and read their bytes.
  EXPECT_GT(lazy->index().num_built(), 0u);
  EXPECT_GT(lazy->index().attached_bytes_loaded(), 0u);
}

TEST(SessionTest, AttachIndexRequiresExistingFile) {
  TempDir dir("sess");
  auto store = MakeStore(dir.path(), 4, 1, 16, 16);
  SessionOptions opts = BaseOptions();
  opts.index_path = dir.file("missing.chi");
  opts.attach_index = true;
  EXPECT_TRUE(Session::Open(store.get(), opts).status().IsInvalidArgument());
}

TEST(SessionTest, SaveWithoutPathFails) {
  TempDir dir("sess");
  auto store = MakeStore(dir.path(), 4, 1, 16, 16);
  auto session = Session::Open(store.get(), BaseOptions()).ValueOrDie();
  EXPECT_TRUE(session->Save().IsInvalidArgument());
}

TEST(SessionTest, AllQueryKindsRunThroughSession) {
  TempDir dir("sess");
  auto store = MakeStore(dir.path(), 12, 2, 32, 32);
  auto session = Session::Open(store.get(), BaseOptions()).ValueOrDie();

  ASSERT_TRUE(session->Filter(SimpleQuery(50.0)).ok());

  TopKQuery topk;
  CpTerm t;
  t.roi_source = RoiSource::kConstant;
  t.constant_roi = ROI(4, 4, 28, 28);
  t.range = ValueRange(0.7, 1.0);
  topk.terms.push_back(t);
  topk.order_expr = CpExpr::Term(0);
  topk.k = 5;
  ASSERT_TRUE(session->TopK(topk).ok());

  AggregationQuery agg;
  agg.term = t;
  agg.op = ScalarAggOp::kAvg;
  agg.k = 5;
  ASSERT_TRUE(session->Aggregate(agg).ok());

  MaskAggQuery magg;
  magg.op = MaskAggOp::kIntersectThreshold;
  magg.agg_threshold = 0.7;
  magg.term = t;
  magg.k = 5;
  auto r = session->MaskAggregate(magg);
  ASSERT_TRUE(r.ok()) << r.status();
  // The derived cache persists inside the session.
  EXPECT_GT(session->derived_cache(MaskAggOp::kIntersectThreshold, 0.7)->size(),
            0u);
}

TEST(SessionTest, OpenValidatesArguments) {
  TempDir dir("sess");
  auto store = MakeStore(dir.path(), 4, 1, 16, 16);
  EXPECT_TRUE(Session::Open(nullptr, BaseOptions()).status().IsInvalidArgument());
  SessionOptions bad = BaseOptions();
  bad.chi.num_bins = 0;
  EXPECT_TRUE(Session::Open(store.get(), bad).status().IsInvalidArgument());
}

TEST(SessionTest, DerivedCacheKeyedByOpAndThreshold) {
  TempDir dir("sess");
  auto store = MakeStore(dir.path(), 4, 1, 16, 16);
  auto session = Session::Open(store.get(), BaseOptions()).ValueOrDie();
  auto* a = session->derived_cache(MaskAggOp::kIntersectThreshold, 0.7);
  auto* b = session->derived_cache(MaskAggOp::kIntersectThreshold, 0.8);
  auto* c = session->derived_cache(MaskAggOp::kUnionThreshold, 0.7);
  auto* a2 = session->derived_cache(MaskAggOp::kIntersectThreshold, 0.7);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, a2);
}

}  // namespace
}  // namespace masksearch
