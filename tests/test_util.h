// Shared helpers for the MaskSearch test suite.

#ifndef MASKSEARCH_TESTS_TEST_UTIL_H_
#define MASKSEARCH_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>

#include "masksearch/common/random.h"
#include "masksearch/storage/mask.h"
#include "masksearch/storage/mask_store.h"
#include "masksearch/workload/synthetic.h"

namespace masksearch {
namespace testing_util {

#define MS_ASSERT_OK(expr)                                   \
  do {                                                       \
    const ::masksearch::Status _st = (expr);                 \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                 \
  } while (0)

#define MS_EXPECT_OK(expr)                                   \
  do {                                                       \
    const ::masksearch::Status _st = (expr);                 \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                 \
  } while (0)

/// Unique scratch directory removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static std::atomic<uint64_t> counter{0};
    path_ = (std::filesystem::temp_directory_path() /
             ("masksearch_test_" + tag + "_" + std::to_string(::getpid()) +
              "_" + std::to_string(counter.fetch_add(1))))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }
  std::string file(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

/// Uniform-random mask with values in [0, 1).
inline Mask RandomMask(Rng* rng, int32_t w, int32_t h) {
  Mask m(w, h);
  for (float& v : m.mutable_data()) v = rng->NextFloat();
  return m;
}

/// Structured (blobby) mask, closer to real saliency maps than iid noise.
inline Mask BlobMask(Rng* rng, int32_t w, int32_t h) {
  SaliencySpec spec;
  spec.width = w;
  spec.height = h;
  const ROI box = GenerateObjectBox(rng, w, h);
  return GenerateSaliencyMask(rng, spec, box, rng->NextBool(0.3));
}

/// Builds a small store of random saliency-like masks: `num_images` images ×
/// `num_models` models, with object boxes and deterministic content.
inline std::unique_ptr<MaskStore> MakeStore(const std::string& dir,
                                            int64_t num_images,
                                            int32_t num_models, int32_t w,
                                            int32_t h, uint64_t seed = 7) {
  auto writer = MaskStoreWriter::Create(dir).ValueOrDie();
  Rng rng(seed);
  SaliencySpec spec;
  spec.width = w;
  spec.height = h;
  for (int64_t img = 0; img < num_images; ++img) {
    const ROI box = GenerateObjectBox(&rng, w, h);
    const bool dispersed = rng.NextBool(0.25);
    const std::vector<SaliencyBlob> blobs =
        SampleSaliencyBlobs(&rng, spec, box, dispersed);
    for (int32_t model = 0; model < num_models; ++model) {
      const std::vector<SaliencyBlob> model_blobs =
          model == 0 ? blobs : JitterSaliencyBlobs(&rng, blobs, 0.25, w, h);
      Mask mask = RenderSaliencyMask(&rng, spec, model_blobs);
      MaskMeta meta;
      meta.image_id = img;
      meta.model_id = model;
      meta.mask_type = MaskType::kSaliencyMap;
      meta.object_box = box;
      writer->Append(meta, mask).ValueOrDie();
    }
  }
  writer->Finish().CheckOK();
  return MaskStore::Open(dir).ValueOrDie();
}

}  // namespace testing_util
}  // namespace masksearch

#endif  // MASKSEARCH_TESTS_TEST_UTIL_H_
