// Network-layer tests: wire codec round-trips, protocol-error handling
// (truncated / oversized / garbage frames), disconnect behaviour, and
// byte-identical results over real sockets vs in-process execution
// (docs/NETWORK.md).

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "masksearch/catalog/catalog.h"
#include "masksearch/catalog/prepared.h"
#include "masksearch/net/client.h"
#include "masksearch/net/server.h"
#include "masksearch/net/wire.h"
#include "masksearch/sql/binder.h"
#include "tests/test_util.h"

namespace masksearch {
namespace {

using testing_util::MakeStore;
using testing_util::TempDir;

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

TEST(WireTest, RequestRoundTripsEveryType) {
  net::Request req;
  req.type = net::MsgType::kExecute;
  req.request_id = 77;
  req.execute.dataset = "d";
  req.execute.stmt_id = 5;
  req.execute.tenant = 3;
  req.execute.priority = 2;
  req.execute.deadline_seconds = 0.25;
  req.execute.params = {0.5, 40.0, -1.5};

  auto decoded = net::DecodeRequest(net::EncodeRequest(req)).ValueOrDie();
  EXPECT_EQ(decoded.type, net::MsgType::kExecute);
  EXPECT_EQ(decoded.request_id, 77u);
  EXPECT_EQ(decoded.execute.dataset, "d");
  EXPECT_EQ(decoded.execute.stmt_id, 5u);
  EXPECT_EQ(decoded.execute.tenant, 3);
  EXPECT_EQ(decoded.execute.priority, 2);
  EXPECT_DOUBLE_EQ(decoded.execute.deadline_seconds, 0.25);
  EXPECT_EQ(decoded.execute.params, (std::vector<double>{0.5, 40.0, -1.5}));

  net::Request query;
  query.type = net::MsgType::kQuery;
  query.request_id = 1;
  query.query.dataset = "x";
  query.query.sqltext = "SELECT 1;";
  query.query.tenant = 9;
  auto q = net::DecodeRequest(net::EncodeRequest(query)).ValueOrDie();
  EXPECT_EQ(q.query.sqltext, "SELECT 1;");
  EXPECT_EQ(q.query.tenant, 9);
}

TEST(WireTest, ResponseRoundTripsResultAndStatus) {
  net::Response resp;
  resp.request_id = 12;
  resp.payload = net::PayloadKind::kQueryResult;
  resp.result.kind = 0;
  resp.result.mask_ids = {3, 1, 4, 1, 5};
  resp.result.scored = {{2, 0.5}, {7, -1.0}};
  resp.result.queue_seconds = 0.001;
  resp.result.exec_seconds = 0.125;

  auto decoded = net::DecodeResponse(net::EncodeResponse(resp)).ValueOrDie();
  EXPECT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.result.mask_ids, resp.result.mask_ids);
  EXPECT_EQ(decoded.result.scored, resp.result.scored);
  EXPECT_DOUBLE_EQ(decoded.result.exec_seconds, 0.125);

  const net::Response error = net::ErrorResponse(
      9, Status::DeadlineExceeded("too slow"));
  auto err = net::DecodeResponse(net::EncodeResponse(error)).ValueOrDie();
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.ToStatus().IsDeadlineExceeded());
  EXPECT_EQ(err.ToStatus().message(), "too slow");
}

TEST(WireTest, TraceIdRoundTripsOnQueryAndExecute) {
  net::Request query;
  query.type = net::MsgType::kQuery;
  query.query.dataset = "x";
  query.query.sqltext = "SELECT 1;";
  query.query.trace_id = 0xDEADBEEFCAFEull;
  EXPECT_EQ(net::DecodeRequest(net::EncodeRequest(query))
                .ValueOrDie()
                .query.trace_id,
            0xDEADBEEFCAFEull);

  net::Request exec;
  exec.type = net::MsgType::kExecute;
  exec.execute.dataset = "x";
  exec.execute.stmt_id = 1;
  exec.execute.trace_id = 42;
  EXPECT_EQ(net::DecodeRequest(net::EncodeRequest(exec))
                .ValueOrDie()
                .execute.trace_id,
            42u);
}

TEST(WireTest, MetricsAndTraceRequestsRoundTrip) {
  net::Request metrics;
  metrics.type = net::MsgType::kMetrics;
  metrics.metrics_format = net::MetricsFormat::kJson;
  auto decoded = net::DecodeRequest(net::EncodeRequest(metrics)).ValueOrDie();
  EXPECT_EQ(decoded.type, net::MsgType::kMetrics);
  EXPECT_EQ(decoded.metrics_format, net::MetricsFormat::kJson);

  net::Request trace;
  trace.type = net::MsgType::kTrace;
  trace.request_id = 5;
  auto t = net::DecodeRequest(net::EncodeRequest(trace)).ValueOrDie();
  EXPECT_EQ(t.type, net::MsgType::kTrace);
  EXPECT_EQ(t.request_id, 5u);
}

TEST(WireTest, TextResponseRoundTrips) {
  net::Response resp;
  resp.request_id = 3;
  resp.payload = net::PayloadKind::kText;
  resp.text = "# TYPE ms_service_completed_total counter\n"
              "ms_service_completed_total 7\n";
  auto decoded = net::DecodeResponse(net::EncodeResponse(resp)).ValueOrDie();
  EXPECT_EQ(decoded.payload, net::PayloadKind::kText);
  EXPECT_EQ(decoded.text, resp.text);
}

TEST(WireTest, TakeFrameIsIncremental) {
  const std::string payload = net::EncodeRequest(net::Request{});
  const std::string frame = net::EncodeFrame(payload);

  // Feed the frame byte by byte: no partial read ever yields a frame.
  std::string buf, out;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    buf.push_back(frame[i]);
    EXPECT_FALSE(net::TakeFrame(&buf, 1 << 20, &out).ValueOrDie());
  }
  buf.push_back(frame.back());
  EXPECT_TRUE(net::TakeFrame(&buf, 1 << 20, &out).ValueOrDie());
  EXPECT_EQ(out, payload);
  EXPECT_TRUE(buf.empty());
}

TEST(WireTest, OversizedAndEmptyFramesAreTyped) {
  BufferWriter w;
  w.PutU32(2048);
  std::string buf = w.Release();
  std::string out;
  EXPECT_TRUE(net::TakeFrame(&buf, /*max_frame_bytes=*/1024, &out)
                  .status()
                  .IsInvalidArgument());

  BufferWriter z;
  z.PutU32(0);
  buf = z.Release();
  EXPECT_TRUE(net::TakeFrame(&buf, 1024, &out).status().IsInvalidArgument());
}

TEST(WireTest, TruncatedBodyIsCorruption) {
  net::Request req;
  req.type = net::MsgType::kQuery;
  req.query.dataset = "d";
  req.query.sqltext = "SELECT 1;";
  std::string payload = net::EncodeRequest(req);
  payload.resize(payload.size() / 2);  // chop the body mid-field
  EXPECT_FALSE(net::DecodeRequest(payload).ok());
}

TEST(WireTest, TrailingBytesAreCorruption) {
  std::string payload = net::EncodeRequest(net::Request{});
  payload += "extra";
  EXPECT_TRUE(net::DecodeRequest(payload).status().IsCorruption());
}

TEST(WireTest, VersionMismatchIsRejected) {
  std::string payload = net::EncodeRequest(net::Request{});
  payload[0] = static_cast<char>(net::kWireVersion + 1);
  EXPECT_TRUE(net::DecodeRequest(payload).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Server + client over real sockets
// ---------------------------------------------------------------------------

class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("net");
    { auto s = MakeStore(dir_->path(), 16, 2, 32, 32); }
    DatasetConfig config;
    config.session.chi.cell_width = config.session.chi.cell_height = 8;
    config.session.chi.num_bins = 8;
    config.service.num_workers = 2;
    dataset_ = catalog_.Register("main", dir_->path(), config).ValueOrDie();

    net::NetServerOptions opts;
    opts.max_frame_bytes = 1 << 20;
    server_ = net::NetServer::Start(&catalog_, opts).ValueOrDie();
  }

  void TearDown() override {
    server_->Stop();
    catalog_.ShutdownAll();
  }

  std::unique_ptr<net::NetClient> Connect() {
    net::NetClientOptions opts;
    opts.recv_timeout_seconds = 10;
    return net::NetClient::Connect("127.0.0.1", server_->port(), opts)
        .ValueOrDie();
  }

  std::unique_ptr<TempDir> dir_;
  Catalog catalog_;
  Dataset* dataset_ = nullptr;
  std::unique_ptr<net::NetServer> server_;
};

constexpr char kFilterSql[] =
    "SELECT mask_id FROM MasksDatabaseView "
    "WHERE CP(mask, object, (0.6, 1.0)) > 40;";
constexpr char kParamSql[] =
    "SELECT mask_id FROM MasksDatabaseView "
    "WHERE CP(mask, object, (?, 1.0)) > ?;";

TEST_F(NetServerTest, PingAndListDatasets) {
  auto client = Connect();
  MS_ASSERT_OK(client->Ping());
  auto datasets = client->ListDatasets().ValueOrDie();
  ASSERT_EQ(datasets.size(), 1u);
  EXPECT_EQ(datasets[0].name, "main");
  EXPECT_EQ(datasets[0].num_masks, 32);
  EXPECT_EQ(datasets[0].total_bytes, dataset_->store().TotalDataBytes());
}

TEST_F(NetServerTest, QueryMatchesInProcessExactly) {
  const auto bound = sql::ParseAndBind(kFilterSql).ValueOrDie();
  const auto expected =
      dataset_->session()->Filter(bound.filter).ValueOrDie();

  auto client = Connect();
  auto resp = client->Query("main", kFilterSql).ValueOrDie();
  ASSERT_EQ(resp.payload, net::PayloadKind::kQueryResult);
  ASSERT_EQ(resp.result.mask_ids.size(), expected.mask_ids.size());
  for (size_t i = 0; i < expected.mask_ids.size(); ++i) {
    EXPECT_EQ(resp.result.mask_ids[i], expected.mask_ids[i]) << "index " << i;
  }
}

TEST_F(NetServerTest, PreparedStatementLifecycle) {
  auto client = Connect();
  auto handle = client->Prepare("main", kParamSql).ValueOrDie();
  EXPECT_EQ(handle.num_params, 2u);

  // Two bindings, each matching its in-process answer exactly.
  auto stmt = PreparedStatement::Prepare(kParamSql).ValueOrDie();
  for (const std::vector<double>& params :
       {std::vector<double>{0.6, 40}, std::vector<double>{0.9, 400}}) {
    const auto expected =
        dataset_->session()
            ->Filter(stmt->Bind(params).ValueOrDie().filter)
            .ValueOrDie();
    auto resp = client->Execute(handle.stmt_id, params).ValueOrDie();
    EXPECT_EQ(resp.result.mask_ids,
              std::vector<int64_t>(expected.mask_ids.begin(),
                                   expected.mask_ids.end()));
  }

  // Wrong arity is a typed error from the server, statement stays usable.
  EXPECT_TRUE(client->Execute(handle.stmt_id, {0.5})
                  .status()
                  .IsInvalidArgument());
  MS_EXPECT_OK(client->Execute(handle.stmt_id, {0.6, 40}).status());

  MS_ASSERT_OK(client->CloseStmt(handle.stmt_id));
  EXPECT_TRUE(
      client->Execute(handle.stmt_id, {0.6, 40}).status().IsNotFound());
}

TEST_F(NetServerTest, ErrorsTravelTyped) {
  auto client = Connect();
  EXPECT_TRUE(client->Query("nope", kFilterSql).status().IsNotFound());
  EXPECT_TRUE(
      client->Query("main", "SELECT FROM").status().IsInvalidArgument());
  EXPECT_TRUE(client->Execute(/*stmt_id=*/999, {}).status().IsNotFound());
  // The connection survives typed errors.
  MS_EXPECT_OK(client->Ping());
}

TEST_F(NetServerTest, OversizedFrameGetsErrorThenClose) {
  auto client = Connect();
  BufferWriter w;
  w.PutU32((1 << 20) + 1);  // announce a frame beyond the server's limit
  MS_ASSERT_OK(client->SendRaw(w.Release()));
  auto resp = client->ReceiveResponse().ValueOrDie();
  EXPECT_TRUE(resp.ToStatus().IsInvalidArgument());
  // The stream is unresynchronizable: the server hangs up after the error.
  EXPECT_TRUE(client->ReceiveResponse().status().IsUnavailable());
  EXPECT_GE(server_->stats().protocol_errors, 1u);
}

TEST_F(NetServerTest, GarbageFrameGetsErrorThenClose) {
  auto client = Connect();
  MS_ASSERT_OK(client->SendRaw(net::EncodeFrame("\xff\xfegarbage bytes")));
  auto resp = client->ReceiveResponse().ValueOrDie();
  EXPECT_FALSE(resp.ok());
  EXPECT_TRUE(client->ReceiveResponse().status().IsUnavailable());
}

TEST_F(NetServerTest, TruncatedBodyGetsErrorThenClose) {
  net::Request req;
  req.type = net::MsgType::kQuery;
  req.request_id = 3;
  req.query.dataset = "main";
  req.query.sqltext = kFilterSql;
  std::string payload = net::EncodeRequest(req);
  payload.resize(payload.size() - 7);  // valid frame, truncated body

  auto client = Connect();
  MS_ASSERT_OK(client->SendRaw(net::EncodeFrame(payload)));
  auto resp = client->ReceiveResponse().ValueOrDie();
  EXPECT_FALSE(resp.ok());
  EXPECT_TRUE(client->ReceiveResponse().status().IsUnavailable());
}

TEST_F(NetServerTest, MidRequestDisconnectLeavesServerHealthy) {
  {
    auto client = Connect();
    net::Request req;
    req.type = net::MsgType::kQuery;
    req.request_id = 1;
    req.query.dataset = "main";
    req.query.sqltext = kFilterSql;
    // Fire the query and hang up without reading the response; then a
    // half-written frame from another client.
    MS_ASSERT_OK(client->SendRaw(net::EncodeFrame(net::EncodeRequest(req))));
    client->Close();
  }
  {
    auto client = Connect();
    BufferWriter w;
    w.PutU32(64);  // announce 64 bytes, send 3, vanish
    w.PutU8(1);
    w.PutU8(1);
    w.PutU8(1);
    MS_ASSERT_OK(client->SendRaw(w.Release()));
    client->Close();
  }
  // The server keeps serving new connections correctly.
  auto client = Connect();
  MS_ASSERT_OK(client->Ping());
  auto resp = client->Query("main", kFilterSql).ValueOrDie();
  EXPECT_EQ(resp.payload, net::PayloadKind::kQueryResult);
}

TEST_F(NetServerTest, ConcurrentClientsGetByteIdenticalResults) {
  // Expected answers computed in-process, single-threaded, first.
  auto stmt = PreparedStatement::Prepare(kParamSql).ValueOrDie();
  std::vector<std::vector<double>> bindings;
  std::vector<std::vector<MaskId>> expected;
  for (int i = 0; i < 6; ++i) {
    bindings.push_back({0.4 + 0.1 * i, 10.0 + 60.0 * i});
    expected.push_back(dataset_->session()
                           ->Filter(stmt->Bind(bindings.back())
                                        .ValueOrDie()
                                        .filter)
                           .ValueOrDie()
                           .mask_ids);
  }

  constexpr int kClients = 4;
  constexpr int kRounds = 8;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = Connect();
      auto handle = client->Prepare("main", kParamSql).ValueOrDie();
      for (int r = 0; r < kRounds; ++r) {
        const size_t which = (c + r) % bindings.size();
        auto resp = client->Execute(handle.stmt_id, bindings[which],
                                    /*tenant=*/c)
                        .ValueOrDie();
        const std::vector<int64_t> want(expected[which].begin(),
                                        expected[which].end());
        if (resp.result.mask_ids != want) mismatches.fetch_add(1);
      }
      MS_EXPECT_OK(client->CloseStmt(handle.stmt_id));
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(server_->stats().protocol_errors, 0u);
}

TEST_F(NetServerTest, StopIsIdempotentWithLiveClients) {
  auto client = Connect();
  MS_ASSERT_OK(client->Ping());
  server_->Stop();
  server_->Stop();
  // The closed server is visible client-side as a dead connection.
  EXPECT_FALSE(client->Ping().ok());
}

}  // namespace
}  // namespace masksearch
