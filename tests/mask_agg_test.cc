// Tests for mask aggregation (§3.4, Q5): derived masks, derived-index
// caching, and the monotone-aggregation bounds extension.

#include <gtest/gtest.h>

#include <cstring>

#include "masksearch/baselines/full_scan.h"
#include "masksearch/exec/mask_agg.h"
#include "masksearch/index/chi_builder.h"
#include "masksearch/storage/sharded_mask_store.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::MakeStore;
using testing_util::RandomMask;
using testing_util::TempDir;

ChiConfig TestConfig() {
  ChiConfig cfg;
  cfg.cell_width = 8;
  cfg.cell_height = 8;
  cfg.num_bins = 8;
  return cfg;
}

TEST(DerivedMaskTest, IntersectThreshold) {
  Mask a(2, 2), b(2, 2);
  a.set(0, 0, 0.9f);
  b.set(0, 0, 0.85f);
  a.set(1, 0, 0.9f);
  b.set(1, 0, 0.5f);  // below threshold in b
  auto d = ComputeDerivedMask(MaskAggOp::kIntersectThreshold, 0.8, {a, b});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->at(0, 0), DerivedMaskOne());
  EXPECT_EQ(d->at(1, 0), 0.0f);
  EXPECT_EQ(d->at(0, 1), 0.0f);
}

TEST(DerivedMaskTest, UnionThreshold) {
  Mask a(2, 1), b(2, 1);
  a.set(0, 0, 0.9f);
  b.set(1, 0, 0.85f);
  auto d = ComputeDerivedMask(MaskAggOp::kUnionThreshold, 0.8, {a, b});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->at(0, 0), DerivedMaskOne());
  EXPECT_EQ(d->at(1, 0), DerivedMaskOne());
}

TEST(DerivedMaskTest, Average) {
  Mask a(1, 1), b(1, 1);
  a.set(0, 0, 0.2f);
  b.set(0, 0, 0.6f);
  auto d = ComputeDerivedMask(MaskAggOp::kAverage, 0.0, {a, b});
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d->at(0, 0), 0.4f, 1e-6);
}

TEST(DerivedMaskTest, ValidatesInputs) {
  EXPECT_TRUE(ComputeDerivedMask(MaskAggOp::kAverage, 0, {})
                  .status()
                  .IsInvalidArgument());
  Mask a(2, 2), b(3, 3);
  EXPECT_TRUE(ComputeDerivedMask(MaskAggOp::kAverage, 0, {a, b})
                  .status()
                  .IsInvalidArgument());
}

TEST(DerivedIndexCacheTest, PutGetAndFirstWins) {
  DerivedIndexCache cache(TestConfig());
  EXPECT_EQ(cache.Get(7), nullptr);
  Rng rng(1);
  Mask m = RandomMask(&rng, 16, 16);
  cache.Put(7, BuildChi(m, TestConfig()));
  const std::shared_ptr<const Chi> first = cache.Get(7);
  ASSERT_NE(first, nullptr);
  cache.Put(7, BuildChi(RandomMask(&rng, 16, 16), TestConfig()));
  EXPECT_EQ(cache.Get(7).get(), first.get());
  EXPECT_EQ(cache.size(), 1u);
}

class MaskAggExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("maskagg");
    store_ = MakeStore(dir_->path(), 16, 2, 48, 48, /*seed=*/55);
    index_ = std::make_unique<IndexManager>(store_->num_masks(), TestConfig());
    MS_ASSERT_OK(index_->BuildAll(*store_));
    store_->ResetCounters();
  }

  MaskAggQuery IntersectQuery(size_t k) const {
    MaskAggQuery q;
    q.op = MaskAggOp::kIntersectThreshold;
    q.agg_threshold = 0.7;
    q.term.roi_source = RoiSource::kObjectBox;
    q.term.range = ValueRange(0.7, 1.0);  // counts the "1" pixels
    q.group_key = GroupKey::kImageId;
    q.k = k;
    q.descending = true;
    return q;
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<MaskStore> store_;
  std::unique_ptr<IndexManager> index_;
};

TEST_F(MaskAggExecTest, IntersectTopKMatchesReference) {
  const MaskAggQuery q = IntersectQuery(5);
  DerivedIndexCache cache(TestConfig());
  auto got = ExecuteMaskAgg(*store_, index_.get(), &cache, q);
  ASSERT_TRUE(got.ok()) << got.status();
  FullScanBaseline reference(store_.get());
  auto want = reference.MaskAggregate(q);
  ASSERT_TRUE(want.ok());
  ASSERT_EQ(got->groups.size(), want->groups.size());
  for (size_t i = 0; i < got->groups.size(); ++i) {
    EXPECT_EQ(got->groups[i].group, want->groups[i].group) << "rank " << i;
    EXPECT_DOUBLE_EQ(got->groups[i].value, want->groups[i].value);
  }
}

TEST_F(MaskAggExecTest, UnionAndAverageMatchReference) {
  FullScanBaseline reference(store_.get());
  for (MaskAggOp op : {MaskAggOp::kUnionThreshold, MaskAggOp::kAverage}) {
    MaskAggQuery q = IntersectQuery(4);
    q.op = op;
    if (op == MaskAggOp::kAverage) q.term.range = ValueRange(0.5, 1.0);
    DerivedIndexCache cache(TestConfig());
    auto got = ExecuteMaskAgg(*store_, index_.get(), &cache, q);
    ASSERT_TRUE(got.ok());
    auto want = reference.MaskAggregate(q);
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(got->groups.size(), want->groups.size());
    for (size_t i = 0; i < got->groups.size(); ++i) {
      EXPECT_EQ(got->groups[i].group, want->groups[i].group);
      EXPECT_DOUBLE_EQ(got->groups[i].value, want->groups[i].value);
    }
  }
}

TEST_F(MaskAggExecTest, MemberBoundsPruneWithoutDerivedIndex) {
  // Even with no derived CHIs cached, the member-CHI bounds (§3.4 extension)
  // must prune some groups for a selective having predicate.
  MaskAggQuery q = IntersectQuery(0);
  q.k.reset();
  q.having_op = CompareOp::kGt;
  q.having_threshold = 1e9;  // nothing passes; member upper bounds prove it
  auto r = ExecuteMaskAgg(*store_, index_.get(), nullptr, q);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->groups.empty());
  EXPECT_EQ(r->stats.masks_loaded, 0);
}

TEST_F(MaskAggExecTest, DerivedCacheAmortizesLoads) {
  const MaskAggQuery q = IntersectQuery(5);
  DerivedIndexCache cache(TestConfig());
  auto first = ExecuteMaskAgg(*store_, index_.get(), &cache, q);
  ASSERT_TRUE(first.ok());
  const int64_t first_loads = first->stats.masks_loaded;
  EXPECT_GT(cache.size(), 0u);

  auto second = ExecuteMaskAgg(*store_, index_.get(), &cache, q);
  ASSERT_TRUE(second.ok());
  EXPECT_LE(second->stats.masks_loaded, first_loads);
  ASSERT_EQ(second->groups.size(), first->groups.size());
  for (size_t i = 0; i < first->groups.size(); ++i) {
    EXPECT_EQ(second->groups[i].group, first->groups[i].group);
    EXPECT_DOUBLE_EQ(second->groups[i].value, first->groups[i].value);
  }
}

TEST_F(MaskAggExecTest, ZeroRangeCountsComplement) {
  // CP over the derived mask counting *zero* pixels (range excludes the ONE
  // value): complement accounting in the member-derived bounds.
  MaskAggQuery q = IntersectQuery(4);
  q.term.range = ValueRange(0.0, 0.5);
  DerivedIndexCache cache(TestConfig());
  auto got = ExecuteMaskAgg(*store_, index_.get(), &cache, q);
  ASSERT_TRUE(got.ok());
  FullScanBaseline reference(store_.get());
  auto want = reference.MaskAggregate(q);
  ASSERT_TRUE(want.ok());
  ASSERT_EQ(got->groups.size(), want->groups.size());
  for (size_t i = 0; i < got->groups.size(); ++i) {
    EXPECT_EQ(got->groups[i].group, want->groups[i].group);
    EXPECT_DOUBLE_EQ(got->groups[i].value, want->groups[i].value);
  }
}

TEST_F(MaskAggExecTest, AheadOfTimeDerivedIndexBuild) {
  // §3.4: derived indexes "built ahead of time". After BuildDerivedIndexes,
  // a selective HAVING query runs without loading any mask.
  const MaskAggQuery q = IntersectQuery(5);
  DerivedIndexCache cache(TestConfig());
  MS_ASSERT_OK(BuildDerivedIndexes(*store_, q.selection, q.op,
                                   q.agg_threshold, q.group_key, &cache));
  EXPECT_EQ(cache.size(), 16u);  // one derived CHI per image

  MaskAggQuery having = q;
  having.k.reset();
  having.having_op = CompareOp::kGt;
  having.having_threshold = 1e9;  // certainly false from bounds
  auto r = ExecuteMaskAgg(*store_, index_.get(), &cache, having);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.masks_loaded, 0);

  // Results via the prebuilt cache equal the reference.
  auto got = ExecuteMaskAgg(*store_, index_.get(), &cache, q);
  ASSERT_TRUE(got.ok());
  FullScanBaseline reference(store_.get());
  auto want = reference.MaskAggregate(q);
  ASSERT_TRUE(want.ok());
  ASSERT_EQ(got->groups.size(), want->groups.size());
  for (size_t i = 0; i < got->groups.size(); ++i) {
    EXPECT_EQ(got->groups[i].group, want->groups[i].group);
    EXPECT_DOUBLE_EQ(got->groups[i].value, want->groups[i].value);
  }
  // Idempotent: a second build call touches nothing.
  const uint64_t loads_before = store_->masks_loaded();
  MS_ASSERT_OK(BuildDerivedIndexes(*store_, q.selection, q.op,
                                   q.agg_threshold, q.group_key, &cache));
  EXPECT_EQ(store_->masks_loaded(), loads_before);
}

TEST_F(MaskAggExecTest, InvalidQueriesRejected) {
  MaskAggQuery neither = IntersectQuery(0);
  neither.k.reset();
  EXPECT_TRUE(ExecuteMaskAgg(*store_, index_.get(), nullptr, neither)
                  .status()
                  .IsInvalidArgument());
}

// Parallel batched verification must return byte-identical results to the
// serial schedule, and its filter-stage stats must stay consistent: the
// same groups are partitioned across pruned / accepted / candidates, with
// batching (and prefetch-ahead) only allowed to move groups from pruned to
// candidates (stale heap at decision time — strictly conservative).
class MaskAggParallelTest : public MaskAggExecTest {
 protected:
  /// Runs the query under `parallel` and compares against the exact serial
  /// schedule on the same store.
  void ExpectMatchesSerial(const MaskStore& store, const MaskAggQuery& q,
                           const EngineOptions& parallel) {
    EngineOptions serial;
    serial.pool = nullptr;  // batch size degenerates to 1: exact serial path
    DerivedIndexCache serial_cache(TestConfig());
    auto want = ExecuteMaskAgg(store, index_.get(), &serial_cache, q, serial);
    ASSERT_TRUE(want.ok()) << want.status();

    DerivedIndexCache parallel_cache(TestConfig());
    auto got =
        ExecuteMaskAgg(store, index_.get(), &parallel_cache, q, parallel);
    ASSERT_TRUE(got.ok()) << got.status();

    ASSERT_EQ(got->groups.size(), want->groups.size());
    for (size_t i = 0; i < want->groups.size(); ++i) {
      EXPECT_EQ(got->groups[i].group, want->groups[i].group) << "rank " << i;
      // Byte-identical values (both are exact integer counts or identical
      // tight bounds).
      EXPECT_EQ(std::memcmp(&got->groups[i].value, &want->groups[i].value,
                            sizeof(double)),
                0)
          << "rank " << i;
    }
    const ExecStats& ps = got->stats;
    const ExecStats& ss = want->stats;
    EXPECT_EQ(ps.pruned + ps.accepted_by_bounds + ps.candidates,
              ss.pruned + ss.accepted_by_bounds + ss.candidates);
    // Batching can only move serial-pruned groups into the other buckets.
    EXPECT_LE(ps.pruned, ss.pruned);
    EXPECT_GE(ps.accepted_by_bounds, ss.accepted_by_bounds);
    EXPECT_GE(ps.candidates, ss.candidates);
    // Every group the serial run indexed is indexed by the parallel run too.
    EXPECT_GE(parallel_cache.size(), serial_cache.size());
  }

  void ExpectParallelMatchesSerial(const MaskAggQuery& q) {
    ThreadPool pool(4);
    EngineOptions parallel;
    parallel.pool = &pool;
    parallel.agg_verify_batch = 8;
    ExpectMatchesSerial(*store_, q, parallel);
  }

  /// The overlapped pipeline (io_pool + prefetch-ahead) over a sharded copy
  /// of the store, with shard-parallel batch reads — the full PR 3
  /// configuration — must still match the serial schedule byte for byte.
  void ExpectOverlappedShardedMatchesSerial(const MaskAggQuery& q) {
    TempDir sharded_dir("maskagg_sharded");
    MS_ASSERT_OK(ReshardMaskStore(*store_, sharded_dir.path(), 4));
    ThreadPool pool(4);
    ThreadPool io_pool(3);
    MaskStore::Options sopts;
    sopts.io_pool = &io_pool;
    auto sharded = MaskStore::Open(sharded_dir.path(), sopts).ValueOrDie();

    EngineOptions overlapped;
    overlapped.pool = &pool;
    overlapped.io_pool = &io_pool;
    overlapped.agg_verify_batch = 4;
    overlapped.inflight_batches = 2;
    overlapped.prefetch_depth = 2;
    ExpectMatchesSerial(*sharded, q, overlapped);

    // io_pool aliasing the compute pool must also be safe (ParallelFor
    // caller participation keeps nested loops deadlock-free).
    EngineOptions aliased = overlapped;
    aliased.io_pool = &pool;
    ExpectMatchesSerial(*sharded, q, aliased);
  }
};

TEST_F(MaskAggParallelTest, TopKDeterministic) {
  for (MaskAggOp op : {MaskAggOp::kIntersectThreshold,
                       MaskAggOp::kUnionThreshold, MaskAggOp::kAverage}) {
    MaskAggQuery q = IntersectQuery(5);
    q.op = op;
    ExpectParallelMatchesSerial(q);
  }
}

TEST_F(MaskAggParallelTest, TopKAscendingWithHavingDeterministic) {
  MaskAggQuery q = IntersectQuery(4);
  q.descending = false;
  q.having_op = CompareOp::kGt;
  q.having_threshold = 10.0;
  ExpectParallelMatchesSerial(q);
}

TEST_F(MaskAggParallelTest, HavingOnlyDeterministic) {
  MaskAggQuery q = IntersectQuery(0);
  q.k.reset();
  q.having_op = CompareOp::kGt;
  q.having_threshold = 50.0;
  ExpectParallelMatchesSerial(q);
}

TEST_F(MaskAggParallelTest, OverlappedShardedTopKDeterministic) {
  for (MaskAggOp op : {MaskAggOp::kIntersectThreshold,
                       MaskAggOp::kUnionThreshold, MaskAggOp::kAverage}) {
    MaskAggQuery q = IntersectQuery(5);
    q.op = op;
    ExpectOverlappedShardedMatchesSerial(q);
  }
}

TEST_F(MaskAggParallelTest, OverlappedShardedHavingOnlyDeterministic) {
  MaskAggQuery q = IntersectQuery(0);
  q.k.reset();
  q.having_op = CompareOp::kGt;
  q.having_threshold = 50.0;
  ExpectOverlappedShardedMatchesSerial(q);
}

TEST_F(MaskAggParallelTest, OverlappedShardedAscendingWithHavingDeterministic) {
  MaskAggQuery q = IntersectQuery(4);
  q.descending = false;
  q.having_op = CompareOp::kGt;
  q.having_threshold = 10.0;
  ExpectOverlappedShardedMatchesSerial(q);
}

TEST_F(MaskAggParallelTest, ParallelMatchesFullScanReference) {
  ThreadPool pool(3);
  EngineOptions opts;
  opts.pool = &pool;
  const MaskAggQuery q = IntersectQuery(5);
  DerivedIndexCache cache(TestConfig());
  auto got = ExecuteMaskAgg(*store_, index_.get(), &cache, q, opts);
  ASSERT_TRUE(got.ok());
  FullScanBaseline reference(store_.get());
  auto want = reference.MaskAggregate(q);
  ASSERT_TRUE(want.ok());
  ASSERT_EQ(got->groups.size(), want->groups.size());
  for (size_t i = 0; i < got->groups.size(); ++i) {
    EXPECT_EQ(got->groups[i].group, want->groups[i].group);
    EXPECT_DOUBLE_EQ(got->groups[i].value, want->groups[i].value);
  }
}

TEST_F(MaskAggExecTest, RepeatedQueryDoesNotRebuildDerivedChis) {
  const MaskAggQuery q = IntersectQuery(5);
  DerivedIndexCache cache(TestConfig());
  auto first = ExecuteMaskAgg(*store_, index_.get(), &cache, q);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first->stats.chis_built, 0);
  const size_t cached = cache.size();

  // Every verified group's derived CHI is now cached: a repeat of the same
  // query must not pay any CHI build again.
  auto second = ExecuteMaskAgg(*store_, index_.get(), &cache, q);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.chis_built, 0);
  EXPECT_EQ(cache.size(), cached);
}

TEST_F(MaskAggExecTest, UnbatchedIoMatchesBatched) {
  MaskAggQuery q = IntersectQuery(6);
  EngineOptions batched;
  EngineOptions unbatched;
  unbatched.batch_io = false;
  DerivedIndexCache c1(TestConfig()), c2(TestConfig());
  auto a = ExecuteMaskAgg(*store_, index_.get(), &c1, q, batched);
  auto b = ExecuteMaskAgg(*store_, index_.get(), &c2, q, unbatched);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->groups.size(), b->groups.size());
  for (size_t i = 0; i < a->groups.size(); ++i) {
    EXPECT_EQ(a->groups[i].group, b->groups[i].group);
    EXPECT_DOUBLE_EQ(a->groups[i].value, b->groups[i].value);
  }
  EXPECT_EQ(a->stats.masks_loaded, b->stats.masks_loaded);
}

}  // namespace
}  // namespace masksearch
