// Tests for NumPy .npy interchange.

#include <gtest/gtest.h>

#include <cstring>

#include "masksearch/storage/npy.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::RandomMask;
using testing_util::TempDir;

TEST(NpyTest, RoundTripFloat32) {
  Rng rng(1);
  const Mask m = RandomMask(&rng, 33, 17);
  auto decoded = DecodeNpy(EncodeNpy(m));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->width(), 33);
  EXPECT_EQ(decoded->height(), 17);
  EXPECT_EQ(decoded->data(), m.data());
}

TEST(NpyTest, HeaderLayoutIsNumpyCompatible) {
  Rng rng(2);
  const std::string blob = EncodeNpy(RandomMask(&rng, 4, 3));
  ASSERT_GE(blob.size(), 10u);
  EXPECT_EQ(blob.compare(0, 6, "\x93NUMPY"), 0);
  EXPECT_EQ(blob[6], '\x01');
  EXPECT_EQ(blob[7], '\x00');
  const uint16_t hlen = static_cast<uint8_t>(blob[8]) |
                        (static_cast<uint16_t>(static_cast<uint8_t>(blob[9])) << 8);
  // Magic + version + len + header must be 64-aligned, header ends in '\n'.
  EXPECT_EQ((10 + hlen) % 64, 0u);
  EXPECT_EQ(blob[10 + hlen - 1], '\n');
  const std::string header = blob.substr(10, hlen);
  EXPECT_NE(header.find("'descr': '<f4'"), std::string::npos);
  EXPECT_NE(header.find("'fortran_order': False"), std::string::npos);
  EXPECT_NE(header.find("(3, 4)"), std::string::npos);  // (rows, cols)
}

TEST(NpyTest, DecodesFloat64) {
  // Hand-build a tiny <f8 NPY blob.
  std::string header =
      "{'descr': '<f8', 'fortran_order': False, 'shape': (1, 2), }";
  size_t total = 10 + header.size() + 1;
  header.append((total + 63) / 64 * 64 - total, ' ');
  header.push_back('\n');
  std::string blob("\x93NUMPY\x01\x00", 8);
  blob.push_back(static_cast<char>(header.size() & 0xff));
  blob.push_back(static_cast<char>(header.size() >> 8));
  blob += header;
  const double values[2] = {0.25, 0.75};
  blob.append(reinterpret_cast<const char*>(values), sizeof(values));

  auto mask = DecodeNpy(blob);
  ASSERT_TRUE(mask.ok()) << mask.status();
  EXPECT_EQ(mask->width(), 2);
  EXPECT_EQ(mask->height(), 1);
  EXPECT_FLOAT_EQ(mask->at(0, 0), 0.25f);
  EXPECT_FLOAT_EQ(mask->at(1, 0), 0.75f);
}

TEST(NpyTest, OutOfDomainValuesClamped) {
  // NPY import may carry values at or above 1.0; the mask domain is [0, 1).
  Mask m(2, 1);
  m.set(0, 0, 0.5f);
  std::string blob = EncodeNpy(m);
  // Patch the first payload float to 1.5.
  const float big = 1.5f;
  std::memcpy(blob.data() + blob.size() - 2 * sizeof(float), &big,
              sizeof(big));
  auto decoded = DecodeNpy(blob);
  ASSERT_TRUE(decoded.ok());
  EXPECT_LT(decoded->at(0, 0), 1.0f);
}

TEST(NpyTest, FileRoundTrip) {
  TempDir dir("npy");
  Rng rng(3);
  const Mask m = RandomMask(&rng, 12, 12);
  MS_ASSERT_OK(WriteNpyFile(dir.file("m.npy"), m));
  auto loaded = ReadNpyFile(dir.file("m.npy"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->data(), m.data());
}

TEST(NpyTest, RejectsGarbageAndUnsupported) {
  EXPECT_TRUE(DecodeNpy("not numpy at all").status().IsCorruption());
  EXPECT_TRUE(DecodeNpy(std::string()).status().IsCorruption());

  Rng rng(4);
  std::string blob = EncodeNpy(RandomMask(&rng, 4, 4));
  // Truncate payload.
  std::string truncated = blob.substr(0, blob.size() - 8);
  EXPECT_TRUE(DecodeNpy(truncated).status().IsCorruption());
  // Unsupported version.
  std::string v2 = blob;
  v2[6] = '\x02';
  EXPECT_TRUE(DecodeNpy(v2).status().IsNotImplemented());
}

}  // namespace
}  // namespace masksearch
