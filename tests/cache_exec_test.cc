// Executor-level tests of the memory subsystem (docs/CACHING.md):
// cached-vs-uncached byte parity on filter / top-k / scalar-agg / mask-agg
// queries (warm passes and thrashing budgets included), the bounded
// per-mask CHI-cache hook (EngineOptions::chi_cache), Session cache
// threading, and a pin-safety stress under the concurrent overlapped
// ExecuteMaskAgg pipelines (the TSan lane runs this suite).

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "masksearch/cache/buffer_pool.h"
#include "masksearch/cache/cached_mask_store.h"
#include "masksearch/exec/filter_executor.h"
#include "masksearch/exec/mask_agg.h"
#include "masksearch/exec/session.h"
#include "masksearch/exec/topk_executor.h"
#include "masksearch/storage/sharded_mask_store.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::MakeStore;
using testing_util::TempDir;

ChiConfig TestConfig() {
  ChiConfig cfg;
  cfg.cell_width = cfg.cell_height = 8;
  cfg.num_bins = 8;
  return cfg;
}

FilterQuery MakeFilter() {
  FilterQuery q;
  q.terms.push_back(CpTerm{RoiSource::kObjectBox, ROI(), ValueRange(0.6, 1.0)});
  q.predicate = Predicate::Compare(CpExpr::Term(0), CompareOp::kGt, 120.0);
  return q;
}

TopKQuery MakeTopK() {
  TopKQuery q;
  q.terms.push_back(CpTerm{RoiSource::kObjectBox, ROI(), ValueRange(0.7, 1.0)});
  q.order_expr = CpExpr::Term(0);
  q.k = 6;
  q.descending = true;
  return q;
}

MaskAggQuery MakeMaskAgg() {
  MaskAggQuery q;
  q.op = MaskAggOp::kIntersectThreshold;
  q.agg_threshold = 0.6;
  q.term.roi_source = RoiSource::kObjectBox;
  q.term.range = ValueRange(0.6, 1.0);
  q.group_key = GroupKey::kImageId;
  q.k = 5;
  q.descending = true;
  return q;
}

/// A store opened three ways over one directory: uncached (reference),
/// cached with an ample budget, and cached with a thrashing budget.
class CachedExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("cacheexec");
    plain_ = MakeStore(dir_->path(), 14, 2, 40, 40, /*seed=*/91);

    BufferPool::Options big;
    big.budget_bytes = 64ull << 20;
    pool_ = std::make_shared<BufferPool>(big);
    MaskStore::Options copts;
    copts.cache = pool_;
    cached_ = MaskStore::Open(dir_->path(), copts).ValueOrDie();

    BufferPool::Options tiny;
    tiny.budget_bytes = 3 * (40 * 40 * sizeof(float) + 256);
    tiny.shards = 1;
    MaskStore::Options topts;
    topts.cache = std::make_shared<BufferPool>(tiny);
    thrash_ = MaskStore::Open(dir_->path(), topts).ValueOrDie();

    index_ = std::make_unique<IndexManager>(plain_->num_masks(), TestConfig());
    MS_ASSERT_OK(index_->BuildAll(*plain_));
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<MaskStore> plain_;
  std::shared_ptr<BufferPool> pool_;
  std::unique_ptr<MaskStore> cached_;
  std::unique_ptr<MaskStore> thrash_;
  std::unique_ptr<IndexManager> index_;
};

TEST_F(CachedExecTest, FilterByteParityColdWarmAndThrashing) {
  const FilterQuery q = MakeFilter();
  const FilterResult want = ExecuteFilter(*plain_, index_.get(), q).ValueOrDie();
  for (MaskStore* store : {cached_.get(), thrash_.get()}) {
    for (int pass = 0; pass < 3; ++pass) {
      const FilterResult got =
          ExecuteFilter(*store, index_.get(), q).ValueOrDie();
      EXPECT_EQ(got.mask_ids, want.mask_ids);
      EXPECT_EQ(got.stats.candidates, want.stats.candidates);
    }
  }
  if (want.stats.candidates > 0) {
    EXPECT_GT(pool_->Stats().hits, 0u);  // warm passes hit memory
  }
}

TEST_F(CachedExecTest, TopKByteParityColdWarmAndThrashing) {
  const TopKQuery q = MakeTopK();
  const TopKResult want = ExecuteTopK(*plain_, index_.get(), q).ValueOrDie();
  for (MaskStore* store : {cached_.get(), thrash_.get()}) {
    for (int pass = 0; pass < 3; ++pass) {
      const TopKResult got = ExecuteTopK(*store, index_.get(), q).ValueOrDie();
      ASSERT_EQ(got.items.size(), want.items.size());
      for (size_t i = 0; i < want.items.size(); ++i) {
        EXPECT_EQ(got.items[i].mask_id, want.items[i].mask_id);
        EXPECT_EQ(std::memcmp(&got.items[i].value, &want.items[i].value,
                              sizeof(double)),
                  0);
      }
    }
  }
}

TEST_F(CachedExecTest, MaskAggByteParityColdWarmAndThrashing) {
  const MaskAggQuery q = MakeMaskAgg();
  DerivedIndexCache ref_cache(TestConfig());
  const AggResult want =
      ExecuteMaskAgg(*plain_, index_.get(), &ref_cache, q).ValueOrDie();
  for (MaskStore* store : {cached_.get(), thrash_.get()}) {
    DerivedIndexCache cache(TestConfig(), pool_);
    for (int pass = 0; pass < 3; ++pass) {
      const AggResult got =
          ExecuteMaskAgg(*store, index_.get(), &cache, q).ValueOrDie();
      ASSERT_EQ(got.groups.size(), want.groups.size());
      for (size_t i = 0; i < want.groups.size(); ++i) {
        EXPECT_EQ(got.groups[i].group, want.groups[i].group);
        EXPECT_EQ(std::memcmp(&got.groups[i].value, &want.groups[i].value,
                              sizeof(double)),
                  0);
      }
    }
  }
}

TEST_F(CachedExecTest, WarmPassAvoidsPhysicalIo) {
  const FilterQuery q = MakeFilter();
  cached_->ResetCounters();
  (void)ExecuteFilter(*cached_, index_.get(), q).ValueOrDie();
  const uint64_t cold_loads = cached_->masks_loaded();
  (void)ExecuteFilter(*cached_, index_.get(), q).ValueOrDie();
  // The warm pass verifies the same candidates without touching storage.
  EXPECT_EQ(cached_->masks_loaded(), cold_loads);
  if (cold_loads > 0) {
    auto* c = static_cast<CachedMaskStore*>(cached_.get());
    EXPECT_GT(c->cache_hits(), 0u);
  }
}

// --- the bounded per-mask CHI-cache hook ---

TEST_F(CachedExecTest, ChiCacheSuppliesBoundsOnSecondPass) {
  // No IndexManager at all: the first pass must verify everything; the
  // second pass gets bounds from the chi_cache and prunes/accepts whatever
  // is bound-decidable — with byte-identical result sets.
  ChiCache chi_cache(pool_, TestConfig());
  EngineOptions opts;
  opts.chi_cache = &chi_cache;

  const FilterQuery q = MakeFilter();
  const FilterResult want = ExecuteFilter(*plain_, nullptr, q).ValueOrDie();

  const FilterResult first =
      ExecuteFilter(*cached_, nullptr, q, opts).ValueOrDie();
  EXPECT_EQ(first.mask_ids, want.mask_ids);
  EXPECT_EQ(first.stats.candidates, first.stats.masks_targeted);
  EXPECT_EQ(first.stats.chis_built, first.stats.masks_targeted);
  EXPECT_EQ(static_cast<int64_t>(chi_cache.size()), first.stats.chis_built);

  const FilterResult second =
      ExecuteFilter(*cached_, nullptr, q, opts).ValueOrDie();
  EXPECT_EQ(second.mask_ids, want.mask_ids);
  EXPECT_EQ(second.stats.chis_built, 0);  // already cached, never rebuilt
  EXPECT_LE(second.stats.candidates, first.stats.candidates);
  EXPECT_GT(second.stats.pruned + second.stats.accepted_by_bounds, 0);

  // Top-k through the same cache: parity with the index-less reference.
  const TopKQuery tq = MakeTopK();
  const TopKResult twant = ExecuteTopK(*plain_, nullptr, tq).ValueOrDie();
  const TopKResult tgot =
      ExecuteTopK(*cached_, nullptr, tq, opts).ValueOrDie();
  ASSERT_EQ(tgot.items.size(), twant.items.size());
  for (size_t i = 0; i < twant.items.size(); ++i) {
    EXPECT_EQ(tgot.items[i].mask_id, twant.items[i].mask_id);
    EXPECT_EQ(tgot.items[i].value, twant.items[i].value);
  }
}

TEST_F(CachedExecTest, SessionThreadsCacheThroughQueries) {
  SessionOptions sopts;
  sopts.chi = TestConfig();
  sopts.cache = pool_;
  auto session = Session::Open(cached_.get(), sopts).ValueOrDie();
  ASSERT_NE(session->cache(), nullptr);
  ASSERT_NE(session->chi_cache(), nullptr);

  const MaskAggQuery q = MakeMaskAgg();
  const AggResult first = session->MaskAggregate(q).ValueOrDie();
  // Derived CHIs land in the pool-backed per-template cache.
  auto* derived = session->derived_cache(q.op, q.agg_threshold);
  EXPECT_TRUE(derived->bounded());
  EXPECT_GT(derived->size(), 0u);

  cached_->ResetCounters();
  const AggResult second = session->MaskAggregate(q).ValueOrDie();
  ASSERT_EQ(second.groups.size(), first.groups.size());
  for (size_t i = 0; i < first.groups.size(); ++i) {
    EXPECT_EQ(second.groups[i].group, first.groups[i].group);
    EXPECT_EQ(second.groups[i].value, first.groups[i].value);
  }
  // The repeat run answers from derived CHIs + cached blobs: no storage.
  EXPECT_EQ(cached_->masks_loaded(), 0u);

  // A session without a pool keeps the legacy unbounded caches.
  SessionOptions legacy;
  legacy.chi = TestConfig();
  auto plain_session = Session::Open(plain_.get(), legacy).ValueOrDie();
  EXPECT_EQ(plain_session->cache(), nullptr);
  EXPECT_FALSE(
      plain_session->derived_cache(q.op, q.agg_threshold)->bounded());
}

TEST_F(CachedExecTest, SessionBudgetKnobCreatesPrivatePool) {
  SessionOptions sopts;
  sopts.chi = TestConfig();
  sopts.cache_budget_bytes = 8ull << 20;
  sopts.cache_shards = 2;
  auto session = Session::Open(plain_.get(), sopts).ValueOrDie();
  ASSERT_NE(session->cache(), nullptr);
  EXPECT_EQ(session->cache()->options().budget_bytes, 8ull << 20);
  EXPECT_EQ(session->cache()->options().shards, 2);
  (void)session->MaskAggregate(MakeMaskAgg()).ValueOrDie();
  EXPECT_GT(session->cache()->Stats().insertions, 0u);
}

// --- pin-safety stress under the concurrent overlapped pipelines ---
//
// A small shared pool (forced eviction) behind a sharded store, with the
// double-buffered ExecuteMaskAgg pipeline and a LoadMaskBatch hammer
// running concurrently. Pinning must keep every in-flight batch's entries
// resident until copied out; TSan must see no races. Results must be
// byte-identical across threads and repetitions.
TEST(CachePinStressTest, ConcurrentMaskAggAndBatchLoads) {
  TempDir dir("cachestress");
  auto seed_store = MakeStore(dir.path(), 12, 2, 32, 32, /*seed=*/17);
  TempDir sharded_dir("cachestress_sharded");
  MS_ASSERT_OK(ReshardMaskStore(*seed_store, sharded_dir.path(), 4));

  BufferPool::Options popts;
  // ~5 decoded 32x32 masks: far below the 24-mask working set.
  popts.budget_bytes = 5 * (32 * 32 * sizeof(float) + 256);
  popts.shards = 2;
  auto pool = std::make_shared<BufferPool>(popts);

  ThreadPool io_pool(3);
  MaskStore::Options sopts;
  sopts.cache = pool;
  sopts.io_pool = &io_pool;
  auto store = MaskStore::Open(sharded_dir.path(), sopts).ValueOrDie();

  IndexManager index(store->num_masks(), TestConfig());
  MS_ASSERT_OK(index.BuildAll(*seed_store));

  const MaskAggQuery q = MakeMaskAgg();
  DerivedIndexCache ref_cache(TestConfig());
  const AggResult want =
      ExecuteMaskAgg(*seed_store, &index, &ref_cache, q).ValueOrDie();

  ThreadPool compute(4);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(3);
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      EngineOptions opts;
      opts.pool = &compute;
      opts.io_pool = &io_pool;
      opts.agg_verify_batch = 3;
      opts.prefetch_depth = 2;
      for (int rep = 0; rep < 4; ++rep) {
        DerivedIndexCache cache(TestConfig(), pool);
        auto got = ExecuteMaskAgg(*store, &index, &cache, q, opts);
        if (!got.ok() || got->groups.size() != want.groups.size()) {
          ++failures;
          continue;
        }
        for (size_t i = 0; i < want.groups.size(); ++i) {
          if (got->groups[i].group != want.groups[i].group ||
              std::memcmp(&got->groups[i].value, &want.groups[i].value,
                          sizeof(double)) != 0) {
            ++failures;
          }
        }
      }
    });
  }
  threads.emplace_back([&] {
    std::vector<MaskId> ids;
    for (MaskId id = 0; id < store->num_masks(); ++id) ids.push_back(id);
    ids.push_back(3);  // dup in flight with the pipelines
    for (int rep = 0; rep < 6; ++rep) {
      auto masks = store->LoadMaskBatch(ids);
      if (!masks.ok()) ++failures;
    }
  });
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  const CacheStats stats = pool->Stats();
  EXPECT_GT(stats.evictions, 0u);  // the budget really was under pressure
  EXPECT_EQ(stats.pinned_entries, 0u);  // every pin was released
}

// Cache-aware prefetch (ROADMAP open item): once the working set is
// resident, the overlapped pipelines must stop scheduling io_pool batch
// loads — the ExecStats::prefetch_skipped counter proves the skips and the
// wrapped store's physical counters prove no reads happened.
TEST(CachePrefetchTest, WarmCacheSkipsPrefetchBatchLoads) {
  TempDir dir("cache_prefetch");
  auto plain = MakeStore(dir.path(), 14, 2, 40, 40, /*seed=*/37);

  BufferPool::Options popts;
  popts.budget_bytes = 64ull << 20;  // ample: everything stays resident
  MaskStore::Options copts;
  copts.cache = std::make_shared<BufferPool>(popts);
  auto cached = MaskStore::Open(dir.path(), copts).ValueOrDie();

  ThreadPool io(2);
  EngineOptions opts;
  opts.use_index = false;  // every mask verifies: maximal batch traffic
  opts.io_pool = &io;
  opts.filter_verify_batch = 8;
  opts.agg_verify_batch = 4;

  const FilterQuery fq = MakeFilter();
  const FilterResult cold = ExecuteFilter(*cached, nullptr, fq, opts).ValueOrDie();
  EXPECT_EQ(cold.stats.prefetch_skipped, 0);  // nothing resident yet
  const uint64_t physical_after_cold = cached->masks_loaded();
  EXPECT_GT(physical_after_cold, 0u);

  const FilterResult warm = ExecuteFilter(*cached, nullptr, fq, opts).ValueOrDie();
  EXPECT_EQ(warm.mask_ids, cold.mask_ids);  // results never change
  EXPECT_GT(warm.stats.prefetch_skipped, 0);
  // The skipped batch loads were true no-ops: zero new physical reads.
  EXPECT_EQ(cached->masks_loaded(), physical_after_cold);

  // Same contract for the per-group mask-agg pipeline.
  const MaskAggQuery mq = MakeMaskAgg();
  const AggResult agg_cold =
      ExecuteMaskAgg(*cached, nullptr, nullptr, mq, opts).ValueOrDie();
  const uint64_t physical_after_agg = cached->masks_loaded();
  const AggResult agg_warm =
      ExecuteMaskAgg(*cached, nullptr, nullptr, mq, opts).ValueOrDie();
  ASSERT_EQ(agg_warm.groups.size(), agg_cold.groups.size());
  for (size_t i = 0; i < agg_cold.groups.size(); ++i) {
    EXPECT_EQ(agg_warm.groups[i].group, agg_cold.groups[i].group);
    EXPECT_EQ(agg_warm.groups[i].value, agg_cold.groups[i].value);
  }
  EXPECT_GT(agg_warm.stats.prefetch_skipped, 0);
  EXPECT_EQ(cached->masks_loaded(), physical_after_agg);

  // An uncached store never reports residency, so the pipelines never skip.
  auto uncached = MaskStore::Open(dir.path()).ValueOrDie();
  const FilterResult raw = ExecuteFilter(*uncached, nullptr, fq, opts).ValueOrDie();
  EXPECT_EQ(raw.stats.prefetch_skipped, 0);
  EXPECT_EQ(raw.mask_ids, cold.mask_ids);
}

}  // namespace
}  // namespace masksearch
