// Unit tests for the on-disk MaskStore.

#include <gtest/gtest.h>

#include "masksearch/storage/mask_store.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::RandomMask;
using testing_util::TempDir;

TEST(MaskStoreTest, WriteReadRoundTripRaw) {
  TempDir dir("store");
  Rng rng(1);
  std::vector<Mask> masks;
  {
    auto writer = MaskStoreWriter::Create(dir.path()).ValueOrDie();
    for (int i = 0; i < 5; ++i) {
      Mask m = RandomMask(&rng, 16, 12);
      MaskMeta meta;
      meta.image_id = i / 2;
      meta.model_id = i % 2;
      meta.label = 3;
      meta.predicted_label = 4;
      meta.object_box = ROI(1, 2, 8, 9);
      auto id = writer->Append(meta, m);
      ASSERT_TRUE(id.ok());
      EXPECT_EQ(*id, i);
      masks.push_back(std::move(m));
    }
    MS_ASSERT_OK(writer->Finish());
  }

  auto store = MaskStore::Open(dir.path()).ValueOrDie();
  EXPECT_EQ(store->num_masks(), 5);
  EXPECT_EQ(store->kind(), StorageKind::kRawFloat32);
  for (int i = 0; i < 5; ++i) {
    const MaskMeta& meta = store->meta(i);
    EXPECT_EQ(meta.mask_id, i);
    EXPECT_EQ(meta.image_id, i / 2);
    EXPECT_EQ(meta.model_id, i % 2);
    EXPECT_EQ(meta.label, 3);
    EXPECT_EQ(meta.predicted_label, 4);
    EXPECT_EQ(meta.object_box, ROI(1, 2, 8, 9));
    auto loaded = store->LoadMask(i);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded->data(), masks[i].data());
  }
}

TEST(MaskStoreTest, CompressedRoundTrip) {
  TempDir dir("store");
  Rng rng(2);
  Mask m = testing_util::BlobMask(&rng, 64, 64);
  {
    MaskStoreWriter::Options opts;
    opts.kind = StorageKind::kCompressed;
    auto writer = MaskStoreWriter::Create(dir.path(), opts).ValueOrDie();
    writer->Append(MaskMeta{}, m).ValueOrDie();
    MS_ASSERT_OK(writer->Finish());
  }
  auto store = MaskStore::Open(dir.path()).ValueOrDie();
  EXPECT_EQ(store->kind(), StorageKind::kCompressed);
  EXPECT_LT(store->TotalDataBytes(), m.ByteSize());
  auto loaded = store->LoadMask(0);
  ASSERT_TRUE(loaded.ok());
  for (size_t i = 0; i < m.data().size(); ++i) {
    EXPECT_NEAR(loaded->data()[i], m.data()[i], 1.0 / 256.0 + 1e-6);
  }
}

TEST(MaskStoreTest, LoadCountersTrackReads) {
  TempDir dir("store");
  Rng rng(3);
  {
    auto writer = MaskStoreWriter::Create(dir.path()).ValueOrDie();
    for (int i = 0; i < 3; ++i) {
      writer->Append(MaskMeta{}, RandomMask(&rng, 8, 8)).ValueOrDie();
    }
    MS_ASSERT_OK(writer->Finish());
  }
  auto store = MaskStore::Open(dir.path()).ValueOrDie();
  EXPECT_EQ(store->masks_loaded(), 0u);
  store->LoadMask(0).ValueOrDie();
  store->LoadMask(1).ValueOrDie();
  EXPECT_EQ(store->masks_loaded(), 2u);
  EXPECT_EQ(store->bytes_read(), 2u * 8 * 8 * sizeof(float));
  store->ResetCounters();
  EXPECT_EQ(store->masks_loaded(), 0u);
  EXPECT_EQ(store->bytes_read(), 0u);
}

TEST(MaskStoreTest, MetadataAccessDoesNotTouchData) {
  TempDir dir("store");
  Rng rng(4);
  {
    auto writer = MaskStoreWriter::Create(dir.path()).ValueOrDie();
    writer->Append(MaskMeta{}, RandomMask(&rng, 8, 8)).ValueOrDie();
    MS_ASSERT_OK(writer->Finish());
  }
  auto store = MaskStore::Open(dir.path()).ValueOrDie();
  (void)store->meta(0);
  (void)store->metas();
  EXPECT_EQ(store->masks_loaded(), 0u);
  EXPECT_EQ(store->bytes_read(), 0u);
}

TEST(MaskStoreTest, LoadMaskRowsPartialRead) {
  TempDir dir("store");
  Rng rng(5);
  Mask m = RandomMask(&rng, 10, 20);
  {
    auto writer = MaskStoreWriter::Create(dir.path()).ValueOrDie();
    writer->Append(MaskMeta{}, m).ValueOrDie();
    MS_ASSERT_OK(writer->Finish());
  }
  auto store = MaskStore::Open(dir.path()).ValueOrDie();
  auto rows = store->LoadMaskRows(0, 5, 9);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->height(), 4);
  EXPECT_EQ(rows->width(), 10);
  for (int32_t y = 0; y < 4; ++y) {
    for (int32_t x = 0; x < 10; ++x) {
      EXPECT_EQ(rows->at(x, y), m.at(x, y + 5));
    }
  }
  EXPECT_EQ(store->bytes_read(), 4u * 10 * sizeof(float));
}

TEST(MaskStoreTest, LoadMaskRowsValidation) {
  TempDir dir("store");
  Rng rng(6);
  {
    auto writer = MaskStoreWriter::Create(dir.path()).ValueOrDie();
    writer->Append(MaskMeta{}, RandomMask(&rng, 4, 4)).ValueOrDie();
    MS_ASSERT_OK(writer->Finish());
  }
  auto store = MaskStore::Open(dir.path()).ValueOrDie();
  EXPECT_TRUE(store->LoadMaskRows(0, 2, 2).status().IsInvalidArgument());
  EXPECT_TRUE(store->LoadMaskRows(0, -1, 2).status().IsInvalidArgument());
  EXPECT_TRUE(store->LoadMaskRows(0, 0, 5).status().IsInvalidArgument());
}

TEST(MaskStoreTest, OutOfRangeIdIsNotFound) {
  TempDir dir("store");
  Rng rng(7);
  {
    auto writer = MaskStoreWriter::Create(dir.path()).ValueOrDie();
    writer->Append(MaskMeta{}, RandomMask(&rng, 4, 4)).ValueOrDie();
    MS_ASSERT_OK(writer->Finish());
  }
  auto store = MaskStore::Open(dir.path()).ValueOrDie();
  EXPECT_TRUE(store->LoadMask(-1).status().IsNotFound());
  EXPECT_TRUE(store->LoadMask(1).status().IsNotFound());
}

TEST(MaskStoreTest, OpenMissingDirectoryFails) {
  EXPECT_FALSE(MaskStore::Open("/nonexistent/store/dir").ok());
}

TEST(MaskStoreTest, CorruptManifestRejected) {
  TempDir dir("store");
  MS_ASSERT_OK(WriteFile(MaskStoreManifestPath(dir.path()), "garbage data"));
  MS_ASSERT_OK(WriteFile(MaskStoreDataPath(dir.path()), ""));
  EXPECT_TRUE(MaskStore::Open(dir.path()).status().IsCorruption());
}

TEST(MaskStoreTest, AppendAfterFinishFails) {
  TempDir dir("store");
  Rng rng(8);
  auto writer = MaskStoreWriter::Create(dir.path()).ValueOrDie();
  writer->Append(MaskMeta{}, RandomMask(&rng, 4, 4)).ValueOrDie();
  MS_ASSERT_OK(writer->Finish());
  EXPECT_FALSE(writer->Append(MaskMeta{}, RandomMask(&rng, 4, 4)).ok());
}

TEST(MaskStoreTest, EmptyMaskRejected) {
  TempDir dir("store");
  auto writer = MaskStoreWriter::Create(dir.path()).ValueOrDie();
  EXPECT_TRUE(
      writer->Append(MaskMeta{}, Mask()).status().IsInvalidArgument());
}

TEST(MaskStoreTest, ThrottleAccountsBytes) {
  TempDir dir("store");
  Rng rng(9);
  {
    auto writer = MaskStoreWriter::Create(dir.path()).ValueOrDie();
    writer->Append(MaskMeta{}, RandomMask(&rng, 8, 8)).ValueOrDie();
    MS_ASSERT_OK(writer->Finish());
  }
  MaskStore::Options opts;
  opts.throttle = std::make_shared<DiskThrottle>(0.0);  // accounting only
  auto store = MaskStore::Open(dir.path(), opts).ValueOrDie();
  store->LoadMask(0).ValueOrDie();
  EXPECT_EQ(opts.throttle->total_bytes(), 8u * 8 * sizeof(float));
  EXPECT_EQ(opts.throttle->total_requests(), 1u);
}

std::unique_ptr<MaskStore> MakeBatchStore(const TempDir& dir, int count,
                                          StorageKind kind,
                                          const MaskStore::Options& opts) {
  Rng rng(31);
  MaskStoreWriter::Options wopts;
  wopts.kind = kind;
  auto writer = MaskStoreWriter::Create(dir.path(), wopts).ValueOrDie();
  for (int i = 0; i < count; ++i) {
    writer->Append(MaskMeta{}, RandomMask(&rng, 12, 10)).ValueOrDie();
  }
  writer->Finish().CheckOK();
  return MaskStore::Open(dir.path(), opts).ValueOrDie();
}

TEST(MaskStoreBatchTest, MatchesSerialLoadsInInputOrder) {
  for (StorageKind kind :
       {StorageKind::kRawFloat32, StorageKind::kCompressed}) {
    TempDir dir("batch");
    auto store = MakeBatchStore(dir, 10, kind, {});
    // Shuffled order with duplicates.
    const std::vector<MaskId> ids = {7, 0, 7, 3, 9, 1, 1, 4};
    auto batch = store->LoadMaskBatch(ids);
    ASSERT_TRUE(batch.ok()) << batch.status();
    ASSERT_EQ(batch->size(), ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      auto want = store->LoadMask(ids[i]);
      ASSERT_TRUE(want.ok());
      EXPECT_EQ((*batch)[i].data(), want->data()) << "slot " << i;
    }
  }
}

TEST(MaskStoreBatchTest, CoalescesAdjacentBlobsIntoOneRequest) {
  TempDir dir("batch");
  MaskStore::Options opts;
  opts.throttle = std::make_shared<DiskThrottle>(0.0);  // accounting only
  auto store = MakeBatchStore(dir, 8, StorageKind::kRawFloat32, opts);
  const std::vector<MaskId> all = {0, 1, 2, 3, 4, 5, 6, 7};
  store->LoadMaskBatch(all).ValueOrDie();
  // The store is densely packed: the whole batch is one modeled request of
  // exactly the data bytes.
  EXPECT_EQ(opts.throttle->total_requests(), 1u);
  EXPECT_EQ(opts.throttle->total_bytes(), store->TotalDataBytes());
  EXPECT_EQ(store->masks_loaded(), 8u);
  EXPECT_EQ(store->bytes_read(), store->TotalDataBytes());
}

TEST(MaskStoreBatchTest, GapKnobControlsCoalescing) {
  const uint64_t blob = 12 * 10 * sizeof(float);
  const std::vector<MaskId> sparse = {0, 2, 4, 6};  // one-blob gaps
  {
    TempDir dir("batch");
    MaskStore::Options opts;
    opts.throttle = std::make_shared<DiskThrottle>(0.0);
    opts.batch_gap_bytes = 0;  // never read over a gap
    auto store = MakeBatchStore(dir, 8, StorageKind::kRawFloat32, opts);
    store->LoadMaskBatch(sparse).ValueOrDie();
    EXPECT_EQ(opts.throttle->total_requests(), 4u);
    EXPECT_EQ(opts.throttle->total_bytes(), 4 * blob);
  }
  {
    TempDir dir("batch");
    MaskStore::Options opts;
    opts.throttle = std::make_shared<DiskThrottle>(0.0);
    opts.batch_gap_bytes = blob;  // gaps are exactly one blob wide
    auto store = MakeBatchStore(dir, 8, StorageKind::kRawFloat32, opts);
    store->LoadMaskBatch(sparse).ValueOrDie();
    // One request spanning masks [0, 7): reads the gap blobs too.
    EXPECT_EQ(opts.throttle->total_requests(), 1u);
    EXPECT_EQ(opts.throttle->total_bytes(), 7 * blob);
  }
}

TEST(MaskStoreBatchTest, MaxBytesCapSplitsRuns) {
  const uint64_t blob = 12 * 10 * sizeof(float);
  TempDir dir("batch");
  MaskStore::Options opts;
  opts.throttle = std::make_shared<DiskThrottle>(0.0);
  opts.batch_max_bytes = 3 * blob;
  auto store = MakeBatchStore(dir, 8, StorageKind::kRawFloat32, opts);
  store->LoadMaskBatch({0, 1, 2, 3, 4, 5, 6, 7}).ValueOrDie();
  EXPECT_EQ(opts.throttle->total_requests(), 3u);  // 3 + 3 + 2 masks
  EXPECT_EQ(opts.throttle->total_bytes(), 8 * blob);
}

TEST(MaskStoreBatchTest, EmptyAndInvalidIds) {
  TempDir dir("batch");
  auto store = MakeBatchStore(dir, 3, StorageKind::kRawFloat32, {});
  auto empty = store->LoadMaskBatch({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  EXPECT_TRUE(store->LoadMaskBatch({0, 99}).status().IsNotFound());
  EXPECT_TRUE(store->LoadMaskBatch({-1}).status().IsNotFound());
  // A failed batch performs no reads.
  EXPECT_EQ(store->masks_loaded(), 0u);
}

TEST(MaskStoreTest, TotalDataBytesMatchesBlobSizes) {
  TempDir dir("batch");
  auto store = MakeBatchStore(dir, 6, StorageKind::kRawFloat32, {});
  uint64_t want = 0;
  for (MaskId id = 0; id < store->num_masks(); ++id) {
    want += store->BlobSize(id);
  }
  EXPECT_EQ(store->TotalDataBytes(), want);
}

}  // namespace
}  // namespace masksearch
