// Epoch-snapshot visibility suite (docs/INGEST.md): a query admitted at
// epoch E never observes masks published after E; re-running the same
// query against a pinned Snapshot is byte-identical no matter how many
// epochs writers publish meanwhile; releasing the last reference to a
// Snapshot unpins it promptly; and Open() resumes exactly at the last
// durable epoch.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "masksearch/catalog/catalog.h"
#include "masksearch/ingest/ingestor.h"
#include "masksearch/service/query_service.h"
#include "masksearch/workload/query_gen.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::BlobMask;
using testing_util::TempDir;

ChiConfig TestConfig() {
  ChiConfig cfg;
  cfg.cell_width = cfg.cell_height = 8;
  cfg.num_bins = 8;
  return cfg;
}

IngestorOptions TestIngestOptions() {
  IngestorOptions opts;
  opts.chi = TestConfig();
  opts.num_shards = 3;
  opts.cache_budget_bytes = 8ull << 20;
  return opts;
}

MaskMeta MetaFor(int64_t image, int32_t model) {
  MaskMeta meta;
  meta.image_id = image;
  meta.model_id = model;
  meta.mask_type = MaskType::kSaliencyMap;
  return meta;
}

/// Appends `n` deterministic masks (32x32) and returns them.
std::vector<Mask> AppendMasks(Ingestor* ingestor, Rng* rng, int64_t n,
                              int64_t first_image) {
  std::vector<Mask> out;
  for (int64_t i = 0; i < n; ++i) {
    Mask mask = BlobMask(rng, 32, 32);
    auto id = ingestor->Append(MetaFor(first_image + i, /*model=*/0), mask);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    out.push_back(std::move(mask));
  }
  return out;
}

/// A filter query every snapshot can answer (no store-derived selection).
FilterQuery WholeRoiFilter() {
  FilterQuery q;
  CpTerm term;
  term.roi_source = RoiSource::kConstant;
  term.constant_roi = ROI{0, 0, 32, 32};
  term.range = ValueRange{0.5, 1.0};
  q.terms = {term};
  q.predicate = Predicate::Compare(CpExpr::Term(0), CompareOp::kGt, 100.0);
  return q;
}

TEST(IngestTest, CreatePublishesEmptyEpochZero) {
  TempDir dir("ingest_create");
  auto ingestor = Ingestor::Create(dir.path(), TestIngestOptions()).ValueOrDie();
  EXPECT_EQ(ingestor->epoch(), 0);
  EXPECT_EQ(ingestor->watermark(), 0);
  std::shared_ptr<const Snapshot> snap = ingestor->snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->epoch(), 0);
  EXPECT_EQ(snap->watermark(), 0);
  EXPECT_EQ(snap->store().num_masks(), 0);
  ASSERT_NE(snap->session(), nullptr);
  // The empty snapshot answers queries (with empty results), not errors.
  auto result = snap->session()->Filter(WholeRoiFilter());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->mask_ids.empty());
}

TEST(IngestTest, AppendsInvisibleUntilPublish) {
  TempDir dir("ingest_visibility");
  auto ingestor = Ingestor::Create(dir.path(), TestIngestOptions()).ValueOrDie();
  Rng rng(11);
  AppendMasks(ingestor.get(), &rng, 10, 0);
  EXPECT_EQ(ingestor->appended(), 10);
  // Still invisible: watermark and the current snapshot are untouched.
  EXPECT_EQ(ingestor->watermark(), 0);
  EXPECT_EQ(ingestor->snapshot()->store().num_masks(), 0);

  MS_ASSERT_OK(ingestor->Publish());
  EXPECT_EQ(ingestor->epoch(), 1);
  EXPECT_EQ(ingestor->watermark(), 10);
  EXPECT_EQ(ingestor->snapshot()->store().num_masks(), 10);
}

TEST(IngestTest, PinnedSnapshotIsByteIdenticalAcrossEpochs) {
  TempDir dir("ingest_pin");
  auto ingestor = Ingestor::Create(dir.path(), TestIngestOptions()).ValueOrDie();
  Rng rng(23);
  AppendMasks(ingestor.get(), &rng, 40, 0);
  MS_ASSERT_OK(ingestor->Publish());

  std::shared_ptr<const Snapshot> pinned = ingestor->snapshot();
  ASSERT_EQ(pinned->epoch(), 1);
  const FilterQuery query = WholeRoiFilter();
  const FilterResult first = pinned->session()->Filter(query).ValueOrDie();
  for (MaskId id : first.mask_ids) EXPECT_LT(id, pinned->watermark());

  // Publish three more epochs while the pin is held.
  for (int round = 0; round < 3; ++round) {
    AppendMasks(ingestor.get(), &rng, 20, 100 + 20 * round);
    MS_ASSERT_OK(ingestor->Publish());
    // The pinned view never moves: same query, byte-identical ids.
    const FilterResult replay = pinned->session()->Filter(query).ValueOrDie();
    EXPECT_EQ(replay.mask_ids, first.mask_ids) << "after epoch " << round + 2;
    EXPECT_EQ(pinned->watermark(), 40);
    EXPECT_EQ(pinned->store().num_masks(), 40);
  }
  EXPECT_EQ(ingestor->epoch(), 4);
  EXPECT_EQ(ingestor->watermark(), 100);

  // The *current* snapshot does see the later masks.
  const FilterResult fresh =
      ingestor->snapshot()->session()->Filter(query).ValueOrDie();
  EXPECT_GE(fresh.mask_ids.size(), first.mask_ids.size());
}

TEST(IngestTest, SnapshotReleaseUnpinsPromptly) {
  TempDir dir("ingest_unpin");
  auto ingestor = Ingestor::Create(dir.path(), TestIngestOptions()).ValueOrDie();
  Rng rng(31);
  AppendMasks(ingestor.get(), &rng, 5, 0);
  MS_ASSERT_OK(ingestor->Publish());
  // Only the ingestor's own current snapshot is alive.
  EXPECT_EQ(ingestor->Stats().live_snapshots, 0);

  std::shared_ptr<const Snapshot> pinned = ingestor->snapshot();
  AppendMasks(ingestor.get(), &rng, 5, 10);
  MS_ASSERT_OK(ingestor->Publish());
  // The superseded epoch stays alive exactly because we hold it.
  EXPECT_EQ(ingestor->Stats().live_snapshots, 1);

  pinned.reset();
  // Dropping the last reference tears the snapshot down immediately — no
  // deferred reclamation, retention is bounded by in-flight work.
  EXPECT_EQ(ingestor->Stats().live_snapshots, 0);
}

TEST(IngestTest, AppendBlobRoundTripsRawBytes) {
  TempDir dir("ingest_blob");
  auto ingestor = Ingestor::Create(dir.path(), TestIngestOptions()).ValueOrDie();
  Rng rng(41);
  Mask mask = BlobMask(&rng, 16, 16);
  std::string blob(reinterpret_cast<const char*>(mask.data().data()),
                   mask.ByteSize());
  MaskMeta meta = MetaFor(0, 0);
  meta.width = 16;
  meta.height = 16;
  const MaskId id = ingestor->AppendBlob(meta, blob).ValueOrDie();
  MS_ASSERT_OK(ingestor->Publish());

  const Mask loaded =
      ingestor->snapshot()->store().LoadMask(id).ValueOrDie();
  ASSERT_EQ(loaded.data().size(), mask.data().size());
  EXPECT_EQ(std::memcmp(loaded.data().data(), mask.data().data(),
                        mask.ByteSize()),
            0);

  // Size mismatch against the declared geometry is rejected up front.
  MaskMeta bad = MetaFor(1, 0);
  bad.width = 8;
  bad.height = 8;
  EXPECT_FALSE(ingestor->AppendBlob(bad, blob).ok());
}

TEST(IngestTest, OpenResumesAtLastDurableEpoch) {
  TempDir dir("ingest_resume");
  Rng rng(53);
  {
    auto ingestor =
        Ingestor::Create(dir.path(), TestIngestOptions()).ValueOrDie();
    AppendMasks(ingestor.get(), &rng, 12, 0);
    MS_ASSERT_OK(ingestor->Publish());
    AppendMasks(ingestor.get(), &rng, 12, 12);
    MS_ASSERT_OK(ingestor->Publish());
    EXPECT_EQ(ingestor->epoch(), 2);
  }
  auto reopened = Ingestor::Open(dir.path(), TestIngestOptions()).ValueOrDie();
  EXPECT_EQ(reopened->epoch(), 2);
  EXPECT_EQ(reopened->watermark(), 24);
  EXPECT_EQ(reopened->num_shards(), 3);
  EXPECT_EQ(reopened->snapshot()->store().num_masks(), 24);

  // Ingest continues where it left off.
  AppendMasks(reopened.get(), &rng, 6, 24);
  MS_ASSERT_OK(reopened->Publish());
  EXPECT_EQ(reopened->epoch(), 3);
  EXPECT_EQ(reopened->watermark(), 30);
}

TEST(IngestTest, ServiceResolvesEpochAtAdmission) {
  TempDir dir("ingest_service");
  auto ingestor = Ingestor::Create(dir.path(), TestIngestOptions()).ValueOrDie();
  Rng rng(61);
  AppendMasks(ingestor.get(), &rng, 20, 0);
  MS_ASSERT_OK(ingestor->Publish());

  QueryServiceOptions opts;
  opts.num_workers = 2;
  opts.session_resolver = [ing = ingestor.get()]() -> SessionLease {
    std::shared_ptr<const Snapshot> snap = ing->snapshot();
    SessionLease lease;
    lease.session = snap->session();
    lease.epoch = snap->epoch();
    lease.pin = std::move(snap);
    return lease;
  };
  auto service = QueryService::Start(nullptr, opts).ValueOrDie();

  ServiceRequest req;
  req.query = QueryRequest::Filter(WholeRoiFilter());
  auto pending = service->Submit(req).ValueOrDie();
  EXPECT_EQ(pending->epoch(), 1);
  const QueryResponse r1 = pending->Wait().ValueOrDie();
  for (MaskId id : r1.filter.mask_ids) EXPECT_LT(id, 20);

  // Publish a new epoch: the next admission resolves it.
  AppendMasks(ingestor.get(), &rng, 20, 100);
  MS_ASSERT_OK(ingestor->Publish());
  auto pending2 = service->Submit(req).ValueOrDie();
  EXPECT_EQ(pending2->epoch(), 2);
  MS_ASSERT_OK(pending2->Wait().status());

  // Finished requests dropped their leases: nothing but the ingestor's
  // current snapshot is pinned once the handles go away.
  service->Drain();
  pending.reset();
  pending2.reset();
  EXPECT_EQ(ingestor->Stats().live_snapshots, 0);
  service->Shutdown();
}

TEST(IngestTest, CatalogRegisterLiveServesInserts) {
  TempDir dir("ingest_catalog");
  Catalog catalog;
  LiveDatasetConfig config;
  config.ingest = TestIngestOptions();
  config.service.num_workers = 2;
  Dataset* ds =
      catalog.RegisterLive("live", dir.file("live"), config).ValueOrDie();
  ASSERT_TRUE(ds->live());
  EXPECT_EQ(ds->epoch(), 0);

  Rng rng(71);
  for (int i = 0; i < 8; ++i) {
    MS_ASSERT_OK(ds->Ingest(MetaFor(i, 0), BlobMask(&rng, 32, 32)).status());
  }
  MS_ASSERT_OK(ds->Publish());
  EXPECT_EQ(ds->epoch(), 1);
  ASSERT_NE(ds->snapshot(), nullptr);
  EXPECT_EQ(ds->snapshot()->watermark(), 8);

  ServiceRequest req;
  req.query = QueryRequest::Filter(WholeRoiFilter());
  auto pending = ds->Submit(req).ValueOrDie();
  EXPECT_EQ(pending->epoch(), 1);
  MS_ASSERT_OK(pending->Wait().status());

  // A second registration resumes the same store.
  EXPECT_FALSE(catalog.RegisterLive("live", dir.file("live"), config).ok());
}

TEST(IngestTest, IngestOnFixedDatasetIsTyped) {
  TempDir dir("ingest_fixed");
  testing_util::MakeStore(dir.path(), 4, 1, 32, 32);
  Catalog catalog;
  DatasetConfig config;
  config.session.chi = TestConfig();
  config.service.num_workers = 1;
  Dataset* ds = catalog.Register("fixed", dir.path(), config).ValueOrDie();
  EXPECT_FALSE(ds->live());
  Rng rng(83);
  const auto status =
      ds->Ingest(MetaFor(0, 0), BlobMask(&rng, 32, 32)).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ds->Publish().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace masksearch
