// Unit tests for the data model: Mask, ROI, ValueRange (§2.1).

#include <gtest/gtest.h>

#include <cmath>

#include "masksearch/storage/mask.h"
#include "test_util.h"

namespace masksearch {
namespace {

TEST(RoiTest, GeometryBasics) {
  ROI r(2, 3, 10, 7);
  EXPECT_EQ(r.width(), 8);
  EXPECT_EQ(r.height(), 4);
  EXPECT_EQ(r.Area(), 32);
  EXPECT_FALSE(r.Empty());
  EXPECT_TRUE(ROI(5, 5, 5, 9).Empty());
  EXPECT_TRUE(ROI().Empty());
}

TEST(RoiTest, InclusiveCornerConversionMatchesPaperConvention) {
  // Paper Figure 3-style box ((1,1),(4,4)) covers 16 pixels.
  ROI r = ROI::FromInclusiveCorners(1, 1, 4, 4);
  EXPECT_EQ(r, ROI(0, 0, 4, 4));
  EXPECT_EQ(r.Area(), 16);
}

TEST(RoiTest, IntersectAndContains) {
  ROI a(0, 0, 10, 10);
  ROI b(5, 5, 15, 15);
  EXPECT_EQ(a.Intersect(b), ROI(5, 5, 10, 10));
  EXPECT_TRUE(a.Intersect(ROI(20, 20, 30, 30)).Empty());
  EXPECT_TRUE(a.Contains(ROI(1, 1, 9, 9)));
  EXPECT_FALSE(a.Contains(b));
  EXPECT_TRUE(a.ContainsPoint(0, 0));
  EXPECT_FALSE(a.ContainsPoint(10, 0));  // exclusive edge
}

TEST(RoiTest, ClampTo) {
  ROI r(-5, -5, 100, 100);
  EXPECT_EQ(r.ClampTo(10, 20), ROI(0, 0, 10, 20));
  EXPECT_TRUE(ROI(50, 50, 60, 60).ClampTo(10, 10).Empty());
}

TEST(ValueRangeTest, HalfOpenSemantics) {
  ValueRange r(0.2, 0.8);
  EXPECT_TRUE(r.Contains(0.2));
  EXPECT_TRUE(r.Contains(0.5));
  EXPECT_FALSE(r.Contains(0.8));
  EXPECT_FALSE(r.Contains(0.1));
  EXPECT_TRUE(r.Valid());
  EXPECT_FALSE(ValueRange(0.9, 0.1).Valid());
}

TEST(MaskTest, ZeroInitialized) {
  Mask m(4, 3);
  EXPECT_EQ(m.width(), 4);
  EXPECT_EQ(m.height(), 3);
  EXPECT_EQ(m.NumPixels(), 12);
  for (int32_t y = 0; y < 3; ++y) {
    for (int32_t x = 0; x < 4; ++x) {
      EXPECT_EQ(m.at(x, y), 0.0f);
    }
  }
}

TEST(MaskTest, SetGetRowMajor) {
  Mask m(3, 2);
  m.set(2, 1, 0.5f);
  EXPECT_EQ(m.at(2, 1), 0.5f);
  EXPECT_EQ(m.data()[1 * 3 + 2], 0.5f);
  EXPECT_EQ(m.row(1)[2], 0.5f);
}

TEST(MaskTest, FromDataValidatesShape) {
  EXPECT_TRUE(Mask::FromData(2, 2, {0.1f, 0.2f, 0.3f}).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Mask::FromData(0, 2, {}).status().IsInvalidArgument());
  EXPECT_TRUE(Mask::FromData(-1, 2, {}).status().IsInvalidArgument());
}

TEST(MaskTest, FromDataValidatesDomain) {
  EXPECT_TRUE(Mask::FromData(2, 1, {0.1f, 1.0f}).status().IsInvalidArgument());
  EXPECT_TRUE(Mask::FromData(2, 1, {-0.1f, 0.5f}).status().IsInvalidArgument());
  auto ok = Mask::FromData(2, 1, {0.0f, 0.999f});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->at(1, 0), 0.999f);
}

TEST(MaskTest, ClampToDomain) {
  Mask m(2, 2);
  m.set(0, 0, 1.5f);
  m.set(1, 0, -0.25f);
  m.set(0, 1, std::nanf(""));
  m.set(1, 1, 0.5f);
  m.ClampToDomain();
  EXPECT_LT(m.at(0, 0), 1.0f);
  EXPECT_GE(m.at(0, 0), 0.999f);
  EXPECT_EQ(m.at(1, 0), 0.0f);
  EXPECT_EQ(m.at(0, 1), 0.0f);
  EXPECT_EQ(m.at(1, 1), 0.5f);
}

TEST(MaskTest, ByteSizeAndExtent) {
  Mask m(10, 5);
  EXPECT_EQ(m.ByteSize(), 10u * 5u * sizeof(float));
  EXPECT_EQ(m.Extent(), ROI(0, 0, 10, 5));
}

TEST(MaskMetaTest, ToStringMentionsIds) {
  MaskMeta meta;
  meta.mask_id = 6;
  meta.image_id = 4;
  meta.model_id = 2;
  const std::string s = meta.ToString();
  EXPECT_NE(s.find("mask_id=6"), std::string::npos);
  EXPECT_NE(s.find("image_id=4"), std::string::npos);
}

TEST(MaskTypeTest, Names) {
  EXPECT_STREQ(MaskTypeToString(MaskType::kSaliencyMap), "saliency_map");
  EXPECT_STREQ(MaskTypeToString(MaskType::kSegmentation), "segmentation");
  EXPECT_STREQ(MaskTypeToString(MaskType::kDerived), "derived");
}

}  // namespace
}  // namespace masksearch
