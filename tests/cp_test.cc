// Unit and property tests for the CP scan kernel (§2.1).

#include <gtest/gtest.h>

#include <tuple>

#include "masksearch/query/cp.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::RandomMask;

/// Straight-line reference implementation of the CP definition.
int64_t NaiveCp(const Mask& m, const ROI& roi, const ValueRange& range) {
  int64_t count = 0;
  for (int32_t y = 0; y < m.height(); ++y) {
    for (int32_t x = 0; x < m.width(); ++x) {
      if (!roi.ContainsPoint(x, y)) continue;
      const float v = m.at(x, y);
      if (v >= range.lv && v < range.uv) ++count;
    }
  }
  return count;
}

TEST(CpTest, PaperFigure3Example) {
  // Figure 3: "# pixels in the ROI with values in (0.85, 1.0) is 2".
  Mask m(4, 4);
  m.set(1, 1, 0.9f);
  m.set(2, 2, 0.88f);
  m.set(3, 3, 0.95f);  // outside the ROI below
  const ROI roi(1, 1, 3, 3);
  EXPECT_EQ(CountPixels(m, roi, ValueRange(0.85, 1.0)), 2);
}

TEST(CpTest, FullMaskOverload) {
  Mask m(3, 3);
  m.set(0, 0, 0.5f);
  m.set(2, 2, 0.5f);
  EXPECT_EQ(CountPixels(m, ValueRange(0.4, 0.6)), 2);
  EXPECT_EQ(CountPixels(m, ValueRange(0.0, 1.0)), 9);
}

TEST(CpTest, HalfOpenRangeBoundaries) {
  Mask m(2, 1);
  m.set(0, 0, 0.3f);
  m.set(1, 0, 0.7f);
  EXPECT_EQ(CountPixels(m, ValueRange(0.3, 0.7)), 1);  // lv inclusive
  EXPECT_EQ(CountPixels(m, ValueRange(0.30001, 0.7)), 0);
  EXPECT_EQ(CountPixels(m, ValueRange(0.3, 0.70001)), 2);  // uv exclusive
}

TEST(CpTest, EmptyRoiAndInvalidRange) {
  Rng rng(1);
  Mask m = RandomMask(&rng, 8, 8);
  EXPECT_EQ(CountPixels(m, ROI(3, 3, 3, 6), ValueRange(0, 1)), 0);
  EXPECT_EQ(CountPixels(m, m.Extent(), ValueRange(0.8, 0.2)), 0);
  EXPECT_EQ(CountPixels(m, m.Extent(), ValueRange(0.5, 0.5)), 0);
}

TEST(CpTest, RoiClampedToMask) {
  Mask m(4, 4);
  m.set(3, 3, 0.9f);
  EXPECT_EQ(CountPixels(m, ROI(-10, -10, 100, 100), ValueRange(0.5, 1.0)), 1);
  EXPECT_EQ(CountPixels(m, ROI(10, 10, 20, 20), ValueRange(0.0, 1.0)), 0);
}

TEST(CpTest, EmptyMask) {
  Mask m;
  EXPECT_EQ(CountPixels(m, ROI(0, 0, 4, 4), ValueRange(0, 1)), 0);
}

TEST(CpTest, SinglePixelRoi) {
  Mask m(5, 5);
  m.set(2, 3, 0.42f);
  EXPECT_EQ(CountPixels(m, ROI(2, 3, 3, 4), ValueRange(0.4, 0.5)), 1);
  EXPECT_EQ(CountPixels(m, ROI(2, 3, 3, 4), ValueRange(0.5, 0.9)), 0);
}

/// Property sweep: kernel equals the naive definition over random masks,
/// ROIs and ranges, across mask shapes including non-square and tiny ones.
class CpPropertyTest
    : public ::testing::TestWithParam<std::tuple<int32_t, int32_t>> {};

TEST_P(CpPropertyTest, MatchesNaiveDefinition) {
  const auto [w, h] = GetParam();
  Rng rng(1000 + w * 31 + h);
  Mask m = RandomMask(&rng, w, h);
  for (int trial = 0; trial < 50; ++trial) {
    const int32_t x0 = static_cast<int32_t>(rng.UniformInt(-2, w));
    const int32_t y0 = static_cast<int32_t>(rng.UniformInt(-2, h));
    const int32_t x1 = static_cast<int32_t>(rng.UniformInt(x0, w + 2));
    const int32_t y1 = static_cast<int32_t>(rng.UniformInt(y0, h + 2));
    const ROI roi(x0, y0, x1, y1);
    double a = rng.NextDouble(), b = rng.NextDouble();
    if (a > b) std::swap(a, b);
    const ValueRange range(a, b);
    EXPECT_EQ(CountPixels(m, roi, range), NaiveCp(m, roi, range))
        << "shape " << w << "x" << h << " roi " << roi.ToString() << " range "
        << range.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, CpPropertyTest,
                         ::testing::Values(std::make_tuple(1, 1),
                                           std::make_tuple(7, 3),
                                           std::make_tuple(16, 16),
                                           std::make_tuple(33, 17),
                                           std::make_tuple(64, 1),
                                           std::make_tuple(1, 64),
                                           std::make_tuple(100, 100)));

TEST(CpTest, RawVariantMatchesMaskVariant) {
  Rng rng(77);
  Mask m = RandomMask(&rng, 20, 30);
  const ROI roi(3, 4, 17, 25);
  const ValueRange range(0.25, 0.75);
  EXPECT_EQ(
      CountPixelsRaw(m.data().data(), m.width(), m.height(), roi, range),
      CountPixels(m, roi, range));
}

}  // namespace
}  // namespace masksearch
