// Tests for the sharded MaskStore layout: open/load parity against the
// single-file layout on random workloads (dup-id batches, compressed blobs),
// shard-parallel batch reads, migration via ReshardMaskStore, and error
// injection on one shard.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <thread>

#include "masksearch/common/thread_pool.h"
#include "masksearch/ingest/ingestor.h"
#include "masksearch/maintain/compactor.h"
#include "masksearch/storage/sharded_mask_store.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::RandomMask;
using testing_util::TempDir;

/// Writes the same deterministic mask sequence into a store with
/// `num_shards` data files.
void WriteStore(const std::string& dir, int count, int32_t num_shards,
                StorageKind kind, uint64_t seed = 11) {
  Rng rng(seed);
  MaskStoreWriter::Options wopts;
  wopts.kind = kind;
  wopts.num_shards = num_shards;
  auto writer = MaskStoreWriter::Create(dir, wopts).ValueOrDie();
  for (int i = 0; i < count; ++i) {
    MaskMeta meta;
    meta.image_id = i / 2;
    meta.model_id = i % 2;
    meta.object_box = ROI(1, 1, 10, 8);
    writer->Append(meta, RandomMask(&rng, 12, 10)).ValueOrDie();
  }
  writer->Finish().CheckOK();
}

TEST(ShardedStoreTest, ShardedLayoutWritesShardFiles) {
  TempDir dir("sharded");
  WriteStore(dir.path(), 10, 4, StorageKind::kRawFloat32);
  EXPECT_FALSE(PathExists(MaskStoreDataPath(dir.path())));
  for (int32_t s = 0; s < 4; ++s) {
    EXPECT_TRUE(PathExists(MaskStoreShardDataPath(dir.path(), s, 4)));
  }
  auto store = MaskStore::Open(dir.path()).ValueOrDie();
  EXPECT_EQ(store->num_shards(), 4);
  EXPECT_EQ(store->num_masks(), 10);
}

TEST(ShardedStoreTest, SingleFileOpensAsOneShard) {
  TempDir dir("sharded");
  WriteStore(dir.path(), 6, 1, StorageKind::kRawFloat32);
  EXPECT_TRUE(PathExists(MaskStoreDataPath(dir.path())));
  auto store = MaskStore::Open(dir.path()).ValueOrDie();
  EXPECT_EQ(store->num_shards(), 1);
}

/// Parity harness: every mask / metadata / random batch of the sharded
/// store must equal the single-file store of the same content.
void ExpectParity(StorageKind kind, int32_t num_shards, ThreadPool* io_pool) {
  TempDir single_dir("parity_single");
  TempDir sharded_dir("parity_sharded");
  const int kCount = 23;  // not a multiple of num_shards: ragged shards
  WriteStore(single_dir.path(), kCount, 1, kind);
  WriteStore(sharded_dir.path(), kCount, num_shards, kind);

  MaskStore::Options opts;
  opts.io_pool = io_pool;
  auto single = MaskStore::Open(single_dir.path()).ValueOrDie();
  auto sharded = MaskStore::Open(sharded_dir.path(), opts).ValueOrDie();
  ASSERT_EQ(sharded->num_shards(), num_shards);
  ASSERT_EQ(single->num_masks(), sharded->num_masks());
  EXPECT_EQ(single->TotalDataBytes(), sharded->TotalDataBytes());

  Rng rng(99);
  for (MaskId id = 0; id < single->num_masks(); ++id) {
    EXPECT_EQ(single->meta(id).image_id, sharded->meta(id).image_id);
    EXPECT_EQ(single->BlobSize(id), sharded->BlobSize(id));
    auto a = single->LoadMask(id);
    auto b = sharded->LoadMask(id);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(a->data(), b->data()) << "mask " << id;
  }

  // Random batches with duplicates and shuffled order.
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<MaskId> ids;
    const int len = 1 + static_cast<int>(rng.NextU64() % (2 * kCount));
    for (int i = 0; i < len; ++i) {
      ids.push_back(static_cast<MaskId>(rng.NextU64() % kCount));
    }
    single->ResetCounters();
    sharded->ResetCounters();
    auto a = single->LoadMaskBatch(ids);
    auto b = sharded->LoadMaskBatch(ids);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok()) << b.status();
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ((*a)[i].data(), (*b)[i].data()) << "trial " << trial
                                                << " slot " << i;
    }
    // Identical accounting: every id counts as one load on both layouts,
    // and sharding never reads more payload bytes than the single file
    // (shard runs contain no cross-shard gaps).
    EXPECT_EQ(single->masks_loaded(), sharded->masks_loaded());
    EXPECT_LE(sharded->bytes_read(),
              single->bytes_read() + single->TotalDataBytes());
  }
}

TEST(ShardedStoreTest, ParityRawSequential) {
  ExpectParity(StorageKind::kRawFloat32, 4, nullptr);
}

TEST(ShardedStoreTest, ParityCompressedSequential) {
  ExpectParity(StorageKind::kCompressed, 3, nullptr);
}

TEST(ShardedStoreTest, ParityRawShardParallel) {
  ThreadPool pool(4);
  ExpectParity(StorageKind::kRawFloat32, 4, &pool);
}

TEST(ShardedStoreTest, ParityCompressedShardParallel) {
  ThreadPool pool(3);
  ExpectParity(StorageKind::kCompressed, 5, &pool);
}

TEST(ShardedStoreTest, BatchRequestCountsOneRunPerShard) {
  // A dense batch over a 4-shard store coalesces into exactly one modeled
  // request per shard (blobs are append-ordered within each shard).
  TempDir dir("sharded");
  WriteStore(dir.path(), 16, 4, StorageKind::kRawFloat32);
  MaskStore::Options opts;
  opts.throttle = std::make_shared<DiskThrottle>(0.0);  // accounting only
  auto store = MaskStore::Open(dir.path(), opts).ValueOrDie();
  std::vector<MaskId> all(16);
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<MaskId>(i);
  store->LoadMaskBatch(all).ValueOrDie();
  EXPECT_EQ(opts.throttle->total_requests(), 4u);
  EXPECT_EQ(opts.throttle->total_bytes(), store->TotalDataBytes());
  EXPECT_EQ(store->bytes_read(), store->TotalDataBytes());
}

TEST(ShardedStoreTest, LoadMaskRowsMatchesSingleFile) {
  TempDir single_dir("rows_single");
  TempDir sharded_dir("rows_sharded");
  WriteStore(single_dir.path(), 9, 1, StorageKind::kRawFloat32);
  WriteStore(sharded_dir.path(), 9, 3, StorageKind::kRawFloat32);
  auto single = MaskStore::Open(single_dir.path()).ValueOrDie();
  auto sharded = MaskStore::Open(sharded_dir.path()).ValueOrDie();
  for (MaskId id = 0; id < 9; ++id) {
    auto a = single->LoadMaskRows(id, 2, 7);
    auto b = sharded->LoadMaskRows(id, 2, 7);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->data(), b->data());
  }
}

TEST(ShardedStoreTest, ReshardRoundTripPreservesBlobsExactly) {
  for (StorageKind kind :
       {StorageKind::kRawFloat32, StorageKind::kCompressed}) {
    TempDir src_dir("reshard_src");
    TempDir sharded_dir("reshard_out");
    TempDir back_dir("reshard_back");
    WriteStore(src_dir.path(), 13, 1, kind);
    auto src = MaskStore::Open(src_dir.path()).ValueOrDie();

    // single-file -> 4 shards -> single-file: blob bytes and metadata must
    // survive both hops bit-for-bit (no decode/re-encode, even for the
    // lossy codec).
    MS_ASSERT_OK(ReshardMaskStore(*src, sharded_dir.path(), 4));
    auto sharded = MaskStore::Open(sharded_dir.path()).ValueOrDie();
    ASSERT_EQ(sharded->num_shards(), 4);
    MS_ASSERT_OK(ReshardMaskStore(*sharded, back_dir.path(), 1));
    auto back = MaskStore::Open(back_dir.path()).ValueOrDie();
    ASSERT_EQ(back->num_shards(), 1);

    ASSERT_EQ(back->num_masks(), src->num_masks());
    std::string blob_a, blob_b;
    for (MaskId id = 0; id < src->num_masks(); ++id) {
      EXPECT_EQ(src->meta(id).image_id, back->meta(id).image_id);
      EXPECT_EQ(src->meta(id).object_box, back->meta(id).object_box);
      MS_ASSERT_OK(src->ReadBlob(id, &blob_a));
      MS_ASSERT_OK(sharded->ReadBlob(id, &blob_b));
      EXPECT_EQ(blob_a, blob_b) << "sharded blob " << id;
      MS_ASSERT_OK(back->ReadBlob(id, &blob_b));
      EXPECT_EQ(blob_a, blob_b) << "round-trip blob " << id;
    }
  }
}

TEST(ShardedStoreTest, TruncatedShardFailsOnlyThatShard) {
  TempDir dir("sharded");
  WriteStore(dir.path(), 12, 4, StorageKind::kRawFloat32);
  // Truncate shard 1: ids {1, 5, 9} become unreadable; other shards stay
  // intact.
  std::filesystem::resize_file(MaskStoreShardDataPath(dir.path(), 1, 4), 8);
  auto store = MaskStore::Open(dir.path()).ValueOrDie();
  for (MaskId id = 0; id < 12; ++id) {
    auto mask = store->LoadMask(id);
    if (id % 4 == 1) {
      EXPECT_FALSE(mask.ok()) << "mask " << id << " lives on the dead shard";
    } else {
      EXPECT_TRUE(mask.ok()) << mask.status();
    }
  }
  // Batches touching the dead shard fail as a whole; batches avoiding it
  // succeed — with and without shard-parallel reads.
  ThreadPool pool(3);
  for (ThreadPool* io_pool : {static_cast<ThreadPool*>(nullptr), &pool}) {
    MaskStore::Options opts;
    opts.io_pool = io_pool;
    auto reopened = MaskStore::Open(dir.path(), opts).ValueOrDie();
    EXPECT_FALSE(reopened->LoadMaskBatch({0, 1, 2, 3}).ok());
    auto good = reopened->LoadMaskBatch({0, 2, 3, 4, 6, 7, 8});
    EXPECT_TRUE(good.ok()) << good.status();
  }
}

TEST(ShardedStoreTest, MissingShardFileFailsOpen) {
  TempDir dir("sharded");
  WriteStore(dir.path(), 8, 4, StorageKind::kRawFloat32);
  MS_ASSERT_OK(
      RemoveFileIfExists(MaskStoreShardDataPath(dir.path(), 2, 4)));
  EXPECT_FALSE(MaskStore::Open(dir.path()).ok());
}

TEST(ShardedStoreTest, OnlineReshardRacesLiveReadersByteIdentical) {
  // The online re-shard path (a Compactor with target_num_shards — the
  // same verbatim ReadBlob + AppendBlob machinery as ReshardMaskStore)
  // racing live readers: every read through a pinned snapshot stays
  // byte-identical before, during, and after the shard-count swap, and the
  // old generation's files produce typed errors only once the last pin
  // drains and they are actually removed — never garbage bytes while any
  // reader can still reach them.
  IngestorOptions iopts;
  iopts.chi.cell_width = iopts.chi.cell_height = 8;
  iopts.chi.num_bins = 8;
  iopts.num_shards = 2;
  iopts.cache_budget_bytes = 2ull << 20;
  TempDir dir("online_reshard");
  auto ingestor = Ingestor::Create(dir.path(), iopts).ValueOrDie();
  Rng rng(77);
  std::vector<std::string> blobs;
  for (int i = 0; i < 16; ++i) {
    Mask mask = RandomMask(&rng, 12, 10);
    blobs.emplace_back(reinterpret_cast<const char*>(mask.data().data()),
                       mask.ByteSize());
    MaskMeta meta;
    meta.image_id = i;
    (void)ingestor->Append(meta, mask).ValueOrDie();
  }
  MS_ASSERT_OK(ingestor->Publish());
  std::shared_ptr<const Snapshot> pinned = ingestor->snapshot();

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rrng(100 + r);
      while (!stop.load(std::memory_order_acquire)) {
        const MaskId id = static_cast<MaskId>(rrng.UniformInt(0, 15));
        std::string blob;
        MS_ASSERT_OK(pinned->store().ReadBlob(id, &blob));
        ASSERT_EQ(blob, blobs[id]) << "reader saw wrong bytes for " << id;
      }
    });
  }

  CompactorOptions copts;
  copts.target_num_shards = 5;
  Compactor resharder(ingestor.get(), copts);
  MS_ASSERT_OK(resharder.Compact().status());
  EXPECT_EQ(ingestor->num_shards(), 5);
  stop.store(true);
  for (auto& t : readers) t.join();

  // The old 2-shard generation is still fully readable through the pin...
  EXPECT_TRUE(PathExists(MaskStoreShardDataPath(dir.path(), 0, 2)));
  std::string blob;
  for (MaskId id = 0; id < 16; ++id) {
    MS_ASSERT_OK(pinned->store().ReadBlob(id, &blob));
    EXPECT_EQ(blob, blobs[id]);
  }
  // ...and the new generation serves the same bytes under the new layout.
  auto current = ingestor->snapshot();
  ASSERT_EQ(current->store().num_shards(), 5);
  for (MaskId id = 0; id < 16; ++id) {
    MS_ASSERT_OK(current->store().ReadBlob(id, &blob));
    EXPECT_EQ(blob, blobs[id]);
  }

  // Last pin drains -> the old generation's files go away, and opening
  // that layout again is a typed error, not garbage.
  pinned.reset();
  EXPECT_FALSE(PathExists(MaskStoreManifestPath(dir.path())));
  EXPECT_FALSE(PathExists(MaskStoreShardDataPath(dir.path(), 0, 2)));
  const auto stale = internal::ReadMaskStoreManifest(dir.path());
  ASSERT_FALSE(stale.ok());
  EXPECT_TRUE(stale.status().IsIOError() || stale.status().IsNotFound())
      << stale.status().ToString();
}

TEST(ShardedStoreTest, ReshardRejectsBadShardCounts) {
  TempDir dir("sharded");
  WriteStore(dir.path(), 4, 1, StorageKind::kRawFloat32);
  auto store = MaskStore::Open(dir.path()).ValueOrDie();
  TempDir out("reshard");
  EXPECT_TRUE(ReshardMaskStore(*store, out.path(), 0)
                  .IsInvalidArgument());
  EXPECT_TRUE(ReshardMaskStore(*store, out.path(), -3)
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace masksearch
