// Tests for filter–verification execution (§3.2): correctness against the
// brute-force reference, pruning accounting, and all indexing regimes.

#include <gtest/gtest.h>

#include "masksearch/baselines/full_scan.h"
#include "masksearch/exec/filter_executor.h"
#include "masksearch/storage/sharded_mask_store.h"
#include "masksearch/workload/query_gen.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::MakeStore;
using testing_util::TempDir;

ChiConfig TestConfig() {
  ChiConfig cfg;
  cfg.cell_width = 8;
  cfg.cell_height = 8;
  cfg.num_bins = 8;
  return cfg;
}

class FilterExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("filter");
    store_ = MakeStore(dir_->path(), /*num_images=*/20, /*num_models=*/2,
                       /*w=*/48, /*h=*/48, /*seed=*/11);
    index_ = std::make_unique<IndexManager>(store_->num_masks(), TestConfig());
    MS_ASSERT_OK(index_->BuildAll(*store_));
    store_->ResetCounters();
  }

  FilterQuery ObjectQuery(double lv, double uv, double threshold) const {
    FilterQuery q;
    CpTerm term;
    term.roi_source = RoiSource::kObjectBox;
    term.range = ValueRange(lv, uv);
    q.terms.push_back(term);
    q.predicate = Predicate::Compare(CpExpr::Term(0), CompareOp::kGt, threshold);
    return q;
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<MaskStore> store_;
  std::unique_ptr<IndexManager> index_;
};

TEST_F(FilterExecutorTest, MatchesReferenceAcrossThresholds) {
  FullScanBaseline reference(store_.get());
  for (double threshold : {0.0, 50.0, 200.0, 800.0, 2000.0}) {
    const FilterQuery q = ObjectQuery(0.6, 1.0, threshold);
    auto got = ExecuteFilter(*store_, index_.get(), q);
    ASSERT_TRUE(got.ok()) << got.status();
    auto want = reference.Filter(q);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(got->mask_ids, want->mask_ids) << "threshold " << threshold;
  }
}

TEST_F(FilterExecutorTest, StatsPartitionTargetedMasks) {
  const FilterQuery q = ObjectQuery(0.5, 0.9, 300.0);
  auto r = ExecuteFilter(*store_, index_.get(), q);
  ASSERT_TRUE(r.ok());
  const ExecStats& s = r->stats;
  EXPECT_EQ(s.masks_targeted, store_->num_masks());
  EXPECT_EQ(s.pruned + s.accepted_by_bounds + s.candidates, s.masks_targeted);
  EXPECT_EQ(s.masks_loaded, s.candidates);
  EXPECT_GE(s.FML(), 0.0);
  EXPECT_LE(s.FML(), 1.0);
}

TEST_F(FilterExecutorTest, IndexReducesLoadsButNotResults) {
  const FilterQuery q = ObjectQuery(0.6, 1.0, 100.0);
  auto with_index = ExecuteFilter(*store_, index_.get(), q);
  ASSERT_TRUE(with_index.ok());

  EngineOptions no_index;
  no_index.use_index = false;
  auto without = ExecuteFilter(*store_, nullptr, q, no_index);
  ASSERT_TRUE(without.ok());

  EXPECT_EQ(with_index->mask_ids, without->mask_ids);
  EXPECT_EQ(without->stats.masks_loaded, store_->num_masks());
  EXPECT_LT(with_index->stats.masks_loaded, without->stats.masks_loaded);
}

TEST_F(FilterExecutorTest, IncrementalIndexingBuildsOnlyLoadedMasks) {
  IndexManager empty(store_->num_masks(), TestConfig());
  EngineOptions opts;
  opts.build_missing = true;
  const FilterQuery q = ObjectQuery(0.6, 1.0, 100.0);
  auto first = ExecuteFilter(*store_, &empty, q, opts);
  ASSERT_TRUE(first.ok());
  // No index yet: every mask is loaded and indexed (§3.6).
  EXPECT_EQ(first->stats.masks_loaded, store_->num_masks());
  EXPECT_EQ(first->stats.chis_built, store_->num_masks());
  EXPECT_EQ(static_cast<int64_t>(empty.num_built()), store_->num_masks());

  // Second identical query now benefits from the incrementally built index.
  auto second = ExecuteFilter(*store_, &empty, q, opts);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->mask_ids, first->mask_ids);
  EXPECT_LT(second->stats.masks_loaded, first->stats.masks_loaded);
  EXPECT_EQ(second->stats.chis_built, 0);
}

TEST_F(FilterExecutorTest, SelectionByModel) {
  FilterQuery q = ObjectQuery(0.5, 1.0, -1.0);  // always true
  q.selection.model_ids = {1};
  auto r = ExecuteFilter(*store_, index_.get(), q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.masks_targeted, store_->num_masks() / 2);
  for (MaskId id : r->mask_ids) {
    EXPECT_EQ(store_->meta(id).model_id, 1);
  }
}

TEST_F(FilterExecutorTest, SelectionByExplicitIds) {
  FilterQuery q = ObjectQuery(0.5, 1.0, -1.0);
  q.selection.mask_ids = {3, 1, 7, 3};  // duplicates and disorder
  auto r = ExecuteFilter(*store_, index_.get(), q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->mask_ids, (std::vector<MaskId>{1, 3, 7}));
}

TEST_F(FilterExecutorTest, TrivialPredicatesShortCircuit) {
  // Always-true predicate: every mask accepted from bounds, zero loads.
  const FilterQuery yes = ObjectQuery(0.0, 1.0, -1.0);
  auto r1 = ExecuteFilter(*store_, index_.get(), yes);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->stats.masks_loaded, 0);
  EXPECT_EQ(static_cast<int64_t>(r1->mask_ids.size()), store_->num_masks());

  // Impossible predicate (> area): every mask pruned, zero loads.
  const FilterQuery no = ObjectQuery(0.0, 1.0, 1e9);
  auto r2 = ExecuteFilter(*store_, index_.get(), no);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->stats.masks_loaded, 0);
  EXPECT_TRUE(r2->mask_ids.empty());
}

TEST_F(FilterExecutorTest, CompoundPredicate) {
  FilterQuery q;
  CpTerm t0;
  t0.roi_source = RoiSource::kObjectBox;
  t0.range = ValueRange(0.7, 1.0);
  CpTerm t1;
  t1.roi_source = RoiSource::kFullMask;
  t1.range = ValueRange(0.7, 1.0);
  q.terms = {t0, t1};
  std::vector<Predicate> kids;
  // Salient mass inside the object is less than half the total: the
  // dispersed-mask hunt of Scenario 1.
  kids.push_back(Predicate::Compare(
      CpExpr::Term(0) - CpExpr::Constant(0.5) * CpExpr::Term(1),
      CompareOp::kLt, 0.0));
  kids.push_back(Predicate::Compare(CpExpr::Term(1), CompareOp::kGt, 50.0));
  q.predicate = Predicate::And(std::move(kids));

  auto got = ExecuteFilter(*store_, index_.get(), q);
  ASSERT_TRUE(got.ok());
  FullScanBaseline reference(store_.get());
  auto want = reference.Filter(q);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(got->mask_ids, want->mask_ids);
  EXPECT_FALSE(got->mask_ids.empty());  // dataset contains dispersed masks
}

TEST_F(FilterExecutorTest, LessThanPredicate) {
  FilterQuery q = ObjectQuery(0.8, 1.0, 0.0);
  q.predicate = Predicate::Compare(CpExpr::Term(0), CompareOp::kLt, 50.0);
  auto got = ExecuteFilter(*store_, index_.get(), q);
  ASSERT_TRUE(got.ok());
  FullScanBaseline reference(store_.get());
  auto want = reference.Filter(q);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(got->mask_ids, want->mask_ids);
}

TEST_F(FilterExecutorTest, ParallelExecutionMatchesSequential) {
  ThreadPool pool(4);
  EngineOptions par;
  par.pool = &pool;
  for (int i = 0; i < 5; ++i) {
    Rng rng(500 + i);
    const FilterQuery q = GenerateFilterQuery(&rng, *store_);
    auto seq = ExecuteFilter(*store_, index_.get(), q);
    auto parr = ExecuteFilter(*store_, index_.get(), q, par);
    ASSERT_TRUE(seq.ok());
    ASSERT_TRUE(parr.ok());
    EXPECT_EQ(seq->mask_ids, parr->mask_ids);
    EXPECT_EQ(seq->stats.masks_loaded, parr->stats.masks_loaded);
  }
}

TEST_F(FilterExecutorTest, RandomizedQueriesMatchReference) {
  FullScanBaseline reference(store_.get());
  Rng rng(999);
  for (int i = 0; i < 25; ++i) {
    const FilterQuery q = GenerateFilterQuery(&rng, *store_);
    auto got = ExecuteFilter(*store_, index_.get(), q);
    ASSERT_TRUE(got.ok());
    auto want = reference.Filter(q);
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(got->mask_ids, want->mask_ids) << "query " << i;
    // The index never loads more than the baseline.
    ASSERT_LE(got->stats.masks_loaded, want->stats.masks_loaded);
  }
}

TEST_F(FilterExecutorTest, StagedBatchedVerificationMatchesFused) {
  // The staged path (batch_io, the default) and the fused per-mask path
  // must agree on results and per-mask stats; only the I/O request pattern
  // may differ. Also exercised with overlap (io_pool) and a small batch so
  // several pipeline refills happen.
  ThreadPool pool(4);
  for (double threshold : {0.0, 100.0, 500.0}) {
    const FilterQuery q = ObjectQuery(0.55, 1.0, threshold);
    EngineOptions fused;
    fused.batch_io = false;
    fused.pool = &pool;
    auto want = ExecuteFilter(*store_, index_.get(), q, fused);
    ASSERT_TRUE(want.ok()) << want.status();

    EngineOptions staged;
    staged.pool = &pool;
    staged.filter_verify_batch = 5;
    auto got = ExecuteFilter(*store_, index_.get(), q, staged);
    ASSERT_TRUE(got.ok()) << got.status();

    EngineOptions overlapped = staged;
    overlapped.io_pool = &pool;
    auto got_overlap = ExecuteFilter(*store_, index_.get(), q, overlapped);
    ASSERT_TRUE(got_overlap.ok()) << got_overlap.status();

    for (const auto* r : {&*got, &*got_overlap}) {
      EXPECT_EQ(r->mask_ids, want->mask_ids) << "threshold " << threshold;
      EXPECT_EQ(r->stats.masks_loaded, want->stats.masks_loaded);
      EXPECT_EQ(r->stats.pruned, want->stats.pruned);
      EXPECT_EQ(r->stats.accepted_by_bounds, want->stats.accepted_by_bounds);
      EXPECT_EQ(r->stats.candidates, want->stats.candidates);
      EXPECT_EQ(r->stats.bytes_read, want->stats.bytes_read);
    }
  }
}

TEST_F(FilterExecutorTest, StagedPathOnShardedStoreMatchesReference) {
  TempDir sharded_dir("filter_sharded");
  MS_ASSERT_OK(ReshardMaskStore(*store_, sharded_dir.path(), 4));
  ThreadPool io_pool(3);
  MaskStore::Options sopts;
  sopts.io_pool = &io_pool;
  auto sharded = MaskStore::Open(sharded_dir.path(), sopts).ValueOrDie();

  FullScanBaseline reference(store_.get());
  ThreadPool pool(4);
  EngineOptions opts;
  opts.pool = &pool;
  opts.io_pool = &io_pool;
  opts.filter_verify_batch = 7;
  for (double threshold : {50.0, 400.0}) {
    const FilterQuery q = ObjectQuery(0.6, 1.0, threshold);
    auto got = ExecuteFilter(*sharded, index_.get(), q, opts);
    ASSERT_TRUE(got.ok()) << got.status();
    auto want = reference.Filter(q);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(got->mask_ids, want->mask_ids) << "threshold " << threshold;
  }
}

TEST_F(FilterExecutorTest, InvalidQueriesRejected) {
  FilterQuery empty;
  EXPECT_TRUE(
      ExecuteFilter(*store_, index_.get(), empty).status().IsInvalidArgument());

  FilterQuery bad_term;
  bad_term.predicate =
      Predicate::Compare(CpExpr::Term(3), CompareOp::kGt, 0.0);
  EXPECT_TRUE(ExecuteFilter(*store_, index_.get(), bad_term)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace masksearch
