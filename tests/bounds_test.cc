// Unit and property tests for CHI-derived CP bounds (§3.2.1), including the
// paper's Figure 6 worked example and the soundness invariant
// lower <= CP <= upper for arbitrary ROIs and value ranges.

#include <gtest/gtest.h>

#include <tuple>

#include "masksearch/index/bounds.h"
#include "masksearch/index/chi_builder.h"
#include "masksearch/query/cp.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::BlobMask;
using testing_util::RandomMask;

/// Same mask as chi_test's PaperFigureMask (Figures 4/6).
Mask PaperFigureMask() {
  Mask m(6, 6);
  for (float& v : m.mutable_data()) v = 0.1f;
  const int32_t high[][2] = {{2, 2}, {3, 3}, {3, 0}, {4, 2}, {5, 2},
                             {4, 3}, {4, 4}, {5, 5}, {2, 4}};
  for (const auto& p : high) m.set(p[0], p[1], 0.9f);
  return m;
}

ChiConfig PaperConfig() {
  ChiConfig cfg;
  cfg.cell_width = 2;
  cfg.cell_height = 2;
  cfg.num_bins = 2;
  return cfg;
}

TEST(BoundsTest, PaperFigure6Example) {
  // roi = ((3,3),(5,5)) inclusive = [2,5)² half-open; (lv,uv) = (0.6, 1.0).
  // The paper computes θ̄₁ = C(roi⁺)[1] − C(roi⁺)[2] = 8 − 0 = 8 and
  // θ̄₂ = C(roi⁻)[1] − C(roi⁻)[2] + |roi| − |roi⁻| = 2 − 0 + 9 − 4 = 7.
  const Mask m = PaperFigureMask();
  const Chi chi = BuildChi(m, PaperConfig());
  const ROI roi(2, 2, 5, 5);
  const ValueRange range(0.6, 1.0);

  const CpBoundsDetail d = ComputeCpBoundsDetail(chi, roi, range);
  EXPECT_EQ(d.upper1, 8);
  EXPECT_EQ(d.upper2, 7);
  EXPECT_EQ(d.combined.upper, 7);

  const int64_t exact = CountPixels(m, roi, range);
  EXPECT_EQ(exact, 6);
  EXPECT_LE(d.combined.lower, exact);
  EXPECT_GE(d.combined.upper, exact);
}

TEST(BoundsTest, ExactWhenFullyAligned) {
  // Grid-aligned ROI + bin-aligned range pin the value: lower == upper == CP.
  const Mask m = PaperFigureMask();
  const Chi chi = BuildChi(m, PaperConfig());
  const ROI roi(2, 2, 6, 6);             // boundary-aligned
  const ValueRange range(0.5, 1.0);      // bin edge
  const CpBounds b = ComputeCpBounds(chi, roi, range);
  EXPECT_TRUE(b.Tight());
  EXPECT_EQ(b.lower, CountPixels(m, roi, range));
}

TEST(BoundsTest, AlignedRangeUnalignedRoi) {
  const Mask m = PaperFigureMask();
  const Chi chi = BuildChi(m, PaperConfig());
  const ROI roi(1, 1, 5, 5);
  const ValueRange range(0.5, 1.0);
  const CpBounds b = ComputeCpBounds(chi, roi, range);
  const int64_t exact = CountPixels(m, roi, range);
  EXPECT_LE(b.lower, exact);
  EXPECT_GE(b.upper, exact);
  EXPECT_LE(b.upper, roi.Area());
}

TEST(BoundsTest, EmptyRoiGivesZero) {
  const Chi chi = BuildChi(PaperFigureMask(), PaperConfig());
  EXPECT_EQ(ComputeCpBounds(chi, ROI(3, 3, 3, 5), ValueRange(0, 1)).upper, 0);
  EXPECT_EQ(ComputeCpBounds(chi, ROI(10, 10, 20, 20), ValueRange(0, 1)).upper,
            0);
}

TEST(BoundsTest, EmptyValueRangeGivesZero) {
  const Chi chi = BuildChi(PaperFigureMask(), PaperConfig());
  const CpBounds b =
      ComputeCpBounds(chi, ROI(0, 0, 6, 6), ValueRange(0.7, 0.7));
  EXPECT_EQ(b.lower, 0);
  EXPECT_EQ(b.upper, 0);
}

TEST(BoundsTest, FullMaskFullRangeIsExactArea) {
  Rng rng(1);
  const Mask m = RandomMask(&rng, 12, 12);
  const Chi chi = BuildChi(m, PaperConfig());
  const CpBounds b =
      ComputeCpBounds(chi, ROI(0, 0, 12, 12), ValueRange(0.0, 1.0));
  EXPECT_TRUE(b.Tight());
  EXPECT_EQ(b.lower, 144);
}

TEST(BoundsTest, SubPixelRoiWithinOneCell) {
  // ROI strictly inside one cell: no inner region exists; bounds must still
  // bracket the exact count.
  Rng rng(2);
  ChiConfig cfg;
  cfg.cell_width = 8;
  cfg.cell_height = 8;
  cfg.num_bins = 4;
  const Mask m = RandomMask(&rng, 16, 16);
  const Chi chi = BuildChi(m, cfg);
  const ROI roi(2, 3, 6, 7);
  const ValueRange range(0.3, 0.8);
  const CpBounds b = ComputeCpBounds(chi, roi, range);
  const int64_t exact = CountPixels(m, roi, range);
  EXPECT_LE(b.lower, exact);
  EXPECT_GE(b.upper, exact);
  EXPECT_LE(b.upper, roi.Area());
  EXPECT_GE(b.lower, 0);
}

TEST(BoundsTest, IntervalArithmeticOnCpBounds) {
  const CpBounds a{2, 5};
  const CpBounds b{1, 3};
  const CpBounds sum = a + b;
  EXPECT_EQ(sum.lower, 3);
  EXPECT_EQ(sum.upper, 8);
  const CpBounds diff = a - b;
  EXPECT_EQ(diff.lower, -1);
  EXPECT_EQ(diff.upper, 4);
}

/// The core soundness sweep: random masks × configs × ROIs × ranges.
struct BoundsSweepParam {
  int32_t width;
  int32_t height;
  int32_t cell;
  int32_t bins;
};

class BoundsPropertyTest : public ::testing::TestWithParam<BoundsSweepParam> {};

TEST_P(BoundsPropertyTest, BoundsAlwaysBracketExactValue) {
  const BoundsSweepParam p = GetParam();
  Rng rng(2024 + p.width * 5 + p.cell * 13 + p.bins * 29);
  ChiConfig cfg;
  cfg.cell_width = p.cell;
  cfg.cell_height = p.cell;
  cfg.num_bins = p.bins;

  for (int mask_trial = 0; mask_trial < 3; ++mask_trial) {
    const Mask m = mask_trial == 0 ? RandomMask(&rng, p.width, p.height)
                                   : BlobMask(&rng, p.width, p.height);
    const Chi chi = BuildChi(m, cfg);
    for (int trial = 0; trial < 80; ++trial) {
      const int32_t x0 = static_cast<int32_t>(rng.UniformInt(0, p.width - 1));
      const int32_t y0 = static_cast<int32_t>(rng.UniformInt(0, p.height - 1));
      const int32_t x1 = static_cast<int32_t>(rng.UniformInt(x0 + 1, p.width));
      const int32_t y1 =
          static_cast<int32_t>(rng.UniformInt(y0 + 1, p.height));
      const ROI roi(x0, y0, x1, y1);
      double a = rng.NextDouble(), b = rng.NextDouble();
      if (a > b) std::swap(a, b);
      // One third of trials use bin-aligned ranges to exercise tightness.
      if (trial % 3 == 0) {
        a = std::floor(a * cfg.num_bins) / cfg.num_bins;
        b = std::ceil(b * cfg.num_bins) / cfg.num_bins;
      }
      const ValueRange range(a, b);
      const CpBounds bounds = ComputeCpBounds(chi, roi, range);
      const int64_t exact = CountPixels(m, roi, range);
      ASSERT_GE(bounds.lower, 0);
      ASSERT_LE(bounds.lower, exact)
          << "roi " << roi.ToString() << " range " << range.ToString();
      ASSERT_GE(bounds.upper, exact)
          << "roi " << roi.ToString() << " range " << range.ToString();
      ASSERT_LE(bounds.upper, roi.Area());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BoundsPropertyTest,
    ::testing::Values(BoundsSweepParam{16, 16, 4, 4},
                      BoundsSweepParam{31, 17, 4, 8},    // ragged
                      BoundsSweepParam{24, 24, 8, 16},
                      BoundsSweepParam{48, 32, 16, 2},   // coarse bins
                      BoundsSweepParam{56, 56, 7, 10},
                      BoundsSweepParam{12, 40, 5, 6}));

TEST(BoundsTest, AlignedEverythingIsAlwaysTight) {
  // When both ROI corners sit on grid boundaries and lv/uv on bin edges,
  // bounds must equal the exact CP (no slack at all).
  Rng rng(77);
  ChiConfig cfg;
  cfg.cell_width = 4;
  cfg.cell_height = 4;
  cfg.num_bins = 8;
  const Mask m = BlobMask(&rng, 32, 32);
  const Chi chi = BuildChi(m, cfg);
  for (int trial = 0; trial < 100; ++trial) {
    const int32_t bx0 = static_cast<int32_t>(rng.UniformInt(0, 7));
    const int32_t bx1 = static_cast<int32_t>(rng.UniformInt(bx0 + 1, 8));
    const int32_t by0 = static_cast<int32_t>(rng.UniformInt(0, 7));
    const int32_t by1 = static_cast<int32_t>(rng.UniformInt(by0 + 1, 8));
    const ROI roi(bx0 * 4, by0 * 4, bx1 * 4, by1 * 4);
    const int32_t lo = static_cast<int32_t>(rng.UniformInt(0, 7));
    const int32_t hi = static_cast<int32_t>(rng.UniformInt(lo + 1, 8));
    const ValueRange range(lo / 8.0, hi / 8.0);
    const CpBounds b = ComputeCpBounds(chi, roi, range);
    ASSERT_TRUE(b.Tight()) << b.ToString();
    ASSERT_EQ(b.lower, CountPixels(m, roi, range));
  }
}

TEST(BoundsTest, EquiDepthBoundsBracketExactValue) {
  // The soundness invariant holds for equi-depth buckets too: bounds only
  // consume EdgeValue/BinFloor/BinCeil, never the equi-width Δ.
  Rng rng(2025);
  ChiConfig cfg;
  cfg.cell_width = cfg.cell_height = 5;
  cfg.num_bins = 6;
  cfg.custom_edges = {0.04, 0.1, 0.25, 0.5, 0.8};
  const Mask m = BlobMask(&rng, 40, 30);
  const Chi chi = BuildChi(m, cfg);
  for (int trial = 0; trial < 200; ++trial) {
    const int32_t x0 = static_cast<int32_t>(rng.UniformInt(0, 39));
    const int32_t y0 = static_cast<int32_t>(rng.UniformInt(0, 29));
    const int32_t x1 = static_cast<int32_t>(rng.UniformInt(x0 + 1, 40));
    const int32_t y1 = static_cast<int32_t>(rng.UniformInt(y0 + 1, 30));
    const ROI roi(x0, y0, x1, y1);
    double a = rng.NextDouble(), b = rng.NextDouble();
    if (a > b) std::swap(a, b);
    const ValueRange range(a, b);
    const CpBounds bounds = ComputeCpBounds(chi, roi, range);
    const int64_t exact = CountPixels(m, roi, range);
    ASSERT_LE(bounds.lower, exact) << roi.ToString() << range.ToString();
    ASSERT_GE(bounds.upper, exact) << roi.ToString() << range.ToString();
  }
}

TEST(BoundsTest, EquiDepthTighterOnSkewedData) {
  // Saliency data is heavily skewed toward low values; quantile edges give
  // tighter bounds than equi-width edges for the same bin budget, on ranges
  // aligned to neither.
  Rng rng(2026);
  const Mask m = BlobMask(&rng, 56, 56);
  ChiConfig width_cfg;
  width_cfg.cell_width = width_cfg.cell_height = 14;
  width_cfg.num_bins = 8;
  ChiConfig depth_cfg = width_cfg;
  // Quantile-ish edges for blob masks (mass concentrated below 0.2).
  depth_cfg.custom_edges = {0.02, 0.04, 0.07, 0.12, 0.2, 0.35, 0.6};
  const Chi cw = BuildChi(m, width_cfg);
  const Chi cd = BuildChi(m, depth_cfg);
  int64_t width_total = 0, depth_total = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const ROI roi(7, 7, 49, 49);
    const double lv = rng.Uniform(0.0, 0.2);
    const ValueRange range(lv, rng.Uniform(lv + 0.01, 0.4));
    const CpBounds bw = ComputeCpBounds(cw, roi, range);
    const CpBounds bd = ComputeCpBounds(cd, roi, range);
    width_total += bw.upper - bw.lower;
    depth_total += bd.upper - bd.lower;
  }
  EXPECT_LT(depth_total, width_total);
}

TEST(BoundsTest, FinerIndexGivesTighterOrEqualBounds) {
  // §4.4: larger (finer) indexes yield tighter bounds. Refining the grid 2×
  // must never loosen the bound on aligned-range queries.
  Rng rng(88);
  const Mask m = BlobMask(&rng, 64, 64);
  ChiConfig coarse;
  coarse.cell_width = coarse.cell_height = 16;
  coarse.num_bins = 4;
  ChiConfig fine;
  fine.cell_width = fine.cell_height = 8;
  fine.num_bins = 8;
  const Chi c1 = BuildChi(m, coarse);
  const Chi c2 = BuildChi(m, fine);
  for (int trial = 0; trial < 60; ++trial) {
    const int32_t x0 = static_cast<int32_t>(rng.UniformInt(0, 62));
    const int32_t y0 = static_cast<int32_t>(rng.UniformInt(0, 62));
    const int32_t x1 = static_cast<int32_t>(rng.UniformInt(x0 + 1, 64));
    const int32_t y1 = static_cast<int32_t>(rng.UniformInt(y0 + 1, 64));
    const ROI roi(x0, y0, x1, y1);
    // Coarse-aligned range so both indexes see aligned edges.
    const int32_t lo = static_cast<int32_t>(rng.UniformInt(0, 3));
    const ValueRange range(lo / 4.0, 1.0);
    const CpBounds bc = ComputeCpBounds(c1, roi, range);
    const CpBounds bf = ComputeCpBounds(c2, roi, range);
    ASSERT_LE(bf.upper, bc.upper);
    ASSERT_GE(bf.lower, bc.lower);
  }
}

}  // namespace
}  // namespace masksearch
