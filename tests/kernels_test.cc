// Kernel-vs-reference equivalence suite for the hot-path compute kernels
// (kernels/): blocked CHI scatter + fused finalize vs the scalar reference,
// and the mask-major derived-aggregation kernels vs the pixel-major
// reference — on random masks, ragged shapes that don't divide the cell
// size, and finite out-of-domain values from user MASK_AGGs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <tuple>

#include "masksearch/exec/mask_agg.h"
#include "masksearch/index/chi_builder.h"
#include "masksearch/kernels/agg_kernels.h"
#include "masksearch/kernels/chi_kernels.h"
#include "masksearch/query/cp.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::RandomMask;

std::string SerializeChi(const Chi& chi) {
  BufferWriter w;
  chi.Serialize(&w);
  return w.buffer();
}

void ExpectChiEquivalent(const Mask& mask, const ChiConfig& cfg,
                         const std::string& label) {
  const Chi fast = BuildChi(mask, cfg);
  const Chi ref = BuildChiReference(mask, cfg);
  EXPECT_EQ(SerializeChi(fast), SerializeChi(ref)) << label;
}

/// Mask with finite values outside [0, 1), as a user-defined MASK_AGG might
/// produce (bypasses Mask::FromData validation on purpose).
Mask OutOfDomainMask(Rng* rng, int32_t w, int32_t h) {
  Mask m(w, h);
  for (float& v : m.mutable_data()) {
    const float u = rng->NextFloat();
    if (u < 0.2f) {
      v = -2.0f + 3.0f * rng->NextFloat();  // below pmin
    } else if (u < 0.4f) {
      v = 1.0f + 50.0f * rng->NextFloat();  // above pmax
    } else {
      v = rng->NextFloat();
    }
  }
  return m;
}

TEST(ChiKernelTest, ScatterMatchesReferenceOnRandomMasks) {
  Rng rng(11);
  for (const auto& [w, h] : std::vector<std::pair<int32_t, int32_t>>{
           {16, 16}, {64, 48}, {224, 224}}) {
    const Mask m = RandomMask(&rng, w, h);
    ChiBinningSpec spec;
    spec.cell_width = 8;
    spec.cell_height = 8;
    spec.num_bins = 16;
    spec.inv_delta = 16.0;  // 16 equi-width bins over [0, 1)
    const int32_t nbx = ChiNumBoundaries(w, spec.cell_width);
    const int32_t nby = ChiNumBoundaries(h, spec.cell_height);
    std::vector<uint32_t> fast(ChiAccSize(w, h, spec), 0);
    std::vector<uint32_t> ref(fast.size(), 0);
    ChiCellScatter(m.data().data(), w, h, spec, fast.data());
    ChiCellScatterReference(m.data().data(), w, h, spec, ref.data());
    EXPECT_EQ(fast, ref) << w << "x" << h << " scatter";
    ChiFinalizeCounts(fast.data(), nbx, nby, spec.num_bins);
    ChiFinalizeCountsReference(ref.data(), nbx, nby, spec.num_bins);
    EXPECT_EQ(fast, ref) << w << "x" << h << " finalize";
  }
}

TEST(ChiKernelTest, RaggedShapesMatchReference) {
  Rng rng(12);
  // Shapes and cell sizes chosen so neither axis divides evenly, including
  // cells wider than the mask.
  const std::vector<std::tuple<int32_t, int32_t, int32_t, int32_t>> cases = {
      {17, 13, 8, 8}, {100, 90, 28, 28}, {5, 37, 7, 4}, {3, 3, 8, 8},
      {1, 1, 28, 28}, {33, 1, 4, 4}};
  for (const auto& [w, h, cw, ch] : cases) {
    ChiConfig cfg;
    cfg.cell_width = cw;
    cfg.cell_height = ch;
    cfg.num_bins = 8;
    ExpectChiEquivalent(RandomMask(&rng, w, h), cfg,
                        std::to_string(w) + "x" + std::to_string(h));
  }
}

TEST(ChiKernelTest, OutOfDomainValuesMatchReference) {
  Rng rng(13);
  ChiConfig cfg;
  cfg.cell_width = 8;
  cfg.cell_height = 8;
  cfg.num_bins = 16;
  ExpectChiEquivalent(OutOfDomainMask(&rng, 50, 46), cfg, "out-of-domain");
}

TEST(ChiKernelTest, EquiDepthEdgesMatchReference) {
  Rng rng(14);
  ChiConfig cfg;
  cfg.cell_width = 8;
  cfg.cell_height = 8;
  cfg.num_bins = 8;
  cfg.custom_edges = {0.05, 0.061, 0.2, 0.5, 0.7, 0.9, 0.97};
  ASSERT_TRUE(cfg.Valid());
  ExpectChiEquivalent(RandomMask(&rng, 61, 29), cfg, "equi-depth");
  ExpectChiEquivalent(OutOfDomainMask(&rng, 40, 40), cfg,
                      "equi-depth out-of-domain");
}

TEST(ChiKernelTest, BinCountVariationsMatchReference) {
  Rng rng(15);
  const Mask m = RandomMask(&rng, 47, 31);
  for (int32_t bins : {1, 2, 5, 32}) {
    ChiConfig cfg;
    cfg.cell_width = 9;
    cfg.cell_height = 5;
    cfg.num_bins = bins;
    ExpectChiEquivalent(m, cfg, "bins=" + std::to_string(bins));
  }
}

class DerivedKernelTest : public ::testing::Test {
 protected:
  static std::vector<const float*> Ptrs(const std::vector<Mask>& masks) {
    std::vector<const float*> p;
    for (const Mask& m : masks) p.push_back(m.data().data());
    return p;
  }

  static void ExpectDerivedEquivalent(const std::vector<Mask>& masks,
                                      DerivedAggOp op, float threshold,
                                      const std::string& label) {
    const size_t n = static_cast<size_t>(masks[0].NumPixels());
    std::vector<float> fast(n), ref(n);
    const std::vector<const float*> ptrs = Ptrs(masks);
    const float one = DerivedMaskOne();
    DerivedMaskKernel(op, threshold, one, ptrs.data(), ptrs.size(), n,
                      fast.data());
    DerivedMaskReference(op, threshold, one, ptrs.data(), ptrs.size(), n,
                         ref.data());
    // Bit-identical, including NaN propagation through the average clamp.
    EXPECT_EQ(std::memcmp(fast.data(), ref.data(), n * sizeof(float)), 0)
        << label;
  }
};

TEST_F(DerivedKernelTest, AllOpsMatchReference) {
  Rng rng(21);
  for (size_t members : {size_t{1}, size_t{2}, size_t{5}, size_t{16}}) {
    for (const auto& [w, h] :
         std::vector<std::pair<int32_t, int32_t>>{{33, 17}, {64, 64}}) {
      std::vector<Mask> masks;
      for (size_t i = 0; i < members; ++i) {
        masks.push_back(RandomMask(&rng, w, h));
      }
      for (DerivedAggOp op : {DerivedAggOp::kIntersect, DerivedAggOp::kUnion,
                              DerivedAggOp::kAverage}) {
        ExpectDerivedEquivalent(
            masks, op, 0.7f,
            "op=" + std::to_string(static_cast<int>(op)) + " n=" +
                std::to_string(members) + " " + std::to_string(w) + "x" +
                std::to_string(h));
      }
    }
  }
}

TEST_F(DerivedKernelTest, OutOfDomainInputsMatchReference) {
  Rng rng(22);
  std::vector<Mask> masks;
  for (int i = 0; i < 4; ++i) masks.push_back(OutOfDomainMask(&rng, 29, 23));
  for (DerivedAggOp op : {DerivedAggOp::kIntersect, DerivedAggOp::kUnion,
                          DerivedAggOp::kAverage}) {
    ExpectDerivedEquivalent(masks, op, 0.5f, "out-of-domain");
  }
}

TEST_F(DerivedKernelTest, StripBoundaryShapes) {
  // Pixel counts around the internal strip length (2048): exactly one
  // strip, one short strip, strip+1.
  Rng rng(23);
  for (const auto& [w, h] : std::vector<std::pair<int32_t, int32_t>>{
           {2048, 1}, {2047, 1}, {683, 3}, {1, 1}}) {
    std::vector<Mask> masks;
    for (int i = 0; i < 3; ++i) masks.push_back(RandomMask(&rng, w, h));
    ExpectDerivedEquivalent(masks, DerivedAggOp::kIntersect, 0.6f,
                            std::to_string(w) + "x" + std::to_string(h));
  }
}

TEST_F(DerivedKernelTest, FusedCountMatchesMaterialized) {
  Rng rng(24);
  const int32_t w = 57, h = 43;
  std::vector<Mask> masks;
  for (int i = 0; i < 5; ++i) masks.push_back(RandomMask(&rng, w, h));
  const std::vector<const float*> ptrs = Ptrs(masks);
  const float one = DerivedMaskOne();

  const std::vector<ROI> rois = {
      ROI::Full(w, h), ROI(3, 5, 29, 31), ROI(-10, -10, 200, 200),
      ROI(10, 10, 10, 30),  // empty
      ROI(50, 40, 57, 43)};
  const std::vector<ValueRange> ranges = {
      ValueRange(0.5, 1.0),  // counts ones only
      ValueRange(0.0, 0.5),  // counts zeros only
      ValueRange(0.0, 1.0),  // counts everything
      ValueRange(0.7, 0.2),  // invalid
      ValueRange(0.25, 0.75)};

  for (DerivedAggOp op : {DerivedAggOp::kIntersect, DerivedAggOp::kUnion,
                          DerivedAggOp::kAverage}) {
    std::vector<float> derived(static_cast<size_t>(w) * h);
    DerivedMaskKernel(op, 0.6f, one, ptrs.data(), ptrs.size(), derived.size(),
                      derived.data());
    for (const ROI& roi : rois) {
      for (const ValueRange& range : ranges) {
        const int64_t fused =
            DerivedCpCount(op, 0.6f, one, ptrs.data(), ptrs.size(), w, h, roi,
                           range);
        const int64_t want =
            CountPixelsRaw(derived.data(), w, h, roi, range);
        EXPECT_EQ(fused, want)
            << "op=" << static_cast<int>(op) << " roi=" << roi.ToString()
            << " range=" << range.ToString();
      }
    }
  }
}

TEST_F(DerivedKernelTest, ComputeDerivedMaskUsesKernels) {
  // The public entry point must agree with the reference kernel end to end.
  Rng rng(25);
  std::vector<Mask> masks;
  for (int i = 0; i < 3; ++i) masks.push_back(RandomMask(&rng, 21, 19));
  for (MaskAggOp op : {MaskAggOp::kIntersectThreshold,
                       MaskAggOp::kUnionThreshold, MaskAggOp::kAverage}) {
    auto got = ComputeDerivedMask(op, 0.8, masks);
    ASSERT_TRUE(got.ok());
    const DerivedAggOp kop = op == MaskAggOp::kIntersectThreshold
                                 ? DerivedAggOp::kIntersect
                                 : (op == MaskAggOp::kUnionThreshold
                                        ? DerivedAggOp::kUnion
                                        : DerivedAggOp::kAverage);
    std::vector<float> want(static_cast<size_t>(21) * 19);
    const std::vector<const float*> ptrs = Ptrs(masks);
    DerivedMaskReference(kop, 0.8f, DerivedMaskOne(), ptrs.data(),
                         ptrs.size(), want.size(), want.data());
    EXPECT_EQ(std::memcmp(got->data().data(), want.data(),
                          want.size() * sizeof(float)),
              0);
  }
}

}  // namespace
}  // namespace masksearch
