// Corruption fuzzing: every deserializer must handle arbitrary truncation
// and byte flips with a clean Status — no crashes, no hangs, no UB. These
// loops sweep truncation points and flip positions across all on-disk
// record types.

#include <gtest/gtest.h>

#include "masksearch/index/chi_builder.h"
#include "masksearch/index/chi_store.h"
#include "masksearch/index/index_manager.h"
#include "masksearch/ingest/ingestor.h"
#include "masksearch/storage/codec.h"
#include "masksearch/storage/npy.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::BlobMask;
using testing_util::RandomMask;
using testing_util::TempDir;

TEST(CorruptionFuzzTest, CodecTruncationSweep) {
  Rng rng(1);
  const std::string blob = EncodeMask(BlobMask(&rng, 24, 24));
  for (size_t cut = 0; cut < blob.size(); cut += 7) {
    auto r = DecodeMask(blob.substr(0, cut));
    // Either a clean error, or (only if the cut lands exactly at the end of
    // a complete stream, impossible here) success.
    if (r.ok()) {
      EXPECT_EQ(cut, blob.size());
    }
  }
}

TEST(CorruptionFuzzTest, CodecByteFlipSweep) {
  Rng rng(2);
  const std::string blob = EncodeMask(RandomMask(&rng, 16, 16));
  for (size_t pos = 0; pos < blob.size(); pos += 11) {
    std::string mutated = blob;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0xff);
    auto r = DecodeMask(mutated);
    if (r.ok()) {
      // Flips in the payload may still decode; shape must stay sane.
      EXPECT_EQ(r->width(), 16);
      EXPECT_EQ(r->height(), 16);
      for (float v : r->data()) {
        EXPECT_GE(v, 0.0f);
        EXPECT_LT(v, 1.0f);
      }
    }
  }
}

TEST(CorruptionFuzzTest, ChiRecordTruncationSweep) {
  Rng rng(3);
  ChiConfig cfg;
  cfg.cell_width = cfg.cell_height = 6;
  cfg.num_bins = 5;
  const Chi chi = BuildChi(RandomMask(&rng, 18, 18), cfg);
  BufferWriter w;
  chi.Serialize(&w);
  const std::string bytes = w.buffer();
  for (size_t cut = 0; cut < bytes.size(); cut += 5) {
    BufferReader r(bytes.data(), cut);
    auto restored = Chi::Deserialize(&r);
    EXPECT_FALSE(restored.ok()) << "cut at " << cut;
  }
}

TEST(CorruptionFuzzTest, ChiSetFileTruncationSweep) {
  TempDir dir("fuzz");
  Rng rng(4);
  ChiConfig cfg;
  cfg.cell_width = cfg.cell_height = 8;
  cfg.num_bins = 4;
  IndexManager mgr(3, cfg);
  for (MaskId id = 0; id < 3; ++id) {
    mgr.Put(id, BuildChi(RandomMask(&rng, 16, 16), cfg));
  }
  const std::string path = dir.file("set.chi");
  MS_ASSERT_OK(mgr.SaveToFile(path));
  const std::string bytes = ReadFile(path).ValueOrDie();

  for (size_t cut = 0; cut < bytes.size(); cut += 13) {
    const std::string tpath = dir.file("t.chi");
    MS_ASSERT_OK(WriteFile(tpath, bytes.substr(0, cut)));
    EXPECT_FALSE(LoadChiSet(tpath).ok()) << "cut at " << cut;
    // Scanning the entry table must also fail cleanly.
    EXPECT_FALSE(ScanChiSetIndex(tpath).ok()) << "cut at " << cut;
  }
}

TEST(CorruptionFuzzTest, ManifestTruncationSweep) {
  TempDir dir("fuzz");
  auto store = testing_util::MakeStore(dir.path(), 3, 1, 12, 12);
  store.reset();
  const std::string manifest =
      ReadFile(MaskStoreManifestPath(dir.path())).ValueOrDie();

  TempDir broken("fuzz_broken");
  // Data file content is irrelevant for manifest parsing.
  MS_ASSERT_OK(WriteFile(MaskStoreDataPath(broken.path()), "x"));
  for (size_t cut = 0; cut < manifest.size(); cut += 17) {
    MS_ASSERT_OK(WriteFile(MaskStoreManifestPath(broken.path()),
                           manifest.substr(0, cut)));
    EXPECT_FALSE(MaskStore::Open(broken.path()).ok()) << "cut at " << cut;
  }
}

TEST(CorruptionFuzzTest, NpyTruncationSweep) {
  Rng rng(5);
  const std::string blob = EncodeNpy(RandomMask(&rng, 10, 10));
  for (size_t cut = 0; cut < blob.size(); cut += 9) {
    auto r = DecodeNpy(blob.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "cut at " << cut;
  }
}

// ---------------------------------------------------------------------
// Torn-append recovery (docs/INGEST.md): a crash mid-append leaves bytes
// past what the manifest references. Reopening through the ingest layer
// must land exactly on the last durable epoch — truncating the torn tail,
// never crashing, never serving a silent short read. Damage *below* the
// published watermark is a typed Corruption.
// ---------------------------------------------------------------------

IngestorOptions FuzzIngestOptions() {
  IngestorOptions opts;
  opts.chi.cell_width = opts.chi.cell_height = 8;
  opts.chi.num_bins = 4;
  opts.num_shards = 2;
  opts.cache_budget_bytes = 1ull << 20;
  return opts;
}

/// Publishes `n` masks and returns the per-epoch filter baseline.
std::unique_ptr<Ingestor> MakePublished(const std::string& dir, Rng* rng,
                                        int64_t n) {
  auto ingestor = Ingestor::Create(dir, FuzzIngestOptions()).ValueOrDie();
  for (int64_t i = 0; i < n; ++i) {
    MaskMeta meta;
    meta.image_id = i;
    auto id = ingestor->Append(meta, BlobMask(rng, 16, 16));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
  }
  EXPECT_TRUE(ingestor->Publish().ok());
  return ingestor;
}

TEST(CorruptionFuzzTest, TornAppendMidBlobRecoversToDurableEpoch) {
  Rng rng(7);
  TempDir dir("fuzz_torn");
  {
    auto ingestor = MakePublished(dir.path(), &rng, 6);
    // Unpublished appends: crash before Publish. Sweep several torn
    // lengths, including a cut mid-blob.
    for (int64_t i = 0; i < 3; ++i) {
      MaskMeta meta;
      (void)ingestor->Append(meta, BlobMask(&rng, 16, 16)).ValueOrDie();
    }
    // "Crash": drop the ingestor without publishing.
  }
  // Additionally tear the tail mid-blob: chop a few bytes off the larger
  // shard file so the torn region ends inside a blob.
  const std::string shard0 = MaskStoreShardDataPath(dir.path(), 0, 2);
  const uint64_t size = FileSize(shard0).ValueOrDie();
  MS_ASSERT_OK(TruncateFile(shard0, size - 3));

  auto reopened = Ingestor::Open(dir.path(), FuzzIngestOptions()).ValueOrDie();
  EXPECT_EQ(reopened->epoch(), 1);
  EXPECT_EQ(reopened->watermark(), 6);
  EXPECT_GT(reopened->Stats().torn_bytes_recovered, 0u);
  // Every published mask reads back fully — no silent short reads.
  const MaskStore& store = reopened->snapshot()->store();
  ASSERT_EQ(store.num_masks(), 6);
  for (MaskId id = 0; id < 6; ++id) {
    auto mask = store.LoadMask(id);
    ASSERT_TRUE(mask.ok()) << mask.status().ToString();
    EXPECT_EQ(mask->NumPixels(), 16 * 16);
  }
  // And ingest resumes cleanly on the truncated files.
  MaskMeta meta;
  (void)reopened->Append(meta, BlobMask(&rng, 16, 16)).ValueOrDie();
  MS_ASSERT_OK(reopened->Publish());
  EXPECT_EQ(reopened->watermark(), 7);
}

TEST(CorruptionFuzzTest, TornAppendTruncationSweep) {
  // Sweep every truncation point of the torn (unpublished) tail: recovery
  // must succeed at each, always landing on the durable watermark.
  Rng rng(8);
  TempDir base("fuzz_sweep");
  {
    auto ingestor = MakePublished(base.path(), &rng, 4);
    for (int64_t i = 0; i < 2; ++i) {
      MaskMeta meta;
      (void)ingestor->Append(meta, BlobMask(&rng, 16, 16)).ValueOrDie();
    }
  }
  const std::string shard1 = MaskStoreShardDataPath(base.path(), 1, 2);
  const std::string full_bytes = ReadFile(shard1).ValueOrDie();
  // Durable bytes of shard 1 = what the manifest requires of it.
  auto parsed = internal::ReadMaskStoreManifest(base.path()).ValueOrDie();
  uint64_t durable = 0;
  for (size_t id = 0; id < parsed.sizes.size(); ++id) {
    if (id % 2 == 1) {
      durable = std::max(durable, parsed.offsets[id] + parsed.sizes[id]);
    }
  }
  ASSERT_GT(full_bytes.size(), durable);
  // Each recovery truncates the shard back to `durable`; rewrite the torn
  // tail before every cut so the sweep covers each truncation point.
  for (uint64_t cut = full_bytes.size(); cut >= durable;
       cut = cut >= 37 ? cut - 37 : 0) {
    MS_ASSERT_OK(WriteFile(shard1, full_bytes.substr(0, cut)));
    auto reopened = Ingestor::Open(base.path(), FuzzIngestOptions());
    ASSERT_TRUE(reopened.ok()) << "cut at " << cut << ": "
                               << reopened.status().ToString();
    EXPECT_EQ((*reopened)->watermark(), 4);
    if (cut == 0) break;
  }
}

TEST(CorruptionFuzzTest, TornBelowWatermarkIsTypedCorruption) {
  // Damage that eats into *published* bytes must never be papered over:
  // typed Corruption, not a crash, not a short read.
  Rng rng(9);
  TempDir dir("fuzz_below");
  { MakePublished(dir.path(), &rng, 6); }
  const std::string shard0 = MaskStoreShardDataPath(dir.path(), 0, 2);
  const uint64_t size = FileSize(shard0).ValueOrDie();
  for (uint64_t cut : {size / 2, uint64_t{1}, uint64_t{0}}) {
    MS_ASSERT_OK(TruncateFile(shard0, cut));
    auto reopened = Ingestor::Open(dir.path(), FuzzIngestOptions());
    ASSERT_FALSE(reopened.ok()) << "cut at " << cut;
    EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption)
        << reopened.status().ToString();
  }
}

TEST(CorruptionFuzzTest, TornManifestEntrySweepNeverCrashes) {
  // Truncate the *manifest* mid-offset-table entry: the atomic-publish
  // protocol means a real crash can't produce this, but a damaged disk
  // can — every cut must be a clean typed error through the ingest path.
  Rng rng(10);
  TempDir dir("fuzz_manifest");
  { MakePublished(dir.path(), &rng, 5); }
  const std::string manifest =
      ReadFile(MaskStoreManifestPath(dir.path())).ValueOrDie();
  for (size_t cut = 0; cut < manifest.size(); cut += 19) {
    MS_ASSERT_OK(WriteFile(MaskStoreManifestPath(dir.path()),
                           manifest.substr(0, cut)));
    auto reopened = Ingestor::Open(dir.path(), FuzzIngestOptions());
    EXPECT_FALSE(reopened.ok()) << "cut at " << cut;
  }
  // Restoring the manifest restores the store.
  MS_ASSERT_OK(WriteFile(MaskStoreManifestPath(dir.path()), manifest));
  auto reopened = Ingestor::Open(dir.path(), FuzzIngestOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->watermark(), 5);
}

TEST(CorruptionFuzzTest, EpochSidecarCorruptionIsTyped) {
  Rng rng(11);
  TempDir dir("fuzz_sidecar");
  { MakePublished(dir.path(), &rng, 3); }
  MS_ASSERT_OK(WriteFile(IngestEpochPath(dir.path()), "not-a-number"));
  auto reopened = Ingestor::Open(dir.path(), FuzzIngestOptions());
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
  // A *missing* sidecar is not corruption: stores made live for the first
  // time start at epoch 0.
  MS_ASSERT_OK(RemoveFileIfExists(IngestEpochPath(dir.path())));
  auto fresh = Ingestor::Open(dir.path(), FuzzIngestOptions());
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ((*fresh)->epoch(), 0);
  EXPECT_EQ((*fresh)->watermark(), 3);
}

TEST(CorruptionFuzzTest, RandomBytesNeverCrashAnyDecoder) {
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    std::string junk(static_cast<size_t>(rng.UniformInt(0, 512)), '\0');
    for (char& c : junk) c = static_cast<char>(rng.NextU64() & 0xff);
    (void)DecodeMask(junk);
    (void)DecodeNpy(junk);
    BufferReader r(junk);
    (void)Chi::Deserialize(&r);
  }
  SUCCEED();
}

}  // namespace
}  // namespace masksearch
