// Corruption fuzzing: every deserializer must handle arbitrary truncation
// and byte flips with a clean Status — no crashes, no hangs, no UB. These
// loops sweep truncation points and flip positions across all on-disk
// record types.

#include <gtest/gtest.h>

#include "masksearch/index/chi_builder.h"
#include "masksearch/index/chi_store.h"
#include "masksearch/index/index_manager.h"
#include "masksearch/storage/codec.h"
#include "masksearch/storage/npy.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::BlobMask;
using testing_util::RandomMask;
using testing_util::TempDir;

TEST(CorruptionFuzzTest, CodecTruncationSweep) {
  Rng rng(1);
  const std::string blob = EncodeMask(BlobMask(&rng, 24, 24));
  for (size_t cut = 0; cut < blob.size(); cut += 7) {
    auto r = DecodeMask(blob.substr(0, cut));
    // Either a clean error, or (only if the cut lands exactly at the end of
    // a complete stream, impossible here) success.
    if (r.ok()) {
      EXPECT_EQ(cut, blob.size());
    }
  }
}

TEST(CorruptionFuzzTest, CodecByteFlipSweep) {
  Rng rng(2);
  const std::string blob = EncodeMask(RandomMask(&rng, 16, 16));
  for (size_t pos = 0; pos < blob.size(); pos += 11) {
    std::string mutated = blob;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0xff);
    auto r = DecodeMask(mutated);
    if (r.ok()) {
      // Flips in the payload may still decode; shape must stay sane.
      EXPECT_EQ(r->width(), 16);
      EXPECT_EQ(r->height(), 16);
      for (float v : r->data()) {
        EXPECT_GE(v, 0.0f);
        EXPECT_LT(v, 1.0f);
      }
    }
  }
}

TEST(CorruptionFuzzTest, ChiRecordTruncationSweep) {
  Rng rng(3);
  ChiConfig cfg;
  cfg.cell_width = cfg.cell_height = 6;
  cfg.num_bins = 5;
  const Chi chi = BuildChi(RandomMask(&rng, 18, 18), cfg);
  BufferWriter w;
  chi.Serialize(&w);
  const std::string bytes = w.buffer();
  for (size_t cut = 0; cut < bytes.size(); cut += 5) {
    BufferReader r(bytes.data(), cut);
    auto restored = Chi::Deserialize(&r);
    EXPECT_FALSE(restored.ok()) << "cut at " << cut;
  }
}

TEST(CorruptionFuzzTest, ChiSetFileTruncationSweep) {
  TempDir dir("fuzz");
  Rng rng(4);
  ChiConfig cfg;
  cfg.cell_width = cfg.cell_height = 8;
  cfg.num_bins = 4;
  IndexManager mgr(3, cfg);
  for (MaskId id = 0; id < 3; ++id) {
    mgr.Put(id, BuildChi(RandomMask(&rng, 16, 16), cfg));
  }
  const std::string path = dir.file("set.chi");
  MS_ASSERT_OK(mgr.SaveToFile(path));
  const std::string bytes = ReadFile(path).ValueOrDie();

  for (size_t cut = 0; cut < bytes.size(); cut += 13) {
    const std::string tpath = dir.file("t.chi");
    MS_ASSERT_OK(WriteFile(tpath, bytes.substr(0, cut)));
    EXPECT_FALSE(LoadChiSet(tpath).ok()) << "cut at " << cut;
    // Scanning the entry table must also fail cleanly.
    EXPECT_FALSE(ScanChiSetIndex(tpath).ok()) << "cut at " << cut;
  }
}

TEST(CorruptionFuzzTest, ManifestTruncationSweep) {
  TempDir dir("fuzz");
  auto store = testing_util::MakeStore(dir.path(), 3, 1, 12, 12);
  store.reset();
  const std::string manifest =
      ReadFile(MaskStoreManifestPath(dir.path())).ValueOrDie();

  TempDir broken("fuzz_broken");
  // Data file content is irrelevant for manifest parsing.
  MS_ASSERT_OK(WriteFile(MaskStoreDataPath(broken.path()), "x"));
  for (size_t cut = 0; cut < manifest.size(); cut += 17) {
    MS_ASSERT_OK(WriteFile(MaskStoreManifestPath(broken.path()),
                           manifest.substr(0, cut)));
    EXPECT_FALSE(MaskStore::Open(broken.path()).ok()) << "cut at " << cut;
  }
}

TEST(CorruptionFuzzTest, NpyTruncationSweep) {
  Rng rng(5);
  const std::string blob = EncodeNpy(RandomMask(&rng, 10, 10));
  for (size_t cut = 0; cut < blob.size(); cut += 9) {
    auto r = DecodeNpy(blob.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "cut at " << cut;
  }
}

TEST(CorruptionFuzzTest, RandomBytesNeverCrashAnyDecoder) {
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    std::string junk(static_cast<size_t>(rng.UniformInt(0, 512)), '\0');
    for (char& c : junk) c = static_cast<char>(rng.NextU64() & 0xff);
    (void)DecodeMask(junk);
    (void)DecodeNpy(junk);
    BufferReader r(junk);
    (void)Chi::Deserialize(&r);
  }
  SUCCEED();
}

}  // namespace
}  // namespace masksearch
