// Tests for top-k execution (§3.5): exactness against brute force, pruning
// effectiveness, ordering semantics, and MS-II behaviour.

#include <gtest/gtest.h>

#include "masksearch/baselines/full_scan.h"
#include "masksearch/exec/topk_executor.h"
#include "masksearch/workload/query_gen.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::MakeStore;
using testing_util::TempDir;

ChiConfig TestConfig() {
  ChiConfig cfg;
  cfg.cell_width = 8;
  cfg.cell_height = 8;
  cfg.num_bins = 8;
  return cfg;
}

class TopKExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("topk");
    store_ = MakeStore(dir_->path(), 25, 2, 48, 48, /*seed=*/21);
    index_ = std::make_unique<IndexManager>(store_->num_masks(), TestConfig());
    MS_ASSERT_OK(index_->BuildAll(*store_));
    store_->ResetCounters();
  }

  TopKQuery ConstantRoiQuery(size_t k, bool descending) const {
    TopKQuery q;
    CpTerm term;
    term.roi_source = RoiSource::kConstant;
    term.constant_roi = ROI(10, 10, 40, 40);
    term.range = ValueRange(0.7, 1.0);
    q.terms.push_back(term);
    q.order_expr = CpExpr::Term(0);
    q.k = k;
    q.descending = descending;
    return q;
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<MaskStore> store_;
  std::unique_ptr<IndexManager> index_;
};

void ExpectSameItems(const TopKResult& got, const TopKResult& want) {
  ASSERT_EQ(got.items.size(), want.items.size());
  for (size_t i = 0; i < got.items.size(); ++i) {
    EXPECT_EQ(got.items[i].mask_id, want.items[i].mask_id) << "rank " << i;
    EXPECT_DOUBLE_EQ(got.items[i].value, want.items[i].value) << "rank " << i;
  }
}

TEST_F(TopKExecutorTest, DescendingMatchesReference) {
  const TopKQuery q = ConstantRoiQuery(10, /*descending=*/true);
  auto got = ExecuteTopK(*store_, index_.get(), q);
  ASSERT_TRUE(got.ok()) << got.status();
  FullScanBaseline reference(store_.get());
  auto want = reference.TopK(q);
  ASSERT_TRUE(want.ok());
  ExpectSameItems(*got, *want);
  // Results are sorted best-first.
  for (size_t i = 1; i < got->items.size(); ++i) {
    EXPECT_GE(got->items[i - 1].value, got->items[i].value);
  }
}

TEST_F(TopKExecutorTest, AscendingMatchesReference) {
  const TopKQuery q = ConstantRoiQuery(10, /*descending=*/false);
  auto got = ExecuteTopK(*store_, index_.get(), q);
  ASSERT_TRUE(got.ok());
  FullScanBaseline reference(store_.get());
  auto want = reference.TopK(q);
  ASSERT_TRUE(want.ok());
  ExpectSameItems(*got, *want);
  for (size_t i = 1; i < got->items.size(); ++i) {
    EXPECT_LE(got->items[i - 1].value, got->items[i].value);
  }
}

TEST_F(TopKExecutorTest, PruningLoadsFarFewerThanAllMasks) {
  const TopKQuery q = ConstantRoiQuery(5, true);
  auto r = ExecuteTopK(*store_, index_.get(), q);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->stats.masks_loaded, store_->num_masks());
  EXPECT_GT(r->stats.pruned, 0);
}

TEST_F(TopKExecutorTest, KLargerThanDatasetReturnsAll) {
  const TopKQuery q = ConstantRoiQuery(1000, true);
  auto r = ExecuteTopK(*store_, index_.get(), q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(static_cast<int64_t>(r->items.size()), store_->num_masks());
}

TEST_F(TopKExecutorTest, TieBreakByMaskIdAscending) {
  // A constant-valued dataset region makes all values tie; the winners must
  // be the smallest mask ids.
  TopKQuery q = ConstantRoiQuery(3, true);
  q.terms[0].range = ValueRange(0.0, 1.0);  // value == |roi| for every mask
  auto r = ExecuteTopK(*store_, index_.get(), q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->items.size(), 3u);
  EXPECT_EQ(r->items[0].mask_id, 0);
  EXPECT_EQ(r->items[1].mask_id, 1);
  EXPECT_EQ(r->items[2].mask_id, 2);
  // Every value is pinned by bounds → nothing needs loading.
  EXPECT_EQ(r->stats.masks_loaded, 0);
}

TEST_F(TopKExecutorTest, SequentialOrderSameResult) {
  // The paper's strict sequential processing (no bound-sorted order) must
  // return the identical result, possibly loading more masks.
  const TopKQuery q = ConstantRoiQuery(8, true);
  EngineOptions sequential;
  sequential.sort_by_bound = false;
  auto a = ExecuteTopK(*store_, index_.get(), q);
  auto b = ExecuteTopK(*store_, index_.get(), q, sequential);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectSameItems(*a, *b);
  EXPECT_LE(a->stats.masks_loaded, b->stats.masks_loaded);
}

TEST_F(TopKExecutorTest, RatioExpressionTopK) {
  // Example 1: top-k lowest ratio of salient pixels inside the object box to
  // salient pixels overall.
  TopKQuery q;
  CpTerm obj;
  obj.roi_source = RoiSource::kObjectBox;
  obj.range = ValueRange(0.85, 1.0);
  CpTerm full;
  full.roi_source = RoiSource::kFullMask;
  full.range = ValueRange(0.85, 1.0);
  q.terms = {obj, full};
  // Guard the denominator: ratio = obj / (full + 1).
  q.order_expr =
      CpExpr::Term(0) / (CpExpr::Term(1) + CpExpr::Constant(1.0));
  q.k = 25;
  q.descending = false;

  auto got = ExecuteTopK(*store_, index_.get(), q);
  ASSERT_TRUE(got.ok()) << got.status();
  FullScanBaseline reference(store_.get());
  auto want = reference.TopK(q);
  ASSERT_TRUE(want.ok());
  ExpectSameItems(*got, *want);
}

TEST_F(TopKExecutorTest, IncrementalIndexingStillExact) {
  IndexManager empty(store_->num_masks(), TestConfig());
  EngineOptions opts;
  opts.build_missing = true;
  const TopKQuery q = ConstantRoiQuery(7, true);
  auto first = ExecuteTopK(*store_, &empty, q, opts);
  ASSERT_TRUE(first.ok());
  auto second = ExecuteTopK(*store_, &empty, q, opts);
  ASSERT_TRUE(second.ok());
  ExpectSameItems(*first, *second);
  EXPECT_GT(first->stats.chis_built, 0);
  EXPECT_LT(second->stats.masks_loaded, first->stats.masks_loaded);
}

TEST_F(TopKExecutorTest, RandomizedQueriesMatchReference) {
  FullScanBaseline reference(store_.get());
  Rng rng(31337);
  for (int i = 0; i < 25; ++i) {
    const TopKQuery q = GenerateTopKQuery(&rng, *store_);
    auto got = ExecuteTopK(*store_, index_.get(), q);
    ASSERT_TRUE(got.ok());
    auto want = reference.TopK(q);
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(got->items.size(), want->items.size()) << "query " << i;
    for (size_t j = 0; j < got->items.size(); ++j) {
      ASSERT_EQ(got->items[j].mask_id, want->items[j].mask_id)
          << "query " << i << " rank " << j;
    }
  }
}

TEST_F(TopKExecutorTest, InvalidQueriesRejected) {
  TopKQuery no_expr;
  no_expr.k = 5;
  EXPECT_TRUE(
      ExecuteTopK(*store_, index_.get(), no_expr).status().IsInvalidArgument());

  TopKQuery zero_k = ConstantRoiQuery(0, true);
  EXPECT_TRUE(
      ExecuteTopK(*store_, index_.get(), zero_k).status().IsInvalidArgument());

  TopKQuery bad_term = ConstantRoiQuery(5, true);
  bad_term.order_expr = CpExpr::Term(9);
  EXPECT_TRUE(ExecuteTopK(*store_, index_.get(), bad_term)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace masksearch
