// ThreadPool stress tests: concurrent submission from many producer
// threads, destruction with work still queued, ParallelFor correctness
// under contention, and a parallel ExecuteFilter run. All of these are
// meaningful under -DMASKSEARCH_SANITIZE=thread, which must report no races.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "masksearch/common/latch.h"
#include "masksearch/common/thread_pool.h"
#include "masksearch/exec/filter_executor.h"
#include "test_util.h"

namespace masksearch {
namespace {

using testing_util::MakeStore;
using testing_util::TempDir;

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  pool.Wait();  // repeated waits must also be safe
}

TEST(ThreadPoolTest, ConcurrentSubmitFromManyProducers) {
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  constexpr int kProducers = 8;
  constexpr int kTasksPerProducer = 500;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &sum, p] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        pool.Submit([&sum, p, i] {
          sum.fetch_add(static_cast<int64_t>(p) * kTasksPerProducer + i,
                        std::memory_order_relaxed);
        });
      }
    });
  }
  for (std::thread& t : producers) t.join();
  pool.Wait();
  constexpr int64_t n = static_cast<int64_t>(kProducers) * kTasksPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ThreadPoolTest, WaitFromMultipleThreads) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) waiters.emplace_back([&pool] { pool.Wait(); });
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, DestructionWithQueuedWorkCompletesEverything) {
  // Drain-on-destroy contract: workers only exit once stop_ is set AND the
  // queue is empty, so every task submitted before destruction must run.
  // Run several times to shake out orderings.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> counter{0};
    {
      ThreadPool pool(3);
      for (int i = 0; i < 256; ++i) {
        pool.Submit([&counter] {
          counter.fetch_add(1, std::memory_order_relaxed);
        });
      }
      // No Wait(): destructor runs with work still queued.
    }
    EXPECT_EQ(counter.load(), 256) << "round " << round;
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  ParallelFor(&pool, kN, [&hits](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForInlineWithNullPool) {
  std::vector<int> hits(1000, 0);
  ParallelFor(nullptr, hits.size(), [&hits](size_t i) { hits[i]++; });
  for (size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i], 1);
}

TEST(ThreadPoolTest, ParallelForZeroItems) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(&pool, 0, [&called](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, DefaultPoolIsSingletonAndUsable) {
  ThreadPool* a = ThreadPool::Default();
  ThreadPool* b = ThreadPool::Default();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  std::atomic<int> counter{0};
  ParallelFor(a, 64, [&counter](size_t) {
    counter.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(counter.load(), 64);
}

// The §3.2.1 scenario TSan must bless: the filter stage fanning per-mask
// bound computation out over the pool, with results identical to the
// single-threaded run.
TEST(ThreadPoolTest, ParallelExecuteFilterMatchesSequential) {
  TempDir dir("thread_pool_filter");
  auto store = MakeStore(dir.path(), /*num_images=*/16, /*num_models=*/2,
                         /*w=*/48, /*h=*/48, /*seed=*/23);
  ChiConfig cfg;
  cfg.cell_width = 8;
  cfg.cell_height = 8;
  cfg.num_bins = 8;
  IndexManager index(store->num_masks(), cfg);
  ASSERT_TRUE(index.BuildAll(*store).ok());

  FilterQuery q;
  CpTerm term;
  term.roi_source = RoiSource::kObjectBox;
  term.range = ValueRange(0.6, 1.0);
  q.terms.push_back(term);
  q.predicate = Predicate::Compare(CpExpr::Term(0), CompareOp::kGt, 200.0);

  EngineOptions sequential;
  auto want = ExecuteFilter(*store, &index, q, sequential);
  ASSERT_TRUE(want.ok()) << want.status();

  ThreadPool pool(4);
  EngineOptions parallel_opts;
  parallel_opts.pool = &pool;
  for (int round = 0; round < 5; ++round) {
    auto got = ExecuteFilter(*store, &index, q, parallel_opts);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->mask_ids, want->mask_ids) << "round " << round;
  }
}

TEST(ThreadPoolTest, TryRunOneTaskDrainsQueueOnCallerThread) {
  ThreadPool pool(1);
  // Park the lone worker so queued tasks can only run via the caller.
  Latch parked(1);
  Latch release(1);
  pool.Submit([&] {
    parked.CountDown();
    release.Wait();
  });
  parked.Wait();

  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&] { ran.fetch_add(1); });
  }
  while (pool.TryRunOneTask()) {
  }
  EXPECT_EQ(ran.load(), 4);
  EXPECT_FALSE(pool.TryRunOneTask());  // empty queue: false, no block
  release.CountDown();
  pool.Wait();
}

// Regression for the nested-submission deadlock the serving layer
// surfaced: a task running ON the pool submits a sub-task to the SAME pool
// and waits for it. With a blocking Latch::Wait and every worker occupied
// by such waiters, the sub-tasks could never run. WaitHelping drains them
// on the waiting thread instead.
TEST(ThreadPoolTest, WaitHelpingFromPoolTaskCannotDeadlock) {
  ThreadPool pool(1);  // worst case: the waiter occupies the only worker
  Latch outer_done(1);
  pool.Submit([&] {
    auto inner = std::make_shared<Latch>(1);
    pool.Submit([inner] { inner->CountDown(); });
    WaitHelping(inner.get(), &pool);  // plain inner->Wait() would deadlock
    outer_done.CountDown();
  });
  outer_done.Wait();
  pool.Wait();
}

// The same hazard at executor scale: whole queries dispatched as tasks of
// a pool that is ALSO the engine's io_pool (service workers sharing one
// pool with the prefetch pipelines). Every pipeline wait must be a helping
// wait for this to terminate with 2 workers and 6 concurrent queries.
TEST(ThreadPoolTest, QueriesAsPoolTasksSharingEnginePoolsTerminate) {
  TempDir dir("thread_pool_nested_svc");
  auto store = MakeStore(dir.path(), /*num_images=*/12, /*num_models=*/2,
                         /*w=*/48, /*h=*/48, /*seed=*/29);
  ChiConfig cfg;
  cfg.cell_width = 8;
  cfg.cell_height = 8;
  cfg.num_bins = 8;
  IndexManager index(store->num_masks(), cfg);
  ASSERT_TRUE(index.BuildAll(*store).ok());

  FilterQuery q;
  CpTerm term;
  term.roi_source = RoiSource::kObjectBox;
  term.range = ValueRange(0.5, 1.0);
  q.terms.push_back(term);
  q.predicate = Predicate::Compare(CpExpr::Term(0), CompareOp::kGt, 100.0);

  EngineOptions serial;
  auto want = ExecuteFilter(*store, &index, q, serial);
  ASSERT_TRUE(want.ok()) << want.status();

  ThreadPool pool(2);
  EngineOptions opts;
  opts.pool = &pool;
  opts.io_pool = &pool;  // aliased: loads and compute share the two workers
  opts.filter_verify_batch = 4;

  const int kQueries = 6;
  std::vector<Result<FilterResult>> results(kQueries,
                                            Status::Internal("not run"));
  Latch done(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    pool.Submit([&, i] {
      results[i] = ExecuteFilter(*store, &index, q, opts);
      done.CountDown();
    });
  }
  WaitHelping(&done, &pool);
  for (int i = 0; i < kQueries; ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status();
    EXPECT_EQ(results[i]->mask_ids, want->mask_ids) << "query " << i;
  }
}

}  // namespace
}  // namespace masksearch
