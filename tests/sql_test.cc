// Tests for the SQL front end: lexer, parser, and binder, covering the
// paper's Table 1 queries and Examples 1–2 (§2.1).

#include <gtest/gtest.h>

#include "masksearch/sql/binder.h"
#include "masksearch/sql/lexer.h"
#include "masksearch/sql/parser.h"

namespace masksearch {
namespace sql {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT cp_1 , 3.5 >= (7);");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 10u);  // incl. kEnd
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdent);
  EXPECT_TRUE((*tokens)[0].IsKeyword("select"));
  EXPECT_EQ((*tokens)[1].text, "cp_1");
  EXPECT_TRUE((*tokens)[2].IsSymbol(","));
  EXPECT_EQ((*tokens)[3].type, TokenType::kNumber);
  EXPECT_DOUBLE_EQ((*tokens)[3].number, 3.5);
  EXPECT_TRUE((*tokens)[4].IsSymbol(">="));
  EXPECT_EQ((*tokens)[9].type, TokenType::kEnd);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("SELECT -- a comment\n 1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens).size(), 3u);
}

TEST(LexerTest, ScientificNumbers) {
  auto tokens = Tokenize("1e3 2.5E-2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_DOUBLE_EQ((*tokens)[0].number, 1000.0);
  EXPECT_DOUBLE_EQ((*tokens)[1].number, 0.025);
}

TEST(LexerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(Tokenize("SELECT @").ok());
}

TEST(ParserTest, MinimalSelect) {
  auto stmt = ParseSelect("SELECT * FROM MasksDatabaseView;");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->table, "MasksDatabaseView");
  ASSERT_EQ(stmt->items.size(), 1u);
  EXPECT_TRUE(stmt->items[0].star);
  EXPECT_EQ(stmt->where, nullptr);
}

TEST(ParserTest, FullClauseSet) {
  auto stmt = ParseSelect(
      "SELECT image_id, CP(mask, object, (0.8, 1.0)) AS v "
      "FROM masks WHERE model_id = 1 GROUP BY image_id "
      "HAVING v > 10 ORDER BY v DESC LIMIT 25;");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->items.size(), 2u);
  EXPECT_EQ(stmt->items[1].alias, "v");
  EXPECT_NE(stmt->where, nullptr);
  EXPECT_EQ(stmt->group_by, "image_id");
  EXPECT_NE(stmt->having, nullptr);
  EXPECT_NE(stmt->order_by, nullptr);
  EXPECT_FALSE(stmt->ascending);
  EXPECT_EQ(stmt->limit, 25);
}

TEST(ParserTest, CpWithPaperBoxSyntax) {
  auto stmt = ParseSelect(
      "SELECT * FROM masks WHERE "
      "CP(mask, ((50, 50), (200, 200)), (0.6, 1.0)) > 5000;");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const std::string s = stmt->where->ToString();
  EXPECT_NE(s.find("CP("), std::string::npos);
  EXPECT_NE(s.find("box("), std::string::npos);
}

TEST(ParserTest, CpWithDashRoi) {
  auto stmt = ParseSelect(
      "SELECT * FROM masks WHERE CP(mask, -, (0.85, 1.0)) > 10;");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_NE(stmt->where->ToString().find("full"), std::string::npos);
}

TEST(ParserTest, ErrorsCarryOffsets) {
  auto stmt = ParseSelect("SELECT FROM masks;");
  EXPECT_FALSE(stmt.ok());
  EXPECT_NE(stmt.status().message().find("offset"), std::string::npos);
  EXPECT_FALSE(ParseSelect("SELECT * masks").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM masks LIMIT x").ok());
  EXPECT_FALSE(ParseSelect("").ok());
}

// ---- Binder: the paper's queries ----

TEST(BinderTest, PaperQ1) {
  // Table 1 Q1: filter with constant ROI and model_id = 1.
  auto q = ParseAndBind(
      "SELECT mask_id FROM MasksDatabaseView "
      "WHERE CP(mask, ((50, 50), (200, 200)), (0.6, 1.0)) > 5000 "
      "AND model_id = 1;");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->kind, BoundQuery::Kind::kFilter);
  ASSERT_EQ(q->filter.terms.size(), 1u);
  const CpTerm& t = q->filter.terms[0];
  EXPECT_EQ(t.roi_source, RoiSource::kConstant);
  EXPECT_EQ(t.constant_roi, ROI::FromInclusiveCorners(50, 50, 200, 200));
  EXPECT_DOUBLE_EQ(t.range.lv, 0.6);
  EXPECT_DOUBLE_EQ(t.range.uv, 1.0);
  ASSERT_EQ(q->filter.selection.model_ids.size(), 1u);
  EXPECT_EQ(q->filter.selection.model_ids[0], 1);
}

TEST(BinderTest, PaperQ2ObjectRoi) {
  auto q = ParseAndBind(
      "SELECT mask_id FROM masks "
      "WHERE CP(mask, object, (0.8, 1.0)) > 15000 AND model_id = 1;");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->kind, BoundQuery::Kind::kFilter);
  EXPECT_EQ(q->filter.terms[0].roi_source, RoiSource::kObjectBox);
}

TEST(BinderTest, PaperQ3TopK) {
  auto q = ParseAndBind(
      "SELECT mask_id FROM masks WHERE model_id = 1 "
      "ORDER BY CP(mask, ((50,50),(200,200)), (0.8, 1.0)) DESC LIMIT 25;");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->kind, BoundQuery::Kind::kTopK);
  EXPECT_EQ(q->topk.k, 25u);
  EXPECT_TRUE(q->topk.descending);
  EXPECT_TRUE(q->topk.order_expr.IsSingleTerm());
}

TEST(BinderTest, PaperQ4Aggregation) {
  auto q = ParseAndBind(
      "SELECT image_id, MEAN(CP(mask, object, (0.8, 1.0))) AS m "
      "FROM masks WHERE model_id IN (0, 1) "
      "GROUP BY image_id ORDER BY m DESC LIMIT 25;");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->kind, BoundQuery::Kind::kAggregation);
  EXPECT_EQ(q->agg.op, ScalarAggOp::kAvg);
  EXPECT_EQ(q->agg.group_key, GroupKey::kImageId);
  ASSERT_TRUE(q->agg.k.has_value());
  EXPECT_EQ(*q->agg.k, 25u);
  EXPECT_EQ(q->agg.selection.model_ids.size(), 2u);
}

TEST(BinderTest, PaperQ5MaskAgg) {
  auto q = ParseAndBind(
      "SELECT image_id, CP(INTERSECT(mask > 0.8), object, (0.8, 1.0)) AS s "
      "FROM masks GROUP BY image_id ORDER BY s DESC LIMIT 25;");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->kind, BoundQuery::Kind::kMaskAgg);
  EXPECT_EQ(q->mask_agg.op, MaskAggOp::kIntersectThreshold);
  EXPECT_DOUBLE_EQ(q->mask_agg.agg_threshold, 0.8);
  ASSERT_TRUE(q->mask_agg.k.has_value());
  EXPECT_EQ(*q->mask_agg.k, 25u);
}

TEST(BinderTest, Example1RatioTopK) {
  // §2.1 Example 1: ratio of two CP functions, ascending top-25.
  auto q = ParseAndBind(
      "SELECT image_id, "
      "CP(mask, ((10,10),(60,60)), (0.85, 1.0)) / CP(mask, -, (0.85, 1.0)) "
      "AS r FROM MasksDatabaseView ORDER BY r ASC LIMIT 25;");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->kind, BoundQuery::Kind::kTopK);
  EXPECT_FALSE(q->topk.descending);
  EXPECT_EQ(q->topk.terms.size(), 2u);
  EXPECT_EQ(q->topk.terms[1].roi_source, RoiSource::kFullMask);
  EXPECT_FALSE(q->topk.order_expr.IsSingleTerm());
}

TEST(BinderTest, Example2MaskTypeSelection) {
  auto q = ParseAndBind(
      "SELECT image_id, CP(INTERSECT(mask > 0.7), full, (0.7, 1.0)) AS s "
      "FROM masks WHERE mask_type IN (0, 1) "
      "GROUP BY image_id ORDER BY s DESC LIMIT 10;");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->kind, BoundQuery::Kind::kMaskAgg);
  EXPECT_EQ(q->mask_agg.selection.mask_types.size(), 2u);
}

TEST(BinderTest, HavingWithoutOrderBy) {
  auto q = ParseAndBind(
      "SELECT image_id, SUM(CP(mask, object, (0.5, 1.0))) AS s "
      "FROM masks GROUP BY image_id HAVING s > 1000;");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->kind, BoundQuery::Kind::kAggregation);
  EXPECT_EQ(q->agg.op, ScalarAggOp::kSum);
  EXPECT_FALSE(q->agg.k.has_value());
  ASSERT_TRUE(q->agg.having_op.has_value());
  EXPECT_EQ(*q->agg.having_op, CompareOp::kGt);
  EXPECT_DOUBLE_EQ(q->agg.having_threshold, 1000.0);
}

TEST(BinderTest, RectRoiSyntax) {
  auto q = ParseAndBind(
      "SELECT * FROM masks WHERE CP(mask, rect(0, 0, 32, 32), (0.5, 1.0)) > 5;");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->filter.terms[0].constant_roi, ROI(0, 0, 32, 32));
}

TEST(BinderTest, MirroredComparison) {
  auto q = ParseAndBind(
      "SELECT * FROM masks WHERE 100 > CP(mask, object, (0.5, 1.0));");
  ASSERT_TRUE(q.ok()) << q.status();
  // 100 > CP  ≡  CP < 100; verified behaviourally.
  EXPECT_TRUE(q->filter.predicate.EvalExact({50.0}));
  EXPECT_FALSE(q->filter.predicate.EvalExact({150.0}));
}

TEST(BinderTest, CpVsCpComparison) {
  auto q = ParseAndBind(
      "SELECT * FROM masks WHERE "
      "CP(mask, object, (0.7, 1.0)) > CP(mask, -, (0.9, 1.0));");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->filter.terms.size(), 2u);
  EXPECT_TRUE(q->filter.predicate.EvalExact({10.0, 5.0}));
  EXPECT_FALSE(q->filter.predicate.EvalExact({5.0, 10.0}));
}

TEST(BinderTest, ErrorCases) {
  // Unknown table.
  EXPECT_FALSE(ParseAndBind("SELECT * FROM unknown_table WHERE "
                            "CP(mask, -, (0,1)) > 5;")
                   .ok());
  // No CP predicate in a filter query.
  EXPECT_FALSE(ParseAndBind("SELECT * FROM masks WHERE model_id = 1;").ok());
  // ORDER BY without LIMIT.
  EXPECT_FALSE(ParseAndBind("SELECT * FROM masks ORDER BY "
                            "CP(mask, -, (0,1)) DESC;")
                   .ok());
  // GROUP BY on a non-catalog column.
  EXPECT_FALSE(ParseAndBind("SELECT image_id, MEAN(CP(mask, -, (0,1))) AS m "
                            "FROM masks GROUP BY label ORDER BY m LIMIT 5;")
                   .ok());
  // MASK_AGG outside GROUP BY context.
  EXPECT_FALSE(ParseAndBind("SELECT * FROM masks WHERE "
                            "CP(INTERSECT(mask > 0.5), -, (0,1)) > 5;")
                   .ok());
  // Non-constant value range.
  EXPECT_FALSE(ParseAndBind("SELECT * FROM masks WHERE "
                            "CP(mask, -, (image_id, 1)) > 5;")
                   .ok());
  // Invalid range.
  EXPECT_FALSE(ParseAndBind("SELECT * FROM masks WHERE "
                            "CP(mask, -, (0.9, 0.1)) > 5;")
                   .ok());
}

TEST(BinderTest, PredictedLabelSelection) {
  // The §4.5 exploration pattern: masks of images predicted as a class.
  auto q = ParseAndBind(
      "SELECT mask_id FROM masks "
      "WHERE CP(mask, object, (0.7, 1.0)) > 10 AND predicted_label IN (3, 5);");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->filter.selection.predicted_labels.size(), 2u);
  EXPECT_EQ(q->filter.selection.predicted_labels[0], 3);
  EXPECT_EQ(q->filter.selection.predicted_labels[1], 5);
}

TEST(BinderTest, AliasResolutionInOrderBy) {
  auto q = ParseAndBind(
      "SELECT mask_id, CP(mask, object, (0.6, 1.0)) AS score "
      "FROM masks ORDER BY score DESC LIMIT 5;");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->kind, BoundQuery::Kind::kTopK);
  EXPECT_TRUE(q->topk.order_expr.IsSingleTerm());
}

TEST(BinderTest, ArithmeticOnCatalogConstantsFolds) {
  auto q = ParseAndBind(
      "SELECT * FROM masks WHERE CP(mask, -, (0.25 + 0.25, 1.0)) > 2 * 50;");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_DOUBLE_EQ(q->filter.terms[0].range.lv, 0.5);
  EXPECT_TRUE(q->filter.predicate.EvalExact({101.0}));
  EXPECT_FALSE(q->filter.predicate.EvalExact({100.0}));
}

}  // namespace
}  // namespace sql
}  // namespace masksearch
