// Dataset exploration with incremental indexing (§3.6, §4.5): a user
// explores class after class, issuing filter queries with different
// parameters against overlapping subsets of masks. MS-II builds each mask's
// CHI the first time a query loads it, so there is no start-up wait and the
// indexing cost is amortized across the session; at the end the index is
// persisted for the next session.
//
//   ./exploration_session [workdir]

#include <cstdio>

#include "masksearch/masksearch.h"

using namespace masksearch;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp/masksearch_example_expl";

  DatasetSpec spec;
  spec.name = "exploration";
  spec.num_images = 300;
  spec.num_models = 2;
  spec.saliency.width = 112;
  spec.saliency.height = 112;
  spec.seed = 63;
  EnsureDataset(dir, spec).CheckOK();
  auto store = MaskStore::Open(dir).ValueOrDie();

  const std::string index_path = dir + "/session.chi";
  SessionOptions opts;
  opts.chi.cell_width = 14;
  opts.chi.cell_height = 14;
  opts.chi.num_bins = 16;
  opts.incremental = true;  // MS-II: no upfront index build
  opts.index_path = index_path;

  auto session = Session::Open(store.get(), opts).ValueOrDie();
  std::printf("session opened with %zu of %lld CHIs prebuilt "
              "(persisted by previous sessions)\n",
              session->index().num_built(),
              static_cast<long long>(store->num_masks()));

  // A §4.5-style exploration: 12 queries drifting across the dataset with
  // 50% revisit probability.
  WorkloadOptions wopts;
  wopts.num_queries = 12;
  wopts.p_seen = 0.5;
  wopts.seed = 15;
  wopts.query.threshold_fraction_max = 0.05;  // keep result sets non-empty
  const Workload workload = GenerateWorkload(*store, wopts);

  std::printf("\n%6s %9s %9s %9s %10s %12s\n", "query", "targets", "matches",
              "loaded", "chi_built", "index_total");
  for (size_t i = 0; i < workload.queries.size(); ++i) {
    auto r = session->Filter(workload.queries[i]);
    r.status().CheckOK();
    std::printf("%6zu %9lld %9zu %9lld %10lld %12zu\n", i + 1,
                static_cast<long long>(r->stats.masks_targeted),
                r->mask_ids.size(),
                static_cast<long long>(r->stats.masks_loaded),
                static_cast<long long>(r->stats.chis_built),
                session->index().num_built());
  }

  std::printf("\nindex now covers %zu masks (%.2f MiB); only masks the "
              "session actually touched were indexed\n",
              session->index().num_built(),
              session->index().MemoryBytes() / 1048576.0);

  session->Save().CheckOK();
  std::printf("persisted CHI set to %s — rerun this example to start from a "
              "warm index\n",
              index_path.c_str());
  return 0;
}
