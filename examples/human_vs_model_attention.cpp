// §2.1 Example 2, verbatim scenario: Alice wants to know whether her model
// focuses on the same parts of the X-ray images as human experts. The
// database holds two masks per image — the model's saliency map
// (mask_type = saliency) and a human attention map (mask_type = human
// attention) — and she ranks images by the overlap of the two maps after
// thresholding:
//
//   SELECT image_id, CP(INTERSECT(mask > 0.7), -, (0.7, 1.0)) AS s
//   FROM MasksDatabaseView WHERE mask_type IN (0, 1)
//   GROUP BY image_id ORDER BY s DESC LIMIT 10;
//
//   ./human_vs_model_attention [workdir]

#include <cstdio>

#include "masksearch/masksearch.h"

using namespace masksearch;

namespace {

/// Builds a store with a model saliency map and a (correlated) human
/// attention map per image. For most images the expert and the model agree;
/// for a "disagreement" fraction the human map attends elsewhere.
Status BuildAttentionStore(const std::string& dir, int64_t num_images,
                           uint64_t seed) {
  auto writer_or = MaskStoreWriter::Create(dir);
  MS_RETURN_NOT_OK(writer_or.status());
  auto& writer = *writer_or;
  Rng rng(seed);
  SaliencySpec spec;
  spec.width = 112;
  spec.height = 112;
  for (int64_t img = 0; img < num_images; ++img) {
    const ROI box = GenerateObjectBox(&rng, spec.width, spec.height);
    const bool disagree = rng.NextBool(0.3);
    const auto model_blobs = SampleSaliencyBlobs(&rng, spec, box, false);
    // Agreement: the human map is a jittered re-render of the model's blobs.
    // Disagreement: the human attends to an independent region.
    const auto human_blobs =
        disagree ? SampleSaliencyBlobs(&rng, spec, box, /*dispersed=*/true)
                 : JitterSaliencyBlobs(&rng, model_blobs, 0.2, spec.width,
                                       spec.height);

    MaskMeta model_meta;
    model_meta.image_id = img;
    model_meta.model_id = 0;
    model_meta.mask_type = MaskType::kSaliencyMap;
    model_meta.object_box = box;
    MS_RETURN_NOT_OK(
        writer->Append(model_meta, RenderSaliencyMask(&rng, spec, model_blobs))
            .status());

    MaskMeta human_meta = model_meta;
    human_meta.model_id = -1;  // not produced by a model
    human_meta.mask_type = MaskType::kHumanAttention;
    MS_RETURN_NOT_OK(
        writer->Append(human_meta, RenderSaliencyMask(&rng, spec, human_blobs))
            .status());
  }
  return writer->Finish();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir =
      argc > 1 ? argv[1] : "/tmp/masksearch_example_attention";
  if (!PathExists(MaskStoreManifestPath(dir))) {
    BuildAttentionStore(dir, 300, 2024).CheckOK();
  }
  auto store = MaskStore::Open(dir).ValueOrDie();

  SessionOptions opts;
  opts.chi.cell_width = 14;
  opts.chi.cell_height = 14;
  opts.chi.num_bins = 16;
  auto session = Session::Open(store.get(), opts).ValueOrDie();

  // The paper's query, through the SQL front end (mask_type 0 = saliency,
  // 1 = human attention).
  auto bound = sql::ParseAndBind(
      "SELECT image_id, CP(INTERSECT(mask > 0.7), -, (0.7, 1.0)) AS s "
      "FROM MasksDatabaseView WHERE mask_type IN (0, 1) "
      "GROUP BY image_id ORDER BY s DESC LIMIT 10;");
  bound.status().CheckOK();

  auto top = session->MaskAggregate(bound->mask_agg);
  top.status().CheckOK();
  std::printf("images where model and expert attention overlap MOST:\n");
  for (const ScoredGroup& g : top->groups) {
    std::printf("  image %3lld: %5.0f overlapping salient pixels\n",
                static_cast<long long>(g.group), g.value);
  }
  std::printf("stats: %s\n\n", top->stats.ToString().c_str());

  // The other end: images where the model ignores what the expert looks at.
  auto worst_q = bound->mask_agg;
  worst_q.descending = false;
  auto worst = session->MaskAggregate(worst_q);
  worst.status().CheckOK();
  std::printf("images where they overlap LEAST (model–expert disagreement, "
              "the cases worth reviewing):\n");
  for (const ScoredGroup& g : worst->groups) {
    std::printf("  image %3lld: %5.0f overlapping salient pixels\n",
                static_cast<long long>(g.group), g.value);
  }
  std::printf("stats: %s\n", worst->stats.ToString().c_str());
  return 0;
}
