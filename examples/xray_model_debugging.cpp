// Scenario 2 of the paper (§1, Example 1 of §2.1): Alice's COVID-19
// classifier looks accurate but fails in deployment. She checks whether the
// model attends to the lung region or to confounders (lateral markers near
// the image periphery).
//
// We simulate her dataset: each "X-ray" has a saliency map; for most images
// the salient mass sits on the anatomy (the object box ≈ lung region), but a
// fraction of maps is dispersed toward the periphery — the shortcut-learning
// signature of DeGrave et al. that the paper cites.
//
//   ./xray_model_debugging [workdir]

#include <cstdio>

#include "masksearch/masksearch.h"

using namespace masksearch;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp/masksearch_example_xray";

  DatasetSpec spec;
  spec.name = "chest-xray-sim";
  spec.num_images = 400;
  spec.num_models = 1;
  spec.saliency.width = 128;
  spec.saliency.height = 128;
  spec.dispersed_fraction = 0.2;  // shortcut-learning cases
  spec.seed = 2021;
  EnsureDataset(dir, spec).CheckOK();
  auto store = MaskStore::Open(dir).ValueOrDie();

  SessionOptions opts;
  opts.chi.cell_width = 16;
  opts.chi.cell_height = 16;
  opts.chi.num_bins = 16;
  auto session = Session::Open(store.get(), opts).ValueOrDie();

  // Alice specifies the lung region manually as a bounding box (§2.1
  // Example 1). The paper's SQL uses 1-based inclusive corners.
  std::printf("== Query 1: X-rays with few salient pixels in the lung box ==\n");
  auto q1 = sql::ParseAndBind(
      "SELECT image_id FROM MasksDatabaseView "
      "WHERE CP(mask, ((25, 25), (104, 104)), (0.85, 1.0)) < 180;");
  q1.status().CheckOK();
  auto r1 = session->Filter(q1->filter);
  r1.status().CheckOK();
  std::printf("model attends weakly to the lungs on %zu of %lld X-rays "
              "(loaded only %lld masks to prove it)\n",
              r1->mask_ids.size(),
              static_cast<long long>(r1->stats.masks_targeted),
              static_cast<long long>(r1->stats.masks_loaded));

  // Example 1's second query: the 25 X-rays with the lowest ratio of
  // lung-region salient pixels to total salient pixels.
  std::printf("\n== Query 2: top-25 lowest lung-saliency ratio ==\n");
  TopKQuery topk;
  CpTerm lungs;
  lungs.roi_source = RoiSource::kConstant;
  lungs.constant_roi = ROI::FromInclusiveCorners(25, 25, 104, 104);
  lungs.range = ValueRange(0.85, 1.0);
  CpTerm whole;
  whole.roi_source = RoiSource::kFullMask;
  whole.range = ValueRange(0.85, 1.0);
  topk.terms = {lungs, whole};
  // ratio = lung_salient / (total_salient + 1): +1 guards empty maps.
  topk.order_expr = CpExpr::Term(0) / (CpExpr::Term(1) + CpExpr::Constant(1));
  topk.k = 25;
  topk.descending = false;

  auto r2 = session->TopK(topk);
  r2.status().CheckOK();
  std::printf("rank  image  ratio   ground-truth-dispersed?\n");
  int rank = 1, dispersed_hits = 0;
  for (const ScoredMask& item : r2->items) {
    const MaskMeta& meta = store->meta(item.mask_id);
    // In the simulation, shortcut-learning images are the ones whose labels
    // were flipped more often; surface the mismatch as a proxy.
    const bool mispredicted = meta.label != meta.predicted_label;
    dispersed_hits += mispredicted ? 1 : 0;
    if (rank <= 10) {
      std::printf("%4d  %5lld  %.4f  %s\n", rank,
                  static_cast<long long>(meta.image_id), item.value,
                  mispredicted ? "mispredicted" : "ok");
    }
    ++rank;
  }
  std::printf("...\n%d of 25 retrieved X-rays are mispredicted by the model — "
              "exactly the shortcut-learning cases Alice is hunting\n",
              dispersed_hits);
  std::printf("query stats: %s\n", r2->stats.ToString().c_str());
  return 0;
}
