// Scenario 1 of the paper (§1): Bob monitors an image classifier whose
// accuracy dropped. Saliency maps of misclassified images show high-value
// pixels diffused across the background instead of concentrated on the
// foreground object — a signature of maliciously modified inputs. He
// retrieves all images whose salient pixels are dispersed across large
// fractions of the image, then compares the hit rate against model errors.
//
//   ./adversarial_audit [workdir]

#include <cstdio>

#include "masksearch/masksearch.h"

using namespace masksearch;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp/masksearch_example_adv";

  DatasetSpec spec;
  spec.name = "production-traffic-sim";
  spec.num_images = 500;
  spec.num_models = 1;
  spec.saliency.width = 112;
  spec.saliency.height = 112;
  spec.dispersed_fraction = 0.12;  // the attacked examples
  spec.error_rate = 0.05;
  spec.seed = 31;
  EnsureDataset(dir, spec).CheckOK();
  auto store = MaskStore::Open(dir).ValueOrDie();

  SessionOptions opts;
  opts.chi.cell_width = 14;
  opts.chi.cell_height = 14;
  opts.chi.num_bins = 16;
  auto session = Session::Open(store.get(), opts).ValueOrDie();

  // "High-value pixels dispersed across large fractions of the image":
  // many salient pixels overall, but fewer than half of them on the
  // foreground object. Multiple CP terms combine in one predicate (§3.3).
  FilterQuery query;
  CpTerm on_object;
  on_object.roi_source = RoiSource::kObjectBox;
  on_object.range = ValueRange(0.7, 1.0);
  CpTerm overall;
  overall.roi_source = RoiSource::kFullMask;
  overall.range = ValueRange(0.7, 1.0);
  query.terms = {on_object, overall};

  const double min_salient = 0.04 * 112 * 112;  // "large fractions"
  std::vector<Predicate> conjuncts;
  conjuncts.push_back(
      Predicate::Compare(CpExpr::Term(1), CompareOp::kGt, min_salient));
  // on_object - 0.5 * overall < 0  ⇔  less than half the mass is on-object.
  conjuncts.push_back(Predicate::Compare(
      CpExpr::Term(0) - CpExpr::Constant(0.5) * CpExpr::Term(1),
      CompareOp::kLt, 0.0));
  query.predicate = Predicate::And(std::move(conjuncts));

  auto result = session->Filter(query);
  result.status().CheckOK();

  // Audit: how well does the mask property predict model errors?
  int64_t flagged = static_cast<int64_t>(result->mask_ids.size());
  int64_t flagged_and_wrong = 0;
  for (MaskId id : result->mask_ids) {
    const MaskMeta& meta = store->meta(id);
    if (meta.label != meta.predicted_label) ++flagged_and_wrong;
  }
  int64_t wrong_total = 0;
  for (MaskId id = 0; id < store->num_masks(); ++id) {
    const MaskMeta& meta = store->meta(id);
    if (meta.label != meta.predicted_label) ++wrong_total;
  }

  std::printf("suspicious (dispersed-saliency) examples: %lld of %lld\n",
              static_cast<long long>(flagged),
              static_cast<long long>(store->num_masks()));
  std::printf("model errors among flagged examples: %lld (%.0f%%)\n",
              static_cast<long long>(flagged_and_wrong),
              flagged > 0 ? 100.0 * flagged_and_wrong / flagged : 0.0);
  std::printf("model error rate overall: %.0f%%\n",
              100.0 * wrong_total / store->num_masks());
  std::printf("\nexecution: %s\n", result->stats.ToString().c_str());
  std::printf("the filter stage decided %lld of %lld masks without touching "
              "the data file\n",
              static_cast<long long>(result->stats.pruned +
                                     result->stats.accepted_by_bounds),
              static_cast<long long>(result->stats.masks_targeted));

  // Drill-down: among the flagged ones, the 10 most dispersed.
  TopKQuery drill;
  drill.terms = query.terms;
  drill.selection.mask_ids = result->mask_ids;
  drill.order_expr =
      CpExpr::Term(0) / (CpExpr::Term(1) + CpExpr::Constant(1.0));
  drill.k = 10;
  drill.descending = false;
  auto worst = session->TopK(drill);
  worst.status().CheckOK();
  std::printf("\nmost dispersed examples (lowest on-object ratio):\n");
  for (const ScoredMask& item : worst->items) {
    std::printf("  mask %lld  ratio=%.3f\n",
                static_cast<long long>(item.mask_id), item.value);
  }
  return 0;
}
