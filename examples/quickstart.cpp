// Quickstart: build a small synthetic mask database, open a MaskSearch
// session (which builds the Cumulative Histogram Index), and run a filter
// query through the SQL front end.
//
//   ./quickstart [workdir]

#include <cstdio>

#include "masksearch/masksearch.h"

using namespace masksearch;

int main(int argc, char** argv) {
  const std::string dir =
      argc > 1 ? argv[1] : "/tmp/masksearch_example_quickstart";

  // 1. Create a database of masks: 200 images, two models' saliency maps
  //    each, with per-image foreground-object boxes.
  DatasetSpec spec;
  spec.name = "quickstart";
  spec.num_images = 200;
  spec.num_models = 2;
  spec.saliency.width = 112;
  spec.saliency.height = 112;
  spec.seed = 7;
  EnsureDataset(dir, spec).CheckOK();

  auto store = MaskStore::Open(dir).ValueOrDie();
  std::printf("mask database: %lld masks, %.1f MiB on disk\n",
              static_cast<long long>(store->num_masks()),
              store->TotalDataBytes() / 1048576.0);

  // 2. Open a session. Vanilla mode bulk-builds one CHI per mask up front;
  //    pass opts.incremental = true to index lazily instead (§3.6).
  SessionOptions opts;
  opts.chi.cell_width = 14;   // 112/14 = 8x8 grid, the paper's proportions
  opts.chi.cell_height = 14;
  opts.chi.num_bins = 16;
  auto session = Session::Open(store.get(), opts).ValueOrDie();
  std::printf("index built in %.2fs, %.2f MiB in memory (%.1f%% of data)\n",
              session->index_build_seconds(),
              session->index().MemoryBytes() / 1048576.0,
              100.0 * session->index().MemoryBytes() / store->TotalDataBytes());

  // 3. Query: masks whose foreground object contains more than 800 salient
  //    pixels — written in the paper's SQL dialect.
  auto bound = sql::ParseAndBind(
      "SELECT mask_id FROM MasksDatabaseView "
      "WHERE CP(mask, object, (0.8, 1.0)) > 300 AND model_id = 1;");
  bound.status().CheckOK();

  auto result = session->Filter(bound->filter);
  result.status().CheckOK();

  std::printf("\nquery: CP(mask, object, (0.8, 1.0)) > 300, model_id = 1\n");
  std::printf("matched %zu of %lld targeted masks\n", result->mask_ids.size(),
              static_cast<long long>(result->stats.masks_targeted));
  std::printf("filter-verification stats: %s\n",
              result->stats.ToString().c_str());
  std::printf("(only %lld masks were loaded from disk — the rest were "
              "decided from CHI bounds alone)\n",
              static_cast<long long>(result->stats.masks_loaded));

  size_t shown = 0;
  for (MaskId id : result->mask_ids) {
    if (shown++ >= 5) break;
    std::printf("  %s\n", store->meta(id).ToString().c_str());
  }
  return 0;
}
